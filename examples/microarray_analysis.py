#!/usr/bin/env python
"""Gene-expression module discovery (Section 6.1.2).

Mines co-expression modules -- genes whose expression "rises and falls
coherently under a subset of conditions" -- from a yeast-like matrix, and
reruns the paper's FLOC-vs-Cheng&Church comparison:

* FLOC handles the matrix natively (missing values allowed, no masking);
* Cheng & Church needs random fill + finds biclusters one at a time,
  masking each with random values (the behaviour the paper criticizes).

The paper reports FLOC reaching lower average residue (10.34 vs 12.54),
~20% more aggregated volume, and an order of magnitude less time.

Run:  python examples/microarray_analysis.py
"""

import numpy as np

from repro import Constraints, find_biclusters, floc, generate_yeast_like
from repro.eval.metrics import match_clusters
from repro.eval.reporting import format_table


def main():
    print("generating yeast-like expression matrix "
          "(2884 x 17 scaled to 400 x 17, 8 planted modules)...")
    dataset = generate_yeast_like(
        n_genes=400, n_conditions=17, n_modules=8,
        module_shape=(25, 8), noise=5.0, rng=0,
    )
    module_residue = float(np.mean(
        [m.residue(dataset.matrix) for m in dataset.modules]
    ))
    print(f"matrix {dataset.matrix.shape}, planted module residue "
          f"~{module_residue:.1f}")
    print()

    # ---- FLOC ----------------------------------------------------------
    target = 2 * module_residue
    floc_result = floc(
        dataset.matrix, k=10, p=0.2,
        residue_target=target,
        constraints=Constraints(min_rows=4, min_cols=4),
        reseed_rounds=15, gain_mode="fast", ordering="greedy", rng=1,
    )
    floc_clusters = [
        c for c in floc_result.clustering
        if c.residue(dataset.matrix) <= target and c.entry_count() > 32
    ]
    floc_volume = sum(c.volume(dataset.matrix) for c in floc_clusters)
    floc_residue = float(np.mean(
        [c.residue(dataset.matrix) for c in floc_clusters]
    )) if floc_clusters else float("nan")

    # ---- Cheng & Church -------------------------------------------------
    cc_result = find_biclusters(
        dataset.matrix, len(floc_clusters) or 8,
        delta=target ** 2,   # their score is the mean SQUARED residue
        rng=2, min_rows_for_batch=100, min_cols_for_batch=100,
    )
    cc_clusters = cc_result.to_delta_clusters()
    cc_volume = sum(c.volume(dataset.matrix) for c in cc_clusters)
    cc_residue = float(np.mean(
        [c.residue(dataset.matrix) for c in cc_clusters]
    ))

    print(format_table(
        [
            ["FLOC", len(floc_clusters), floc_residue, floc_volume,
             floc_result.elapsed_seconds],
            ["Cheng & Church", len(cc_clusters), cc_residue, cc_volume,
             cc_result.elapsed_seconds],
        ],
        headers=["algorithm", "clusters", "avg residue", "total volume",
                 "time (s)"],
        title="FLOC vs the biclustering baseline (compare Section 6.1.2)",
    ))
    print()

    # ---- which planted modules did FLOC recover? ------------------------
    matches = match_clusters(dataset.modules, floc_clusters)
    rows = []
    for module_index, cluster_index, jaccard in matches:
        module = dataset.modules[module_index]
        rows.append([
            f"module {module_index}",
            f"{module.n_rows} x {module.n_cols}",
            "-" if cluster_index is None else f"cluster {cluster_index}",
            jaccard,
        ])
    print(format_table(
        rows,
        headers=["planted", "shape", "recovered by", "jaccard"],
        title="Module recovery",
    ))


if __name__ == "__main__":
    main()
