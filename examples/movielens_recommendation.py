#!/usr/bin/env python
"""Collaborative filtering with delta-clusters (Section 6.1.1).

The paper's E-commerce motivation: viewers whose ratings differ only by a
personal offset are *coherent*, and a discovered delta-cluster can predict
a member's rating for a movie from the other members' ratings plus the
member's bias.  This example:

1. generates a MovieLens-like sparse ratings matrix (the real dump is not
   downloadable offline; see DESIGN.md for the substitution),
2. mines delta-clusters with FLOC at alpha = 0.6 as in the paper,
3. prints Table-1-style statistics for the discovered clusters, and
4. demonstrates rating *prediction*: hide a rating, predict it from the
   cluster bases (d_iJ + d_Ij - d_IJ), compare to the truth.

Run:  python examples/movielens_recommendation.py
"""

import numpy as np

from repro import Constraints, floc, generate_ratings
from repro.core.residue import compute_bases
from repro.eval.reporting import format_table


def mine_clusters(dataset):
    result = floc(
        dataset.matrix,
        k=6,
        p=0.25,
        alpha=0.6,           # the paper's occupancy threshold
        residue_target=0.8,  # rounded 1..10 ratings: coherent ~ 0.5
        constraints=Constraints(min_rows=3, min_cols=3),
        reseed_rounds=8,
        gain_mode="fast",
        ordering="greedy",
        rng=11,
    )
    locked = [
        c for c in result.clustering
        if c.residue(dataset.matrix) <= 0.8 and c.entry_count() > 25
    ]
    return result, locked


def table1_statistics(dataset, clusters):
    rows = []
    for cluster in clusters:
        rows.append([
            cluster.volume(dataset.matrix),
            cluster.n_cols,              # movies
            cluster.n_rows,              # viewers
            cluster.residue(dataset.matrix),
            cluster.diameter(dataset.matrix),
        ])
    print(format_table(
        rows,
        headers=["volume", "movies", "viewers", "residue", "diameter"],
        title="Discovered clusters (compare Table 1 of the paper)",
    ))
    print()


def predict_rating(matrix, cluster, user, movie):
    """Predict d[user, movie] from the cluster bases, hiding the truth.

    The paper's Section 1 example: if the cluster is coherent, the entry
    is d_iJ + d_Ij - d_IJ (the perfect-cluster identity of Section 3).
    """
    values = matrix.values.copy()
    truth = values[user, movie]
    values[user, movie] = np.nan  # hide it
    rows = list(cluster.rows)
    cols = list(cluster.cols)
    sub = values[np.ix_(rows, cols)]
    bases = compute_bases(sub)
    i = rows.index(user)
    j = cols.index(movie)
    prediction = bases.row[i] + bases.col[j] - bases.grand
    return prediction, truth


def main():
    print("generating MovieLens-like ratings (943 x 1682 scaled to "
          "300 x 400, ~8% dense, 1..10 integer scale)...")
    dataset = generate_ratings(
        n_users=300, n_movies=400, n_groups=4, group_size=40,
        signature_movies=40, density=0.08, min_ratings=20, rng=7,
    )
    print(f"matrix: {dataset.matrix.shape}, "
          f"density {dataset.matrix.density:.3f}, "
          f"every user rated >= 20 movies")
    print()

    result, locked = mine_clusters(dataset)
    print(f"FLOC: {result.n_iterations} iterations, "
          f"{result.elapsed_seconds:.1f}s, "
          f"{len(locked)} coherent clusters found")
    print()
    table1_statistics(dataset, locked)

    if not locked:
        print("no coherent cluster found; try another seed")
        return
    cluster = max(locked, key=lambda c: c.volume(dataset.matrix))
    print("Rating prediction from the largest cluster "
          f"({cluster.n_rows} viewers x {cluster.n_cols} movies):")
    rng = np.random.default_rng(0)
    errors = []
    rows = []
    for __ in range(5):
        user = int(rng.choice(cluster.rows))
        movie = int(rng.choice(cluster.cols))
        if not dataset.matrix.mask[user, movie]:
            continue
        predicted, truth = predict_rating(dataset.matrix, cluster, user, movie)
        errors.append(abs(predicted - truth))
        rows.append([user, movie, truth, predicted, abs(predicted - truth)])
    print(format_table(
        rows,
        headers=["viewer", "movie", "true", "predicted", "abs error"],
    ))
    if errors:
        print(f"\nmean absolute error: {np.mean(errors):.2f} rating points "
              "(scale 1..10)")


if __name__ == "__main__":
    main()
