#!/usr/bin/env python
"""Quickstart: the delta-cluster model and FLOC in five minutes.

Walks through the paper's running examples:

1. Figure 1's intuition -- three far-apart vectors that are perfectly
   coherent under shifting;
2. Figure 4's yeast excerpt -- a perfect delta-cluster hiding in a messy
   matrix, with the bases/residue arithmetic of Section 3;
3. mining: plant clusters in a synthetic matrix and let FLOC find them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Constraints,
    DataMatrix,
    DeltaCluster,
    figure4_cluster,
    figure4_matrix,
    floc,
    generate_embedded,
    recall_precision,
)
from repro.core.residue import compute_bases


def figure1_intuition():
    print("=" * 70)
    print("1. Shifting coherence (Figure 1)")
    print("=" * 70)
    d1 = [1.0, 5.0, 23.0, 12.0, 20.0]
    d2 = [11.0, 15.0, 33.0, 22.0, 30.0]
    d3 = [111.0, 115.0, 133.0, 122.0, 130.0]
    matrix = DataMatrix([d1, d2, d3])
    cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3, 4))
    print(f"vectors:\n  d1 = {d1}\n  d2 = {d2}\n  d3 = {d3}")
    print(f"Euclidean distance d1-d3: "
          f"{np.linalg.norm(np.array(d1) - np.array(d3)):.1f}  (far apart!)")
    print(f"delta-cluster residue:    {cluster.residue(matrix):.6f}  "
          f"(perfectly coherent)")
    print()


def figure4_worked_example():
    print("=" * 70)
    print("2. The yeast micro-array excerpt (Figure 4)")
    print("=" * 70)
    matrix = figure4_matrix()
    cluster = figure4_cluster()
    sub = cluster.submatrix(matrix)
    bases = compute_bases(sub)
    genes = [matrix.row_labels[i] for i in cluster.rows]
    conditions = [matrix.col_labels[j] for j in cluster.cols]
    print(f"cluster genes:      {genes}")
    print(f"cluster conditions: {conditions}")
    print(f"object bases d_iJ:  {bases.row.tolist()}   (paper: 273, 190, 194)")
    print(f"attribute bases:    {bases.col.tolist()}   (paper: 347, 66, 244)")
    print(f"cluster base d_IJ:  {bases.grand:.0f}   (paper: 219)")
    print(f"residue:            {cluster.residue(matrix):.6f}   (paper: 0)")
    # Section 3's reconstruction identity for one entry:
    reconstructed = bases.row[0] + bases.col[0] - bases.grand
    print(f"d_VPS8,CH1I = 273 + 347 - 219 = {reconstructed:.0f}   (matrix: "
          f"{matrix.values[1, 0]:.0f})")
    print()


def mine_planted_clusters():
    print("=" * 70)
    print("3. Mining planted clusters with FLOC")
    print("=" * 70)
    dataset = generate_embedded(
        300, 60, 10, cluster_shape=(30, 20), noise=3.0, rng=3
    )
    embedded_residue = dataset.embedded_average_residue()
    print(f"matrix: {dataset.matrix.shape}, "
          f"{dataset.n_embedded} planted clusters of 30 x 20, "
          f"avg residue {embedded_residue:.2f}")

    result = floc(
        dataset.matrix,
        k=12,
        p=0.2,
        residue_target=2 * embedded_residue,
        constraints=Constraints(min_rows=3, min_cols=3),
        reseed_rounds=20,
        gain_mode="fast",
        rng=5,
    )
    scores = recall_precision(
        dataset.embedded, result.clustering.clusters, dataset.matrix.shape
    )
    print(f"FLOC ran {result.n_iterations} iterations "
          f"in {result.elapsed_seconds:.1f}s")
    print(f"recall    = {scores.recall:.2f}")
    print(f"precision = {scores.precision:.2f}")
    exact = sum(
        1 for c in result.clustering if (c.n_rows, c.n_cols) == (30, 20)
    )
    print(f"{exact}/{dataset.n_embedded} clusters recovered exactly")
    print()


def main():
    figure1_intuition()
    figure4_worked_example()
    mine_planted_clusters()


if __name__ == "__main__":
    main()
