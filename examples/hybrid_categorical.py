#!/usr/bin/env python
"""Hybrid numeric + categorical delta-clusters (paper footnote 2).

The paper notes that attributes "can take either numerical or categorical
values" and defers the categorical case to a full version that never
appeared.  This example shows the natural construction this library
ships: one-hot indicator columns, on which shifting coherence degenerates
to *agreement* -- so FLOC mines groups of objects that simultaneously

* follow a numeric shifting pattern on some measurements, and
* share category values on some discrete attributes.

Scenario: customers with numeric (spend, visits) profiles and categorical
(region, plan) attributes; a hidden segment shares a plan and a coherent
spend/visit pattern.

Run:  python examples/hybrid_categorical.py
"""

import numpy as np

from repro import Constraints, floc
from repro.data.categorical import encode_hybrid
from repro.eval.reporting import format_table


def build_customers(rng):
    n = 120
    spend = list(rng.uniform(10.0, 500.0, size=n))
    visits = list(rng.uniform(1.0, 60.0, size=n))
    regions = [str(rng.choice(["north", "south", "east", "west"]))
               for __ in range(n)]
    plans = [str(rng.choice(["basic", "plus", "pro"])) for __ in range(n)]

    # Hidden segment: customers 0-29 are all on the "pro" plan and their
    # spend/visits follow one shifted pattern (personal offset each).
    for row in range(30):
        offset = rng.uniform(-40.0, 40.0)
        spend[row] = 300.0 + offset
        visits[row] = 30.0 + offset * 0.1
        plans[row] = "pro"
    return spend, visits, regions, plans


def main():
    rng = np.random.default_rng(0)
    spend, visits, regions, plans = build_customers(rng)
    encoding = encode_hybrid(
        [spend, visits, regions, plans],
        categorical=[2, 3],
        scale_numeric=True,
    )
    names = ["spend", "visits", "region", "plan"]
    print(f"encoded matrix: {encoding.matrix.shape} "
          f"(2 numeric columns + "
          f"{encoding.matrix.n_cols - 2} category indicators)")
    print()

    result = floc(
        encoding.matrix, k=4, p=0.3,
        residue_target=0.05,   # indicator scale: near-agreement required
        constraints=Constraints(min_rows=4, min_cols=3),
        reseed_rounds=10, gain_mode="fast", ordering="greedy", rng=1,
    )
    rows = []
    for index, cluster in enumerate(result.clustering):
        if cluster.residue(encoding.matrix) > 0.05 or cluster.n_rows < 8:
            continue
        segment_hits = len(set(cluster.rows) & set(range(30)))
        described = encoding.describe_cluster(cluster)
        attributes = []
        for original, values in sorted(described.items()):
            if values:
                attributes.append(f"{names[original]}={'/'.join(values)}")
            else:
                attributes.append(names[original])
        rows.append([
            index,
            cluster.n_rows,
            ", ".join(attributes),
            f"{segment_hits}/30",
            cluster.residue(encoding.matrix),
        ])
    print(format_table(
        rows,
        headers=["cluster", "customers", "attributes (value)",
                 "hidden segment", "residue"],
        title="Coherent customer segments (numeric pattern + shared "
              "categories)",
    ))


if __name__ == "__main__":
    main()
