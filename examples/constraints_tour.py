#!/usr/bin/env python
"""Tour of the optional constraints (Sections 3 and 4.3).

The delta-cluster model supports three user constraints, all enforced by
blocking violating actions (gain = -inf) during FLOC's iterations:

* **Cons_o** -- a cap on the pairwise overlap between clusters
  (non-overlapping clusterings with a cap of ~0);
* **Cons_c** -- coverage: every object must stay covered by some cluster
  (the collaborative-filtering requirement that every customer belongs
  somewhere);
* **Cons_v** -- bounds on cluster volume (statistical significance).

This example mines the same workload under different constraint sets and
prints what changes.  It finishes with the permutation significance test
(`repro.eval.significance`) that quantifies what Cons_v's lower bound is
protecting against.

Run:  python examples/constraints_tour.py
"""

from repro import Constraints, floc, generate_embedded, residue_significance
from repro.eval.reporting import format_table


def mine(dataset, target, constraints, rng=5):
    return floc(
        dataset.matrix, k=10, p=0.2,
        residue_target=target,
        constraints=constraints,
        reseed_rounds=10, gain_mode="fast", ordering="greedy", rng=rng,
    )


def main():
    dataset = generate_embedded(
        300, 60, 8, cluster_shape=(30, 20), noise=3.0, rng=3
    )
    target = 2 * dataset.embedded_average_residue()
    print(f"workload: {dataset.matrix.shape}, 8 planted 30x20 clusters, "
          f"residue target {target:.1f}\n")

    variants = [
        ("baseline (2x2 floor only)", Constraints()),
        ("structural 4x4 floor", Constraints(min_rows=4, min_cols=4)),
        ("Cons_o: overlap <= 10%",
         Constraints(min_rows=3, min_cols=3, max_overlap=0.1)),
        # A volume *floor* during the search strangles the shrink-to-core
        # cleanup (junk seeds stay junk at the floor) -- filter small
        # clusters from the result instead; only the cap runs mid-search.
        ("Cons_v: cells <= 700",
         Constraints(min_rows=3, min_cols=3, max_volume=700)),
    ]
    rows = []
    results = {}
    for label, constraints in variants:
        result = mine(dataset, target, constraints)
        results[label] = result
        clustering = result.clustering
        rows.append([
            label,
            clustering.average_residue(),
            clustering.total_volume(),
            clustering.max_pairwise_overlap(),
            max(c.entry_count() for c in clustering),
        ])
    print(format_table(
        rows,
        headers=["constraints", "avg residue", "total volume",
                 "max overlap", "largest cells"],
        title="Mining the same matrix under different constraint sets",
    ))
    print()

    overlap_run = results["Cons_o: overlap <= 10%"].clustering
    print(f"Cons_o check: max pairwise overlap = "
          f"{overlap_run.max_pairwise_overlap():.3f} (cap was 0.10)")
    volume_run = results["Cons_v: cells <= 700"].clustering
    sizes = sorted(c.entry_count() for c in volume_run)
    print(f"Cons_v check: cluster cell counts = {sizes} (cap was 700)")
    print()

    # Why Cons_v's lower bound matters: tiny clusters are trivially
    # coherent.  The permutation test quantifies it.
    print("Significance of a discovered cluster vs a tiny one:")
    baseline = results["baseline (2x2 floor only)"].clustering
    big = max(baseline, key=lambda c: c.volume(dataset.matrix))
    small = min(
        (c for c in baseline if not c.is_empty),
        key=lambda c: c.entry_count(),
    )
    rows = []
    for label, cluster in (("largest", big), ("smallest", small)):
        report = residue_significance(
            dataset.matrix, cluster, n_samples=200, rng=0
        )
        rows.append([
            label,
            f"{cluster.n_rows}x{cluster.n_cols}",
            report.cluster_residue,
            report.null_mean,
            report.p_value,
        ])
    print(format_table(
        rows,
        headers=["cluster", "shape", "residue", "null mean residue",
                 "p-value"],
    ))


if __name__ == "__main__":
    main()
