#!/usr/bin/env python
"""Anatomy of a FLOC run on synthetic data (Section 6.2).

Shows the knobs the paper's synthetic experiments sweep and what each one
does, on one workload:

* the three action orderings (fixed / random / weighted) plus the greedy
  extension, with their recall/precision;
* missing values and the alpha occupancy threshold;
* the alternative algorithm of Section 4.4 on the same matrix, with its
  quadratic derived-dimensionality cost printed.

Run:  python examples/synthetic_recovery.py
"""

import time

import numpy as np

from repro import (
    Constraints,
    alternative_delta_clusters,
    floc,
    generate_embedded,
    recall_precision,
)
from repro.eval.reporting import format_table


def ordering_comparison(dataset, target):
    print("Action orderings (compare Table 4's fixed < random < weighted):")
    rows = []
    for ordering in ("fixed", "random", "weighted", "greedy"):
        scores = []
        for seed in range(3):
            result = floc(
                dataset.matrix, k=12, p=0.2,
                ordering=ordering, residue_target=target,
                constraints=Constraints(min_rows=3, min_cols=3),
                reseed_rounds=10, gain_mode="fast", rng=100 + seed,
            )
            scores.append(recall_precision(
                dataset.embedded, result.clustering.clusters,
                dataset.matrix.shape,
            ))
        rows.append([
            ordering,
            float(np.mean([s.recall for s in scores])),
            float(np.mean([s.precision for s in scores])),
        ])
    print(format_table(rows, headers=["ordering", "recall", "precision"]))
    print()


def missing_values_demo(target):
    print("Missing values + alpha occupancy (Definition 3.1):")
    rows = []
    for missing in (0.0, 0.1, 0.2):
        dataset = generate_embedded(
            300, 60, 10, cluster_shape=(30, 20), noise=3.0,
            missing_fraction=missing, rng=3,
        )
        result = floc(
            dataset.matrix, k=12, p=0.2, alpha=0.6,
            residue_target=target,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=10, gain_mode="fast", ordering="greedy", rng=5,
        )
        scores = recall_precision(
            dataset.embedded, result.clustering.clusters, dataset.matrix.shape
        )
        rows.append([
            f"{missing:.0%}", f"{dataset.matrix.density:.2f}",
            scores.recall, scores.precision,
        ])
    print(format_table(
        rows, headers=["missing", "density", "recall", "precision"]
    ))
    print()


def alternative_algorithm_demo():
    print("The Section-4.4 alternative algorithm (derived attributes + "
          "CLIQUE):")
    rng = np.random.default_rng(11)
    values = rng.uniform(0, 500, size=(120, 8))
    rows_idx = np.arange(30)
    values[np.ix_(rows_idx, [1, 4, 6])] = (
        100.0
        + rng.uniform(-50, 50, size=30)[:, None]
        + np.array([0.0, 40.0, -30.0])[None, :]
    )
    started = time.perf_counter()
    result = alternative_delta_clusters(
        values, xi=20, tau=0.1, min_rows=8, min_cols=3, max_residue=10.0
    )
    elapsed = time.perf_counter() - started
    print(f"  original attributes: 8 -> derived attributes: "
          f"{result.n_derived_attributes} (quadratic blow-up)")
    print(f"  subspace clusters found: {result.n_subspace_clusters}")
    print(f"  delta-clusters after clique mapping: {len(result.clusters)}")
    hits = [
        c for c in result.clusters
        if set(c.cols) == {1, 4, 6}
        and len(set(c.rows) & set(range(30))) >= 20
    ]
    print(f"  planted cluster recovered: {'yes' if hits else 'no'}")
    print(f"  time: {elapsed:.2f}s (CLIQUE phase: "
          f"{result.clique_seconds:.2f}s)")
    print()


def main():
    dataset = generate_embedded(
        300, 60, 10, cluster_shape=(30, 20), noise=3.0, rng=3
    )
    target = 2 * dataset.embedded_average_residue()
    print(f"workload: {dataset.matrix.shape} matrix, 10 planted 30x20 "
          f"clusters, residue target {target:.1f}\n")
    ordering_comparison(dataset, target)
    missing_values_demo(target)
    alternative_algorithm_demo()


if __name__ == "__main__":
    main()
