"""Legacy setup shim so ``pip install -e . --no-use-pep517`` works offline
(the sandbox has setuptools but no ``wheel`` package, which PEP 517
editable installs require).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
