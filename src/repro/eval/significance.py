"""Statistical significance of discovered delta-clusters.

The paper's Cons_v constraint exists so that "certain statistical
significance [can be] warranted" (Section 3) -- but it never quantifies
significance.  This module supplies the standard empirical test: compare
a discovered cluster's residue against the residue distribution of
random submatrices of the same shape drawn from the same matrix.  A
coherent cluster sits far into the left tail; a cluster carved out of
background noise does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from ..core.residue import submatrix_residue
from ..core.rng import RngLike, resolve_rng

__all__ = [
    "SignificanceReport",
    "empirical_residue_distribution",
    "residue_significance",
]


@dataclass(frozen=True)
class SignificanceReport:
    """Outcome of the permutation test for one cluster."""

    cluster_residue: float
    null_mean: float
    null_std: float
    p_value: float
    n_samples: int

    @property
    def z_score(self) -> float:
        """Standardized distance below the null mean (negative = better)."""
        if self.null_std == 0.0:
            return 0.0
        return (self.cluster_residue - self.null_mean) / self.null_std


def empirical_residue_distribution(
    matrix: DataMatrix,
    shape: Tuple[int, int],
    n_samples: int,
    rng: RngLike = None,
) -> np.ndarray:
    """Residues of ``n_samples`` random submatrices of the given shape."""
    n_rows, n_cols = shape
    if n_rows < 1 or n_cols < 1:
        raise ValueError(f"shape must be positive, got {shape}")
    if n_rows > matrix.n_rows or n_cols > matrix.n_cols:
        raise ValueError(
            f"shape {shape} exceeds matrix shape {matrix.shape}"
        )
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    generator = resolve_rng(rng)
    residues = np.empty(n_samples)
    for i in range(n_samples):
        rows = generator.choice(matrix.n_rows, size=n_rows, replace=False)
        cols = generator.choice(matrix.n_cols, size=n_cols, replace=False)
        residues[i] = submatrix_residue(matrix.values, rows, cols)
    return residues


def residue_significance(
    matrix: DataMatrix,
    cluster: DeltaCluster,
    n_samples: int = 200,
    rng: RngLike = None,
) -> SignificanceReport:
    """Permutation test: is the cluster more coherent than chance?

    The p-value is the fraction of random same-shape submatrices with
    residue at most the cluster's (with the +1 smoothing that keeps it
    strictly positive).
    """
    if cluster.is_empty:
        raise ValueError("cannot test an empty cluster")
    observed = cluster.residue(matrix)
    null = empirical_residue_distribution(
        matrix, (cluster.n_rows, cluster.n_cols), n_samples, rng
    )
    better_or_equal = int((null <= observed).sum())
    p_value = (better_or_equal + 1) / (n_samples + 1)
    return SignificanceReport(
        cluster_residue=observed,
        null_mean=float(null.mean()),
        null_std=float(null.std()),
        p_value=float(p_value),
        n_samples=n_samples,
    )
