"""Experiment harness: configured FLOC runs with measured outcomes.

The paper's evaluation sweeps a handful of knobs (matrix size, k, seeding
volumes, action ordering, embedded-volume variance) and reports iterations,
response time, residue, recall and precision.  :class:`ExperimentConfig`
names those knobs once; :func:`run_trial` executes one generated-workload
run end to end and returns a flat record; :func:`run_trials` averages
repeated runs over different random seeds (the paper reports averages too).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.constraints import Constraints
from ..core.floc import floc
from ..core.rng import RngLike, resolve_rng
from ..core.seeding import Seed, volume_seeds
from ..obs.perf.counters import WorkCounters
from ..obs.tracer import NULL_TRACER, Tracer
from ..data.distributions import erlang_volumes
from ..data.synthetic import SyntheticDataset, generate_embedded
from .metrics import recall_precision

__all__ = [
    "ExperimentConfig",
    "TrialResult",
    "generate_workload",
    "run_trial",
    "run_trials",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One synthetic-workload FLOC experiment, fully specified.

    Workload knobs mirror Section 6.2: matrix shape, number and volume
    distribution of embedded clusters, noise, missing fraction.  Algorithm
    knobs mirror Sections 4-5: k, seeding (p or explicit volumes),
    ordering, gain mode, constraints.
    """

    n_rows: int = 100
    n_cols: int = 20
    n_embedded: int = 5
    embedded_mean_volume: Optional[float] = None
    embedded_variance_level: float = 0.0
    embedded_shape: Optional[Tuple[int, int]] = None
    embedded_aspect: Optional[float] = None
    noise: float = 0.0
    missing_fraction: float = 0.0
    k: int = 5
    p: Union[float, Sequence[float]] = 0.1
    seed_mean_volume: Optional[float] = None
    seed_variance_level: float = 0.0
    alpha: float = 0.0
    ordering: str = "weighted"
    gain_mode: str = "exact"
    residue_target: Optional[float] = None
    residue_target_factor: Optional[float] = None
    mandatory_moves: bool = False
    reseed_rounds: int = 0
    constraints: Optional[Constraints] = None
    max_iterations: int = 60

    def with_overrides(self, **kwargs: object) -> "ExperimentConfig":
        """A modified copy -- convenient for parameter sweeps."""
        return replace(self, **kwargs)


@dataclass
class TrialResult:
    """Flat record of one run: the columns the paper's tables print.

    ``work`` carries the run's deterministic
    :class:`~repro.obs.perf.counters.WorkCounters` when the trial was
    asked to count (``None`` otherwise); it is deliberately excluded
    from :meth:`as_record`, which stays the paper-table schema.
    """

    n_iterations: int
    elapsed_seconds: float
    average_residue: float
    recall: float
    precision: float
    total_volume: int
    n_actions: int
    converged: bool
    work: Optional[WorkCounters] = None

    def as_record(self) -> Dict[str, float]:
        return {
            "iterations": float(self.n_iterations),
            "time_s": self.elapsed_seconds,
            "residue": self.average_residue,
            "recall": self.recall,
            "precision": self.precision,
            "volume": float(self.total_volume),
            "actions": float(self.n_actions),
        }


def _build_seeds(
    config: ExperimentConfig, rng: np.random.Generator
) -> Optional[List[Seed]]:
    if config.seed_mean_volume is None:
        return None
    volumes = erlang_volumes(
        config.seed_mean_volume, config.seed_variance_level, config.k, rng
    )
    return volume_seeds(config.n_rows, config.n_cols, volumes, rng)


def generate_workload(
    config: ExperimentConfig, rng: np.random.Generator
) -> SyntheticDataset:
    """Generate the synthetic matrix a config describes."""
    return generate_embedded(
        config.n_rows,
        config.n_cols,
        config.n_embedded,
        mean_volume=config.embedded_mean_volume,
        volume_variance_level=config.embedded_variance_level,
        cluster_shape=config.embedded_shape,
        cluster_aspect=config.embedded_aspect,
        noise=config.noise,
        missing_fraction=config.missing_fraction,
        rng=rng,
    )


def run_trial(
    config: ExperimentConfig,
    rng: RngLike = None,
    tracer: Optional[Tracer] = None,
    work: Optional[WorkCounters] = None,
) -> TrialResult:
    """Generate one workload, run FLOC on it, measure everything.

    ``tracer`` is forwarded to :func:`repro.core.floc.floc`, so a traced
    trial additionally yields the full convergence event stream; the
    returned record is unchanged by tracing.  ``work`` is likewise
    forwarded -- a counted trial carries its counters on
    :attr:`TrialResult.work` without changing any other column.
    """
    generator = resolve_rng(rng)
    if tracer is None:
        tracer = NULL_TRACER
    with tracer.span("workload"):
        dataset = generate_workload(config, generator)
        seeds = _build_seeds(config, generator)
    target = config.residue_target
    if target is None and config.residue_target_factor is not None:
        # Scale the target to the measured embedded residue -- the usual
        # way the paper-style quality experiments are configured.
        target = config.residue_target_factor * max(
            dataset.embedded_average_residue(), 1e-9
        )
    started = tracer.clock()
    result = floc(
        dataset.matrix,
        config.k,
        p=config.p,
        alpha=config.alpha,
        ordering=config.ordering,
        gain_mode=config.gain_mode,
        residue_target=target,
        mandatory_moves=config.mandatory_moves,
        reseed_rounds=config.reseed_rounds,
        constraints=config.constraints,
        seeds=seeds,
        rng=generator,
        max_iterations=config.max_iterations,
        tracer=tracer,
        work=work,
    )
    elapsed = tracer.clock() - started
    scores = recall_precision(
        dataset.embedded, result.clustering.clusters, dataset.matrix.shape
    )
    return TrialResult(
        n_iterations=result.n_iterations,
        elapsed_seconds=elapsed,
        average_residue=result.average_residue,
        recall=scores.recall,
        precision=scores.precision,
        total_volume=result.clustering.total_volume(),
        n_actions=result.n_actions,
        converged=result.converged,
        work=result.work,
    )


def run_trials(
    config: ExperimentConfig,
    n_trials: int,
    base_seed: int = 0,
    tracer: Optional[Tracer] = None,
) -> Dict[str, float]:
    """Average ``n_trials`` runs over seeds ``base_seed .. base_seed+n-1``.

    Returns the mean of every :meth:`TrialResult.as_record` column.
    A ``tracer`` is shared across trials; each trial's events carry a
    ``trial`` context key.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if tracer is None:
        tracer = NULL_TRACER
    records = []
    for trial in range(n_trials):
        if tracer.enabled:
            tracer.push_context(trial=trial)
        try:
            records.append(
                run_trial(config, rng=base_seed + trial, tracer=tracer)
                .as_record()
            )
        finally:
            if tracer.enabled:
                tracer.pop_context()
    return {
        key: float(np.mean([record[key] for record in records]))
        for key in records[0]
    }
