"""Clustering quality metrics (Section 6 of the paper).

The paper scores synthetic-data recovery with entry-level **recall** and
**precision**: let ``U`` be the set of matrix cells covered by the embedded
clusters and ``V`` the set covered by the discovered ones; then

    recall    = |U intersect V| / |U|
    precision = |U intersect V| / |V|

plus the **average residue** of the discovered clusters, the per-cluster
statistics of Table 1 (volume, row/column counts, residue, bounding-box
diameter), and cluster-matching helpers used to diagnose which embedded
cluster each discovered one corresponds to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.clustering import Clustering

__all__ = [
    "RecallPrecision",
    "coverage_sets",
    "recall_precision",
    "match_clusters",
    "jaccard_entries",
    "clustering_report",
]


@dataclass(frozen=True)
class RecallPrecision:
    """Entry-level recall and precision, plus the raw cell counts."""

    recall: float
    precision: float
    embedded_cells: int
    discovered_cells: int
    shared_cells: int

    @property
    def f1(self) -> float:
        """Harmonic mean of recall and precision (0 when both are 0)."""
        total = self.recall + self.precision
        if total == 0:
            return 0.0
        return 2.0 * self.recall * self.precision / total


def coverage_sets(
    clusters: Sequence[DeltaCluster], shape: Tuple[int, int]
) -> np.ndarray:
    """Boolean coverage matrix of a cluster collection."""
    covered = np.zeros(shape, dtype=bool)
    for cluster in clusters:
        if not cluster.is_empty:
            covered[np.ix_(cluster.rows, cluster.cols)] = True
    return covered


def recall_precision(
    embedded: Sequence[DeltaCluster],
    discovered: Sequence[DeltaCluster],
    shape: Tuple[int, int],
) -> RecallPrecision:
    """Entry-level recall/precision between two cluster collections.

    Degenerate cases follow the natural conventions: recall is 1.0 when
    nothing was embedded, precision is 1.0 when nothing was discovered
    (no false positives can exist).
    """
    embedded_cov = coverage_sets(embedded, shape)
    discovered_cov = coverage_sets(discovered, shape)
    u = int(embedded_cov.sum())
    v = int(discovered_cov.sum())
    shared = int((embedded_cov & discovered_cov).sum())
    recall = shared / u if u else 1.0
    precision = shared / v if v else 1.0
    return RecallPrecision(recall, precision, u, v, shared)


def jaccard_entries(first: DeltaCluster, second: DeltaCluster) -> float:
    """Jaccard similarity of two clusters' cell sets."""
    inter = first.overlap_entries(second)
    union = first.entry_count() + second.entry_count() - inter
    if union == 0:
        return 0.0
    return inter / union


def match_clusters(
    embedded: Sequence[DeltaCluster],
    discovered: Sequence[DeltaCluster],
) -> List[Tuple[int, Optional[int], float]]:
    """Greedy one-to-one matching of embedded to discovered clusters.

    Returns one ``(embedded_index, discovered_index_or_None, jaccard)``
    triple per embedded cluster, matching highest-Jaccard pairs first.
    Useful for diagnosing *which* planted cluster a run failed to recover.
    """
    pairs = []
    for i, emb in enumerate(embedded):
        for j, disc in enumerate(discovered):
            score = jaccard_entries(emb, disc)
            if score > 0.0:
                pairs.append((score, i, j))
    pairs.sort(reverse=True)
    matched_embedded: Dict[int, Tuple[int, float]] = {}
    used_discovered: set = set()
    for score, i, j in pairs:
        if i in matched_embedded or j in used_discovered:
            continue
        matched_embedded[i] = (j, score)
        used_discovered.add(j)
    out: List[Tuple[int, Optional[int], float]] = []
    for i in range(len(embedded)):
        if i in matched_embedded:
            j, score = matched_embedded[i]
            out.append((i, j, score))
        else:
            out.append((i, None, 0.0))
    return out


def clustering_report(
    clustering: Clustering,
    embedded: Optional[Sequence[DeltaCluster]] = None,
) -> Dict[str, float]:
    """One-line quality report: the numbers the paper's tables print.

    Keys: ``average_residue``, ``total_volume``, ``row_coverage``,
    ``col_coverage``, and -- when ``embedded`` ground truth is supplied --
    ``recall``, ``precision``, ``f1``.
    """
    report: Dict[str, float] = {
        "average_residue": clustering.average_residue(),
        "total_volume": float(clustering.total_volume()),
        "row_coverage": clustering.row_coverage(),
        "col_coverage": clustering.col_coverage(),
    }
    if embedded is not None:
        scores = recall_precision(
            embedded, clustering.clusters, clustering.matrix.shape
        )
        report["recall"] = scores.recall
        report["precision"] = scores.precision
        report["f1"] = scores.f1
    return report
