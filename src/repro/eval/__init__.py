"""Evaluation: metrics, experiment harness, and table rendering."""

from .experiment import ExperimentConfig, TrialResult, generate_workload, run_trial, run_trials
from .metrics import (
    RecallPrecision,
    clustering_report,
    coverage_sets,
    jaccard_entries,
    match_clusters,
    recall_precision,
)
from .reporting import format_records, format_series, format_table
from .significance import (
    SignificanceReport,
    empirical_residue_distribution,
    residue_significance,
)

__all__ = [
    "ExperimentConfig",
    "RecallPrecision",
    "SignificanceReport",
    "TrialResult",
    "empirical_residue_distribution",
    "residue_significance",
    "clustering_report",
    "coverage_sets",
    "format_records",
    "format_series",
    "format_table",
    "generate_workload",
    "jaccard_entries",
    "match_clusters",
    "recall_precision",
    "run_trial",
    "run_trials",
]
