"""Plain-text table rendering for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figure series and
prints it in the same row/column layout, so a reader can eyeball the shape
against the original.  This module owns the formatting so benches stay
focused on the experiment itself.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_records", "format_series", "format_histogram"]


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Sequence[object]],
    headers: Sequence[str],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are formatted to ``precision`` decimals; everything else via
    ``str``.  Column widths adapt to content.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, headers has {len(headers)}"
            )
        rendered.append([_render_cell(cell, precision) for cell in row])
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        cell.ljust(width) for cell, width in zip(rendered[0], widths)
    )
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered[1:]:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_records(
    records: Iterable[Dict[str, object]],
    columns: Sequence[str],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render dict records (one per row) selecting ``columns`` in order."""
    rows = []
    for record in records:
        missing = [c for c in columns if c not in record]
        if missing:
            raise KeyError(f"record missing columns: {missing}")
        rows.append([record[c] for c in columns])
    return format_table(rows, columns, title, precision)


def format_histogram(
    edges: Sequence[float],
    counts: Sequence[int],
    title: Optional[str] = None,
    width: int = 40,
    precision: int = 3,
) -> str:
    """Render a bucketed histogram as aligned rows with ASCII bars.

    ``edges`` must have ``len(counts) + 1`` entries (shared bucket
    edges).  Bars scale so the fullest bucket spans ``width`` columns;
    an all-zero histogram renders empty bars rather than dividing by
    zero.
    """
    if len(edges) != len(counts) + 1:
        raise ValueError(
            f"edges has {len(edges)} entries, expected {len(counts) + 1}"
        )
    peak = max(counts) if counts else 0
    rows = []
    for i, count in enumerate(counts):
        label = f"[{edges[i]:.{precision}g}, {edges[i + 1]:.{precision}g})"
        if i == len(counts) - 1:
            label = label[:-1] + "]"
        bar = "#" * (round(width * count / peak) if peak else 0)
        rows.append([label, count, bar])
    return format_table(rows, headers=["bucket", "count", ""], title=title)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[object]],
    title: Optional[str] = None,
    precision: int = 2,
) -> str:
    """Render figure-style data: one x column plus one column per series.

    This is the textual stand-in for the paper's line plots (Figures
    8-10): same x sweep, same curves, printed as columns.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, "
                f"x has {len(x_values)}"
            )
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(rows, headers, title, precision)
