"""repro: a full reproduction of "delta-Clusters: Capturing Subspace
Correlation in a Large Data Set" (Yang, Wang, Wang, Yu -- ICDE 2002).

The package implements the delta-cluster model (shifting coherence with
per-object/per-attribute bias and missing values), the FLOC move-based
mining algorithm with all three action orderings and the optional
constraints, the Cheng & Church biclustering baseline, the CLIQUE-based
alternative algorithm of Section 4.4, the paper's synthetic / MovieLens /
micro-array workloads, and an evaluation harness that regenerates every
table and figure of the paper's experimental section.

Quickstart
----------
>>> import numpy as np
>>> from repro import DataMatrix, floc
>>> rng = np.random.default_rng(0)
>>> values = rng.uniform(0, 100, size=(60, 12))
>>> values[:10, :4] = 50 + rng.uniform(-20, 20, 10)[:, None] \
...     + rng.uniform(-20, 20, 4)[None, :]
>>> result = floc(DataMatrix(values), k=1, rng=0)
>>> result.average_residue < 10
True
"""

from .baselines import (
    Bicluster,
    ChengChurchResult,
    fill_missing_with_random,
    find_bicluster,
    find_biclusters,
    msr,
    pearson_r,
)
from .core import (
    Action,
    Clustering,
    Constraints,
    DataMatrix,
    DeltaCluster,
    FlocResult,
    MiningResult,
    floc,
    impute,
    mean_abs_residue,
    mean_squared_residue,
    mine_delta_clusters,
    pool_mining_results,
    predict_entry,
    prediction_error,
    residue_matrix,
    restart_seed,
    run_restart,
    submatrix_residue,
)
from .data import (
    MovieLensDataset,
    SyntheticDataset,
    YeastDataset,
    figure4_cluster,
    figure4_matrix,
    generate_embedded,
    generate_ratings,
    generate_yeast_like,
)
from .eval import (
    ExperimentConfig,
    SignificanceReport,
    clustering_report,
    format_table,
    recall_precision,
    residue_significance,
    run_trial,
    run_trials,
)
from .obs import (
    ActionEvent,
    ConsoleProgressSink,
    FaultEvent,
    IterationEvent,
    JsonlSink,
    MetricsRegistry,
    OtlpJsonSink,
    RetryEvent,
    RingBufferSink,
    SeedEvent,
    StatsdSink,
    TaskEvent,
    TraceAnalysis,
    TraceDiff,
    Tracer,
    analyze_records,
    analyze_trace,
    diff_traces,
    disable_profiling,
    enable_profiling,
    profile_report,
    profiled,
    read_jsonl,
)
from .runtime import (
    CheckpointStore,
    DegradationReport,
    FaultPlan,
    FaultSpec,
    RunConfig,
    RuntimeResult,
    TaskFailure,
    resume_run,
    run_supervised,
)
from .subspace import alternative_delta_clusters, clique, derived_matrix

__version__ = "1.0.0"

__all__ = [
    "Action",
    "ActionEvent",
    "Bicluster",
    "ChengChurchResult",
    "CheckpointStore",
    "Clustering",
    "ConsoleProgressSink",
    "Constraints",
    "DataMatrix",
    "DegradationReport",
    "DeltaCluster",
    "ExperimentConfig",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FlocResult",
    "IterationEvent",
    "JsonlSink",
    "MetricsRegistry",
    "MiningResult",
    "MovieLensDataset",
    "OtlpJsonSink",
    "RetryEvent",
    "RingBufferSink",
    "RunConfig",
    "RuntimeResult",
    "SeedEvent",
    "SignificanceReport",
    "StatsdSink",
    "SyntheticDataset",
    "TaskEvent",
    "TaskFailure",
    "TraceAnalysis",
    "TraceDiff",
    "Tracer",
    "YeastDataset",
    "__version__",
    "alternative_delta_clusters",
    "analyze_records",
    "analyze_trace",
    "clique",
    "clustering_report",
    "derived_matrix",
    "diff_traces",
    "disable_profiling",
    "enable_profiling",
    "figure4_cluster",
    "figure4_matrix",
    "fill_missing_with_random",
    "find_bicluster",
    "find_biclusters",
    "floc",
    "format_table",
    "generate_embedded",
    "generate_ratings",
    "generate_yeast_like",
    "impute",
    "mean_abs_residue",
    "mean_squared_residue",
    "mine_delta_clusters",
    "msr",
    "pearson_r",
    "pool_mining_results",
    "predict_entry",
    "prediction_error",
    "profile_report",
    "profiled",
    "read_jsonl",
    "recall_precision",
    "residue_matrix",
    "residue_significance",
    "restart_seed",
    "resume_run",
    "run_restart",
    "run_supervised",
    "run_trial",
    "run_trials",
    "submatrix_residue",
]
