"""Pearson R correlation (Section 3's motivating counter-example).

The paper opens the model section by examining the Pearson R correlation
[Shardanand & Maes 1995] as a candidate coherence measure and rejecting it:
it is a *global* measure over all attributes, so two viewers who agree
strongly within two genres but with opposite genre-level biases score near
zero.  The baseline lives here so tests and examples can demonstrate that
exact failure mode, and so a correlation-threshold clustering baseline is
available for comparison.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from ..core.matrix import DataMatrix

__all__ = ["pearson_r", "pairwise_pearson", "correlation_groups"]


def pearson_r(first: np.ndarray, second: np.ndarray) -> float:
    """Pearson R of two vectors over their jointly specified entries.

    Implements the formula quoted in Section 1 of the paper:
    ``sum((o1-m1)(o2-m2)) / sqrt(sum((o1-m1)^2) * sum((o2-m2)^2))``.
    Returns 0.0 when fewer than two joint entries exist or either vector
    is constant (zero variance) on the joint support.
    """
    first = np.asarray(first, dtype=np.float64)
    second = np.asarray(second, dtype=np.float64)
    if first.shape != second.shape:
        raise ValueError(
            f"vectors must have equal length, got {first.shape} vs {second.shape}"
        )
    joint = ~np.isnan(first) & ~np.isnan(second)
    if joint.sum() < 2:
        return 0.0
    a = first[joint]
    b = second[joint]
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    # A constant vector must read as zero variance, but centering leaves
    # O(eps * |value|) rounding noise, so the check needs a relative floor
    # -- otherwise the "correlation" of that noise (+-1) is returned.
    eps = np.finfo(np.float64).eps
    floor_a = a.size * (16.0 * eps * max(1.0, float(np.abs(a).max()))) ** 2
    floor_b = b.size * (16.0 * eps * max(1.0, float(np.abs(b).max()))) ** 2
    var_a = float(np.square(a_centered).sum())
    var_b = float(np.square(b_centered).sum())
    if var_a <= floor_a or var_b <= floor_b:
        return 0.0
    return float((a_centered * b_centered).sum() / np.sqrt(var_a * var_b))


def pairwise_pearson(matrix: Union[DataMatrix, np.ndarray]) -> np.ndarray:
    """Symmetric matrix of Pearson R between every pair of rows."""
    values = matrix.values if isinstance(matrix, DataMatrix) else np.asarray(matrix)
    n = values.shape[0]
    out = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            r = pearson_r(values[i], values[j])
            out[i, j] = r
            out[j, i] = r
    return out


def correlation_groups(
    matrix: Union[DataMatrix, np.ndarray], threshold: float = 0.9
) -> List[Tuple[int, ...]]:
    """Greedy full-space correlation clustering of rows.

    Rows join a group when their Pearson R with the group's first member
    exceeds ``threshold``.  This is the naive global-correlation baseline
    the delta-cluster model generalizes: it cannot see coherence confined
    to a subset of attributes, which the tests demonstrate.
    """
    if not -1.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [-1, 1], got {threshold}")
    values = matrix.values if isinstance(matrix, DataMatrix) else np.asarray(matrix)
    n = values.shape[0]
    unassigned = list(range(n))
    groups: List[Tuple[int, ...]] = []
    while unassigned:
        anchor = unassigned.pop(0)
        members = [anchor]
        rest = []
        for candidate in unassigned:
            if pearson_r(values[anchor], values[candidate]) >= threshold:
                members.append(candidate)
            else:
                rest.append(candidate)
        unassigned = rest
        groups.append(tuple(members))
    return groups
