"""Baseline algorithms the paper compares against or argues about."""

from .cheng_church import (
    Bicluster,
    ChengChurchResult,
    col_msr_contributions,
    fill_missing_with_random,
    find_bicluster,
    find_biclusters,
    msr,
    multiple_node_deletion,
    node_addition,
    row_msr_contributions,
    single_node_deletion,
)
from .pearson import correlation_groups, pairwise_pearson, pearson_r

__all__ = [
    "Bicluster",
    "ChengChurchResult",
    "col_msr_contributions",
    "correlation_groups",
    "fill_missing_with_random",
    "find_bicluster",
    "find_biclusters",
    "msr",
    "multiple_node_deletion",
    "node_addition",
    "pairwise_pearson",
    "pearson_r",
    "row_msr_contributions",
    "single_node_deletion",
]
