"""Cheng & Church biclustering (ISMB 2000) -- the paper's baseline [3].

Section 6.1.2 compares FLOC against "the algorithm described in [3]" on the
yeast matrix: FLOC finds 100 clusters with average residue 10.34 vs 12.54,
~20% more aggregated volume, and an order of magnitude less response time.
To regenerate that comparison we implement the full Cheng & Church
pipeline:

* the mean **squared** residue score ``H(I, J)`` (their delta is a bound
  on H, not on the arithmetic-mean residue FLOC uses),
* **single node deletion** (Algorithm 1): repeatedly drop the row or
  column with the largest squared-residue contribution until ``H <=
  delta``,
* **multiple node deletion** (Algorithm 2): while the matrix is large,
  drop *every* row/column whose contribution exceeds
  ``threshold * H`` in one sweep,
* **node addition** (Algorithm 3): grow the bicluster back by adding
  rows/columns whose contribution does not raise ``H``, optionally
  including *inverted* rows (mirror-image co-regulation), and
* **masking**: after a bicluster is reported, its cells in the working
  matrix are replaced with uniform random values so the next run finds a
  different bicluster.  This masking is exactly the behaviour the paper
  criticizes ("produces less accurate result ... bears an inefficient
  performance"), so it must be reproduced faithfully.

Missing values: Cheng & Church assume a fully specified matrix; their own
preprocessing replaces missing entries with random values, provided here
as :func:`fill_missing_with_random`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from ..core.rng import RngLike, resolve_rng
from ..core.residue import compute_bases

__all__ = [
    "Bicluster",
    "ChengChurchResult",
    "msr",
    "row_msr_contributions",
    "col_msr_contributions",
    "single_node_deletion",
    "multiple_node_deletion",
    "node_addition",
    "find_bicluster",
    "find_biclusters",
    "fill_missing_with_random",
]


@dataclass(frozen=True)
class Bicluster:
    """One discovered bicluster with its final squared-residue score."""

    rows: Tuple[int, ...]
    cols: Tuple[int, ...]
    score: float

    def to_delta_cluster(self) -> DeltaCluster:
        return DeltaCluster(self.rows, self.cols)

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_cols(self) -> int:
        return len(self.cols)


@dataclass
class ChengChurchResult:
    """All biclusters found in one run, plus timing."""

    biclusters: List[Bicluster] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def to_delta_clusters(self) -> List[DeltaCluster]:
        return [b.to_delta_cluster() for b in self.biclusters]


# ----------------------------------------------------------------------
# Scores
# ----------------------------------------------------------------------
def msr(sub: np.ndarray) -> float:
    """Mean squared residue H(I, J) of a submatrix (count-aware)."""
    mask = ~np.isnan(sub)
    volume = int(mask.sum())
    if volume == 0:
        return 0.0
    bases = compute_bases(sub)
    raw = sub - bases.row[:, None] - bases.col[None, :] + bases.grand
    return float(np.square(np.where(mask, raw, 0.0)).sum() / volume)


def _squared_residues(sub: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mask = ~np.isnan(sub)
    bases = compute_bases(sub)
    raw = sub - bases.row[:, None] - bases.col[None, :] + bases.grand
    return np.square(np.where(mask, raw, 0.0)), mask


def row_msr_contributions(sub: np.ndarray) -> np.ndarray:
    """d(i): mean squared residue of each row within the submatrix."""
    squares, mask = _squared_residues(sub)
    counts = mask.sum(axis=1)
    return np.where(counts > 0, squares.sum(axis=1) / np.maximum(counts, 1), 0.0)


def col_msr_contributions(sub: np.ndarray) -> np.ndarray:
    """e(j): mean squared residue of each column within the submatrix."""
    squares, mask = _squared_residues(sub)
    counts = mask.sum(axis=0)
    return np.where(counts > 0, squares.sum(axis=0) / np.maximum(counts, 1), 0.0)


# ----------------------------------------------------------------------
# Algorithms 1-3
# ----------------------------------------------------------------------
def single_node_deletion(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    delta: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 1: drop the worst row/column until ``H <= delta``."""
    rows = np.asarray(rows, dtype=np.intp).copy()
    cols = np.asarray(cols, dtype=np.intp).copy()
    while rows.size > 1 and cols.size > 1:
        sub = values[np.ix_(rows, cols)]
        if msr(sub) <= delta:
            break
        d = row_msr_contributions(sub)
        e = col_msr_contributions(sub)
        worst_row = int(np.argmax(d))
        worst_col = int(np.argmax(e))
        if d[worst_row] >= e[worst_col]:
            rows = np.delete(rows, worst_row)
        else:
            cols = np.delete(cols, worst_col)
    return rows, cols


def multiple_node_deletion(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    delta: float,
    threshold: float = 1.2,
    min_rows_for_batch: int = 100,
    min_cols_for_batch: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 2: batch-drop every node whose contribution > threshold*H.

    ``threshold`` is Cheng & Church's alpha (> 1; they use 1.2).  Batch
    deletion only applies to an axis while it is larger than the
    corresponding ``min_*_for_batch`` (they use 100); below that the
    caller should finish with :func:`single_node_deletion`.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must exceed 1, got {threshold}")
    rows = np.asarray(rows, dtype=np.intp).copy()
    cols = np.asarray(cols, dtype=np.intp).copy()
    while True:
        sub = values[np.ix_(rows, cols)]
        h = msr(sub)
        if h <= delta:
            break
        changed = False
        if rows.size > min_rows_for_batch:
            d = row_msr_contributions(sub)
            keep = d <= threshold * h
            if keep.sum() >= 2 and not keep.all():
                rows = rows[keep]
                changed = True
                sub = values[np.ix_(rows, cols)]
                h = msr(sub)
                if h <= delta:
                    break
        if cols.size > min_cols_for_batch:
            e = col_msr_contributions(sub)
            keep = e <= threshold * h
            if keep.sum() >= 2 and not keep.all():
                cols = cols[keep]
                changed = True
        if not changed:
            break
    return rows, cols


def node_addition(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    include_inverted_rows: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 3: grow the bicluster without raising its score.

    Columns first, then rows -- each axis admits every candidate whose
    mean squared residue against the current bases is at most ``H``.
    With ``include_inverted_rows`` the mirror-image test
    ``-d_ij + d_iJ - d_Ij + d_IJ`` also admits rows (co-regulation with
    opposite sign), matching Cheng & Church's optional step.
    """
    n_rows, n_cols = values.shape
    rows = np.asarray(rows, dtype=np.intp).copy()
    cols = np.asarray(cols, dtype=np.intp).copy()
    while True:
        changed = False
        sub = values[np.ix_(rows, cols)]
        h = msr(sub)

        # Column additions.
        outside_cols = np.setdiff1d(np.arange(n_cols), cols, assume_unique=False)
        if outside_cols.size:
            added_cols = _admissible_cols(values, rows, cols, outside_cols, h)
            if added_cols.size:
                cols = np.sort(np.concatenate([cols, added_cols]))
                changed = True
                sub = values[np.ix_(rows, cols)]
                h = msr(sub)

        # Row additions.
        outside_rows = np.setdiff1d(np.arange(n_rows), rows, assume_unique=False)
        if outside_rows.size:
            added_rows = _admissible_rows(
                values, rows, cols, outside_rows, h, include_inverted_rows
            )
            if added_rows.size:
                rows = np.sort(np.concatenate([rows, added_rows]))
                changed = True

        if not changed:
            break
    return rows, cols


def _admissible_cols(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    candidates: np.ndarray,
    h: float,
) -> np.ndarray:
    sub = values[np.ix_(rows, cols)]
    bases = compute_bases(sub)
    block = values[np.ix_(rows, candidates)]
    block_mask = ~np.isnan(block)
    counts = block_mask.sum(axis=0)
    with np.errstate(invalid="ignore"):
        col_means = np.where(
            counts > 0,
            np.where(block_mask, block, 0.0).sum(axis=0) / np.maximum(counts, 1),
            0.0,
        )
    raw = block - bases.row[:, None] - col_means[None, :] + bases.grand
    squares = np.square(np.where(block_mask, raw, 0.0))
    scores = np.where(counts > 0, squares.sum(axis=0) / np.maximum(counts, 1), np.inf)
    return candidates[scores <= h]


def _admissible_rows(
    values: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    candidates: np.ndarray,
    h: float,
    include_inverted: bool,
) -> np.ndarray:
    sub = values[np.ix_(rows, cols)]
    bases = compute_bases(sub)
    block = values[np.ix_(candidates, cols)]
    block_mask = ~np.isnan(block)
    counts = block_mask.sum(axis=1)
    with np.errstate(invalid="ignore"):
        row_means = np.where(
            counts > 0,
            np.where(block_mask, block, 0.0).sum(axis=1) / np.maximum(counts, 1),
            0.0,
        )
    raw = block - row_means[:, None] - bases.col[None, :] + bases.grand
    squares = np.square(np.where(block_mask, raw, 0.0))
    scores = np.where(counts > 0, squares.sum(axis=1) / np.maximum(counts, 1), np.inf)
    admitted = scores <= h
    if include_inverted:
        inv_raw = -block + row_means[:, None] - bases.col[None, :] + bases.grand
        inv_squares = np.square(np.where(block_mask, inv_raw, 0.0))
        inv_scores = np.where(
            counts > 0, inv_squares.sum(axis=1) / np.maximum(counts, 1), np.inf
        )
        admitted |= inv_scores <= h
    return candidates[admitted]


# ----------------------------------------------------------------------
# Full pipeline
# ----------------------------------------------------------------------
def find_bicluster(
    values: np.ndarray,
    delta: float,
    threshold: float = 1.2,
    include_inverted_rows: bool = False,
    min_rows_for_batch: int = 100,
    min_cols_for_batch: int = 100,
) -> Bicluster:
    """Find one delta-bicluster starting from the whole matrix."""
    n_rows, n_cols = values.shape
    rows = np.arange(n_rows, dtype=np.intp)
    cols = np.arange(n_cols, dtype=np.intp)
    rows, cols = multiple_node_deletion(
        values, rows, cols, delta, threshold,
        min_rows_for_batch, min_cols_for_batch,
    )
    rows, cols = single_node_deletion(values, rows, cols, delta)
    rows, cols = node_addition(values, rows, cols, include_inverted_rows)
    score = msr(values[np.ix_(rows, cols)])
    return Bicluster(tuple(int(r) for r in rows), tuple(int(c) for c in cols), score)


def find_biclusters(
    matrix: Union[DataMatrix, np.ndarray],
    n_biclusters: int,
    delta: float,
    *,
    threshold: float = 1.2,
    include_inverted_rows: bool = False,
    mask_range: Optional[Tuple[float, float]] = None,
    rng: RngLike = None,
    min_rows_for_batch: int = 100,
    min_cols_for_batch: int = 100,
) -> ChengChurchResult:
    """The full Cheng & Church loop: find, mask with random data, repeat.

    Parameters
    ----------
    matrix:
        Input matrix; missing values should be filled first (see
        :func:`fill_missing_with_random`) since the masking step cannot
        distinguish missing from masked.
    n_biclusters:
        How many biclusters to report (the paper's comparison uses 100).
    delta:
        The mean-squared-residue ceiling.
    mask_range:
        Range of the uniform random values that overwrite each discovered
        bicluster; defaults to the matrix's own (min, max).
    """
    if n_biclusters < 1:
        raise ValueError(f"n_biclusters must be >= 1, got {n_biclusters}")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    values = (
        matrix.values if isinstance(matrix, DataMatrix) else np.asarray(matrix)
    ).astype(np.float64, copy=True)
    generator = resolve_rng(rng)
    specified = values[~np.isnan(values)]
    if specified.size == 0:
        raise ValueError("matrix has no specified entries")
    if mask_range is None:
        mask_range = (float(specified.min()), float(specified.max()))

    started = time.perf_counter()
    found: List[Bicluster] = []
    for _ in range(n_biclusters):
        bicluster = find_bicluster(
            values, delta, threshold, include_inverted_rows,
            min_rows_for_batch, min_cols_for_batch,
        )
        found.append(bicluster)
        # Mask the discovered cells with random noise -- the step the
        # delta-clusters paper blames for degraded later biclusters.
        block_shape = (bicluster.n_rows, bicluster.n_cols)
        noise = generator.uniform(mask_range[0], mask_range[1], size=block_shape)
        values[np.ix_(bicluster.rows, bicluster.cols)] = noise
    elapsed = time.perf_counter() - started
    return ChengChurchResult(biclusters=found, elapsed_seconds=elapsed)


def fill_missing_with_random(
    matrix: Union[DataMatrix, np.ndarray],
    rng: RngLike = None,
    fill_range: Optional[Tuple[float, float]] = None,
) -> DataMatrix:
    """Replace missing entries with uniform random values.

    This is Cheng & Church's own preprocessing for incomplete data -- and
    the behaviour the delta-cluster model makes unnecessary (it handles
    missing values natively via the occupancy threshold).
    """
    values = (
        matrix.values if isinstance(matrix, DataMatrix) else np.asarray(matrix)
    ).astype(np.float64, copy=True)
    missing = np.isnan(values)
    if missing.any():
        generator = resolve_rng(rng)
        specified = values[~missing]
        if fill_range is None:
            if specified.size == 0:
                raise ValueError("matrix has no specified entries to infer a range")
            fill_range = (float(specified.min()), float(specified.max()))
        values[missing] = generator.uniform(
            fill_range[0], fill_range[1], size=int(missing.sum())
        )
    return DataMatrix(values)
