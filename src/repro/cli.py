"""Command-line interface: mine, generate, evaluate, predict.

Examples
--------
Generate a synthetic workload and mine it::

    python -m repro generate synthetic --rows 300 --cols 60 \
        --clusters 10 --cluster-rows 30 --cluster-cols 20 --noise 3 \
        --out matrix.npz --truth-out truth.txt --seed 3
    python -m repro mine matrix.npz --target 5.0 --k 12 --restarts 2 \
        --out found.txt --seed 5
    python -m repro evaluate matrix.npz found.txt --truth truth.txt

Mine a ratings CSV (missing = empty cells) with the paper's MovieLens
settings::

    python -m repro mine ratings.csv --target 0.8 --alpha 0.6 --k 10
"""

from __future__ import annotations

import argparse
import io
import json
import shutil
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .core.matrix import DataMatrix
from .core.mining import MiningResult, mine_delta_clusters
from .core.predict import predict_entry
from .obs import (
    ConsoleProgressSink,
    JsonlSink,
    MetricsRegistry,
    Sink,
    Tracer,
    WorkCounters,
)
from .obs.analysis import (
    DEFAULT_STRAGGLER_FACTOR,
    TraceAnalysis,
    analyze_trace,
    diff_traces,
)
from .obs.export import chrome_trace
from .obs.session import collect_session
from .obs.sinks import OtlpJsonSink, read_jsonl
from .data.io import (
    load_clusters,
    load_matrix_csv,
    load_matrix_npz,
    save_clusters,
    save_matrix_npz,
)
from .data.microarray import generate_yeast_like
from .data.movielens import generate_ratings
from .data.synthetic import generate_embedded
from .eval.metrics import recall_precision
from .eval.reporting import format_histogram, format_table

__all__ = [
    "build_parser",
    "cmd_analyze_trace",
    "cmd_bench",
    "cmd_diff_traces",
    "cmd_evaluate",
    "cmd_export_trace",
    "cmd_generate",
    "cmd_lint",
    "cmd_mine",
    "cmd_predict",
    "main",
]


def _load_matrix(path: str) -> DataMatrix:
    suffix = Path(path).suffix.lower()
    if suffix == ".npz":
        return load_matrix_npz(path)
    if suffix == ".csv":
        return load_matrix_csv(path, header=False)
    raise SystemExit(f"unsupported matrix format: {path} (use .npz or .csv)")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _build_tracer(
    args: argparse.Namespace, supervised: bool = False
) -> Optional[Tracer]:
    """Tracer for ``mine`` per the --trace/--progress/--metrics flags.

    Supervised runs skip the plain ``--trace`` JSONL sink: the session
    trace machinery records the supervisor shard itself, and the merged
    session trace is copied to the ``--trace`` path afterwards.
    """
    sinks: List[Sink] = []
    if getattr(args, "trace", None) and not supervised:
        sinks.append(JsonlSink(args.trace))
    if getattr(args, "progress", False):
        sinks.append(ConsoleProgressSink())
    metrics = MetricsRegistry() if getattr(args, "metrics", False) else None
    if not sinks and metrics is None:
        return None
    return Tracer(sinks=sinks, metrics=metrics)


def _print_metrics(snapshot: Dict[str, Any]) -> None:
    rows = []
    for name, value in snapshot["counters"].items():
        rows.append([name, "counter", value])
    for name, value in snapshot["gauges"].items():
        rows.append([name, "gauge", round(value, 6) if value is not None else ""])
    for name, hist in snapshot["histograms"].items():
        rows.append([
            name, "histogram",
            f"n={hist['count']} mean={hist['mean']:.3g} p90={hist['p90']:.3g}",
        ])
    print(format_table(rows, headers=["metric", "kind", "value"],
                       title="run metrics"))


def _print_mining_result(
    matrix: DataMatrix, result: MiningResult, args: argparse.Namespace
) -> None:
    rows = [
        [
            index,
            cluster.n_rows,
            cluster.n_cols,
            cluster.volume(matrix),
            cluster.residue(matrix),
        ]
        for index, cluster in enumerate(result.clustering)
    ]
    print(format_table(
        rows,
        headers=["cluster", "rows", "cols", "volume", "residue"],
        title=(
            f"{len(result.clustering)} delta-clusters "
            f"(target residue {args.target}, {len(result.runs)} restart(s), "
            f"{result.elapsed_seconds:.1f}s)"
        ),
    ))
    if args.out:
        save_clusters(args.out, list(result.clustering))
        print(f"clusters written to {args.out}")
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.metrics and result.metrics is not None:
        _print_metrics(result.metrics)


def _cmd_mine_supervised(
    args: argparse.Namespace, matrix: DataMatrix, tracer: Optional[Tracer]
) -> int:
    """The fault-tolerant path: ``mine`` under :mod:`repro.runtime`."""
    from .runtime import RunConfig, resume_run, run_supervised

    kwargs: Dict[str, Any] = {"session_trace": bool(args.trace)}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if args.resume:
        if not args.run_dir:
            print("--resume requires --run-dir", file=sys.stderr)
            return 2
        runtime_result = resume_run(
            matrix, args.run_dir,
            workers=args.workers,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            **kwargs,
        )
    else:
        config = RunConfig(
            residue_target=args.target,
            n_restarts=args.restarts,
            root_seed=args.seed if args.seed is not None else 0,
            k=args.k,
            min_rows=args.min_rows,
            min_cols=args.min_cols,
            alpha=args.alpha,
            p=args.p,
            reseed_rounds=args.reseed_rounds,
            max_clusters=args.max_clusters,
            workers=args.workers if args.workers is not None else 1,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries
            if args.max_retries is not None else 2,
        )
        runtime_result = run_supervised(
            matrix, config, run_dir=args.run_dir, **kwargs,
        )
    if args.trace and runtime_result.session_trace is not None:
        # The merged cross-process session trace stands in for the plain
        # JSONL trace a non-supervised run would have written here.
        shutil.copyfile(runtime_result.session_trace, args.trace)
    if runtime_result.skipped:
        print(f"resumed: {len(runtime_result.skipped)} restart(s) already "
              f"checkpointed, {len(runtime_result.executed)} executed")
    if runtime_result.result is not None:
        _print_mining_result(matrix, runtime_result.result, args)
    print(f"checkpoints in {runtime_result.run_dir} "
          f"(continue with: repro mine ... --run-dir "
          f"{runtime_result.run_dir} --resume)")
    if runtime_result.degradation is not None:
        print(f"warning: {runtime_result.degradation.message}",
              file=sys.stderr)
        return 3
    if runtime_result.result is None:
        print("no restarts completed", file=sys.stderr)
        return 3
    return 0


def cmd_mine(args: argparse.Namespace) -> int:
    """Mine delta-clusters from a matrix file and print/save them.

    Plain invocations run in-process; any of ``--workers`` /
    ``--task-timeout`` / ``--run-dir`` / ``--resume`` selects the
    supervised runtime (checkpointed, retrying, resumable -- see
    ``docs/ROBUSTNESS.md``).  Exit code 3 signals graceful degradation:
    some restarts were lost after exhausting retries.
    """
    matrix = _load_matrix(args.matrix)
    supervised = (
        args.workers is not None
        or args.task_timeout is not None
        or args.run_dir is not None
        or args.resume
    )
    tracer = _build_tracer(args, supervised=supervised)
    # --metrics also turns on work counting so the perf.* counters show
    # up in the metrics table (counting is inert: --out is unchanged).
    work = WorkCounters() if args.metrics else None
    try:
        if supervised:
            return _cmd_mine_supervised(args, matrix, tracer)
        result = mine_delta_clusters(
            matrix,
            residue_target=args.target,
            k=args.k,
            n_restarts=args.restarts,
            max_clusters=args.max_clusters,
            min_rows=args.min_rows,
            min_cols=args.min_cols,
            alpha=args.alpha,
            p=args.p,
            reseed_rounds=args.reseed_rounds,
            rng=args.seed,
            tracer=tracer,
            work=work,
        )
    finally:
        if tracer is not None:
            tracer.close()
    _print_mining_result(matrix, result, args)
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic / movielens / yeast workload matrix."""
    if args.kind == "synthetic":
        dataset = generate_embedded(
            args.rows, args.cols, args.clusters,
            cluster_shape=(args.cluster_rows, args.cluster_cols),
            noise=args.noise,
            missing_fraction=args.missing,
            rng=args.seed,
        )
        matrix, truth = dataset.matrix, dataset.embedded
    elif args.kind == "movielens":
        dataset = generate_ratings(
            n_users=args.rows, n_movies=args.cols,
            n_groups=args.clusters,
            group_size=max(2, args.rows // (3 * max(args.clusters, 1))),
            density=max(args.missing, 0.05),
            rng=args.seed,
        )
        matrix, truth = dataset.matrix, dataset.groups
    elif args.kind == "yeast":
        dataset = generate_yeast_like(
            n_genes=args.rows, n_conditions=args.cols,
            n_modules=args.clusters,
            module_shape=(args.cluster_rows, args.cluster_cols),
            noise=args.noise,
            missing_fraction=args.missing,
            rng=args.seed,
        )
        matrix, truth = dataset.matrix, dataset.modules
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown generator {args.kind}")
    save_matrix_npz(args.out, matrix)
    print(f"{args.kind} matrix {matrix.shape} written to {args.out} "
          f"(density {matrix.density:.2f})")
    if args.truth_out:
        save_clusters(args.truth_out, truth)
        print(f"{len(truth)} ground-truth clusters written to {args.truth_out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Score stored clusters against a matrix (and optional truth)."""
    matrix = _load_matrix(args.matrix)
    clusters = load_clusters(args.clusters)
    rows = [
        [
            index,
            cluster.n_rows,
            cluster.n_cols,
            cluster.volume(matrix),
            cluster.residue(matrix),
            cluster.diameter(matrix),
        ]
        for index, cluster in enumerate(clusters)
    ]
    print(format_table(
        rows,
        headers=["cluster", "rows", "cols", "volume", "residue", "diameter"],
        title=f"{len(clusters)} clusters against {args.matrix}",
    ))
    if args.truth:
        truth = load_clusters(args.truth)
        scores = recall_precision(truth, clusters, matrix.shape)
        print(f"\nrecall    = {scores.recall:.3f}")
        print(f"precision = {scores.precision:.3f}")
        print(f"f1        = {scores.f1:.3f}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """Predict one cell's value from the clusters covering it."""
    matrix = _load_matrix(args.matrix)
    clusters = load_clusters(args.clusters)
    covering = [
        c for c in clusters if c.contains(args.row, args.col)
    ]
    if not covering:
        print(f"no cluster covers cell ({args.row}, {args.col})")
        return 1
    predictions = []
    for cluster in covering:
        try:
            predictions.append(
                predict_entry(matrix, cluster, args.row, args.col)
            )
        except ValueError:
            continue
    if not predictions:
        print(f"covering clusters carry no data for ({args.row}, {args.col})")
        return 1
    value = float(np.mean(predictions))
    print(f"predicted d[{args.row}, {args.col}] = {value:.4f} "
          f"(from {len(predictions)} cluster(s))")
    if matrix.mask[args.row, args.col]:
        truth = float(matrix.values[args.row, args.col])
        print(f"actual value: {truth:.4f} (abs error {abs(value - truth):.4f})")
    return 0


def _session_label(key: Dict[str, object]) -> str:
    if not key:
        return "-"
    return " ".join(f"{name}={value}" for name, value in sorted(key.items()))


def _print_analysis(analysis: TraceAnalysis, top_slots: int) -> None:
    counts = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(analysis.event_counts.items())
    )
    print(f"{analysis.n_records} records ({counts})")

    for session in analysis.sessions:
        rows = [
            [
                sweep.index,
                sweep.residue,
                sweep.total_volume,
                sweep.actions_observed,
                sweep.admissions,
                sweep.evictions,
                sweep.row_actions,
                sweep.col_actions,
                sweep.gain_sum,
                "yes" if sweep.improved else "no",
                sweep.elapsed_s,
            ]
            for sweep in session.sweeps
        ]
        print()
        print(format_table(
            rows,
            headers=["sweep", "residue", "volume", "actions", "adm", "evi",
                     "row", "col", "gain_sum", "improved", "seconds"],
            title=f"session [{_session_label(session.key)}]: "
                  f"{len(session.sweeps)} sweep(s), "
                  f"{session.n_actions} action(s)",
            precision=4,
        ))
        if session.dangling_actions:
            print(f"  ({session.dangling_actions} dangling action(s) after "
                  "the last sweep)")

    if analysis.clusters:
        rows = [
            [
                c.cluster, c.seeds, c.reseeds, c.actions,
                c.admissions, c.evictions, c.gain_sum,
                "-" if c.last_residue is None else c.last_residue,
                "-" if c.last_volume is None else c.last_volume,
            ]
            for c in analysis.clusters
        ]
        print()
        print(format_table(
            rows,
            headers=["cluster", "seeds", "reseeds", "actions", "adm", "evi",
                     "gain_sum", "last_residue", "last_volume"],
            title="per-cluster lifetime",
            precision=4,
        ))

    busiest = sorted(
        analysis.slots, key=lambda s: (-s.actions, s.kind, s.cluster)
    )[:top_slots]
    for slot in busiest:
        if slot.histogram is None:
            continue
        print()
        print(format_histogram(
            slot.histogram.edges,
            slot.histogram.counts,
            title=(
                f"gain histogram [{slot.kind} x cluster {slot.cluster}]: "
                f"{slot.actions} action(s), mean gain {slot.gain_mean:.4g}"
            ),
        ))

    if analysis.spans:
        rows = [
            [name, int(agg["count"]), agg["total_s"],
             agg["total_s"] / agg["count"] if agg["count"] else 0.0]
            for name, agg in analysis.spans.items()
        ]
        print()
        print(format_table(
            rows,
            headers=["span", "count", "total_s", "mean_s"],
            title="wall-time by span",
            precision=5,
        ))

    if analysis.waves:
        rows = [
            [w.index, w.completed, w.failed, w.retries, w.faults,
             w.median_elapsed_s, w.max_elapsed_s, w.stragglers]
            for w in analysis.waves
        ]
        print()
        print(format_table(
            rows,
            headers=["wave", "done", "failed", "retries", "faults",
                     "median_s", "max_s", "stragglers"],
            title="wave timeline",
            precision=4,
        ))

    stragglers = analysis.stragglers
    if stragglers:
        rows = [
            [t.restart, t.attempt, t.wave, t.elapsed_s]
            for t in stragglers
        ]
        print()
        print(format_table(
            rows,
            headers=["restart", "attempt", "wave", "seconds"],
            title=f"stragglers ({len(stragglers)} task(s) beyond the "
                  "wave-median budget)",
            precision=4,
        ))

    if analysis.resources:
        rows = [
            [r.restart, r.attempt, r.max_rss_kb, r.user_cpu_s, r.sys_cpu_s]
            for r in analysis.resources
        ]
        print()
        print(format_table(
            rows,
            headers=["restart", "attempt", "max_rss_kb",
                     "user_cpu_s", "sys_cpu_s"],
            title="worker resource telemetry",
            precision=4,
        ))

    if analysis.processes:
        rows = [
            [
                p.name,
                p.n_records,
                ", ".join(f"{kind}={count}"
                          for kind, count in sorted(p.event_counts.items())),
            ]
            for p in analysis.processes
        ]
        print()
        print(format_table(
            rows,
            headers=["process", "records", "events"],
            title="per-process activity",
        ))

    for warning in analysis.warnings:
        print(f"\nwarning: {warning}", file=sys.stderr)


def cmd_analyze_trace(args: argparse.Namespace) -> int:
    """Aggregate a recorded JSONL trace into per-sweep/cluster/slot stats."""
    if not Path(args.trace).is_file():
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    try:
        analysis = analyze_trace(
            args.trace,
            strict=args.strict,
            straggler_factor=args.straggler_factor,
        )
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(analysis.to_dict(), sort_keys=True, indent=2))
    else:
        _print_analysis(analysis, top_slots=args.top_slots)
    return 0


def _load_trace_source(args: argparse.Namespace) -> Optional[List[Dict[str, object]]]:
    """Load records from a trace file or a run directory with shards.

    A directory source is merged in-memory via
    :func:`~repro.obs.session.collect_session` (session meta first); a
    file source is read as plain JSONL.  Returns ``None`` (after
    printing to stderr) when the source does not exist.
    """
    source = Path(args.source)
    if source.is_dir():
        meta, records = collect_session(source)
        skipped = meta.get("skipped_shards")
        if isinstance(skipped, list) and skipped:
            names = ", ".join(str(name) for name in sorted(skipped))
            print(f"warning: {len(skipped)} unreadable shard(s) skipped: "
                  f"{names}", file=sys.stderr)
        return [meta] + records
    if source.is_file():
        skipped_lines: List[int] = []
        records = read_jsonl(source, skipped=skipped_lines)
        if skipped_lines:
            print(f"warning: {len(skipped_lines)} corrupt line(s) skipped",
                  file=sys.stderr)
        return records
    print(f"no such trace file or run directory: {args.source}",
          file=sys.stderr)
    return None


def cmd_export_trace(args: argparse.Namespace) -> int:
    """Render a session trace as Chrome trace-event JSON, OTLP, or JSONL."""
    records = _load_trace_source(args)
    if records is None:
        return 2
    if args.format == "chrome":
        text = json.dumps(chrome_trace(records), sort_keys=True) + "\n"
    elif args.format == "otlp":
        buffer = io.StringIO()
        sink = OtlpJsonSink(buffer)
        try:
            for record in records:
                if record.get("type") in ("trace_meta", "session_meta"):
                    continue
                sink.write(record)
        finally:
            sink.close()
        text = buffer.getvalue()
    else:  # jsonl
        text = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text, encoding="utf-8")
        print(f"{args.format} trace written to {out}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_diff_traces(args: argparse.Namespace) -> int:
    """Align two twinned traces' iterations and report divergence."""
    for path in (args.trace_a, args.trace_b):
        if not Path(path).is_file():
            print(f"no such trace file: {path}", file=sys.stderr)
            return 2
    try:
        skipped: List[int] = []
        diff = diff_traces(
            read_jsonl(args.trace_a, skipped=skipped),
            read_jsonl(args.trace_b, skipped=skipped),
        )
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    if skipped:
        print(
            f"warning: {len(skipped)} corrupt line(s) skipped while "
            "reading the traces", file=sys.stderr,
        )
    if args.json:
        print(json.dumps(diff.to_dict(tol=args.tol), sort_keys=True, indent=2))
        return 0
    rows = [
        [
            _session_label(d.key), d.index,
            d.residue_a, d.residue_b, d.residue_delta,
            d.volume_delta, d.actions_a, d.actions_b,
        ]
        for d in diff.deltas
    ]
    print(format_table(
        rows,
        headers=["session", "iter", "residue_a", "residue_b", "delta",
                 "vol_delta", "act_a", "act_b"],
        title=f"{len(diff.deltas)} aligned iteration(s), "
              f"{diff.n_only_a} only in A, {diff.n_only_b} only in B",
        precision=5,
    ))
    first = diff.first_divergence(args.tol)
    print(f"\nmax |residue delta|  = {diff.max_abs_residue_delta:.6g}")
    print(f"mean |residue delta| = {diff.mean_abs_residue_delta:.6g}")
    print(f"final residue delta  = {diff.final_residue_delta:.6g}")
    if first is None:
        print(f"no divergence beyond tol={args.tol:g}")
    else:
        print(f"first divergence at iteration {first.index} "
              f"(|delta| {abs(first.residue_delta):.6g} > tol {args.tol:g})")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench run/list/compare``: the perf harness front end.

    ``run`` executes a suite of seed-pinned workloads from the registry
    (:mod:`repro.obs.perf.workloads`), writing a schema-versioned
    ``BENCH_<suite>.json`` document plus a content-addressed per-run
    record under ``--results-dir``.  ``compare`` judges a new document
    against a baseline: wall time against ``--tol-time`` (slowdowns
    only), deterministic work counters against ``--tol-work`` (default
    exact -- any drift is an algorithmic change) and exits 1 on
    regression.
    """
    from .obs.perf import bench, workloads

    if args.bench_command == "list":
        rows = [
            [w.name, ",".join(w.suites), w.description]
            for w in workloads.iter_workloads(args.suite)
        ]
        if not rows:
            print(f"no workloads registered for suite {args.suite!r}",
                  file=sys.stderr)
            return 2
        print(format_table(
            rows,
            headers=["workload", "suites", "description"],
            title=f"{len(rows)} registered workload(s) "
                  f"(suites: {', '.join(workloads.suite_names())})",
        ))
        return 0

    if args.bench_command == "run":
        try:
            document = bench.run_suite(args.suite, repeats=args.repeats)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        out = args.out or f"BENCH_{args.suite}.json"
        bench.write_document(document, out)
        record = bench.record_path(args.results_dir, document)
        bench.write_document(document, record)
        timing = document["timing"]
        work = document["work"]
        assert isinstance(timing, dict) and isinstance(work, dict)
        rows = [
            [
                name,
                f"{1e3 * timing[name]['best_time_s']:.2f}",
                work[name]["toggle_evals"],
                work[name]["cells_scanned"],
                work[name]["sweeps"],
            ]
            for name in sorted(work)
        ]
        print(format_table(
            rows,
            headers=["workload", "best ms", "toggle_evals",
                     "cells_scanned", "sweeps"],
            title=f"suite {args.suite!r}: {len(rows)} workload(s), "
                  f"best of {args.repeats}",
        ))
        print(f"document written to {out}")
        print(f"per-run record written to {record}")
        return 0

    # compare
    try:
        old = bench.load_document(args.old)
        new = bench.load_document(args.new)
        comparison = bench.compare_documents(
            old, new,
            tol_time=bench.parse_tolerance(args.tol_time),
            tol_work=bench.parse_tolerance(args.tol_work),
        )
    except (OSError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(comparison.render())
    if not comparison.ok:
        print(f"{len(comparison.regressions)} regression(s) detected",
              file=sys.stderr)
        return 1
    print("no regressions")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the DCL invariant linter (see :mod:`repro.devtools`)."""
    from .devtools.lint import main as lint_main

    argv: List[str] = list(args.paths)
    if args.format != "human":
        argv += ["--format", args.format]
    if args.select:
        argv += ["--select", args.select]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.deep:
        argv += ["--deep"]
    if args.call_graph:
        argv += ["--call-graph", args.call_graph]
    if args.strict_suppressions:
        argv += ["--strict-suppressions"]
    return lint_main(argv)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="delta-Clusters / FLOC (Yang et al., ICDE 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine delta-clusters from a matrix")
    mine.add_argument("matrix", help=".npz or .csv matrix (empty cell = missing)")
    mine.add_argument("--target", type=float, required=True,
                      help="residue target r (r-residue delta-clusters)")
    mine.add_argument("--k", type=int, default=10)
    mine.add_argument("--restarts", type=int, default=2)
    mine.add_argument("--max-clusters", type=int, default=None)
    mine.add_argument("--min-rows", type=int, default=3)
    mine.add_argument("--min-cols", type=int, default=3)
    mine.add_argument("--alpha", type=float, default=0.0,
                      help="occupancy threshold (Definition 3.1)")
    mine.add_argument("--p", type=float, default=0.2,
                      help="Phase-1 seed inclusion probability")
    mine.add_argument("--reseed-rounds", type=int, default=10)
    mine.add_argument("--seed", type=int, default=None)
    mine.add_argument("--out", default=None, help="write clusters here")
    mine.add_argument("--trace", default=None, metavar="PATH",
                      help="write a JSONL trace (seed/action/iteration "
                           "events) to PATH")
    mine.add_argument("--progress", action="store_true",
                      help="print per-iteration progress to stderr")
    mine.add_argument("--metrics", action="store_true",
                      help="collect and print run metrics "
                           "(actions, gain-eval timings, residue)")
    runtime = mine.add_argument_group(
        "supervised runtime",
        "any of these flags runs restarts as checkpointed, retried tasks "
        "on a process pool (exit code 3 = degraded result)",
    )
    runtime.add_argument("--workers", type=int, default=None, metavar="N",
                         help="worker processes for parallel restarts")
    runtime.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-restart time budget; stragglers are "
                              "terminated and retried")
    runtime.add_argument("--max-retries", type=int, default=None, metavar="N",
                         help="retry budget per restart (default 2)")
    runtime.add_argument("--run-dir", default=None, metavar="DIR",
                         help="checkpoint directory (manifest + per-restart "
                              "records)")
    runtime.add_argument("--resume", action="store_true",
                         help="continue a checkpointed session from "
                              "--run-dir, re-executing only missing restarts")
    mine.set_defaults(func=cmd_mine)

    generate = sub.add_parser("generate", help="generate a workload")
    generate.add_argument("kind", choices=("synthetic", "movielens", "yeast"))
    generate.add_argument("--rows", type=int, default=300)
    generate.add_argument("--cols", type=int, default=60)
    generate.add_argument("--clusters", type=int, default=10)
    generate.add_argument("--cluster-rows", type=int, default=30)
    generate.add_argument("--cluster-cols", type=int, default=20)
    generate.add_argument("--noise", type=float, default=3.0)
    generate.add_argument("--missing", type=float, default=0.0,
                          help="missing fraction (synthetic/yeast) or "
                               "density (movielens)")
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True, help="output .npz")
    generate.add_argument("--truth-out", default=None,
                          help="write ground-truth clusters here")
    generate.set_defaults(func=cmd_generate)

    evaluate = sub.add_parser("evaluate", help="score clusters on a matrix")
    evaluate.add_argument("matrix")
    evaluate.add_argument("clusters", help="cluster file from 'mine'")
    evaluate.add_argument("--truth", default=None,
                          help="ground-truth cluster file for recall/precision")
    evaluate.set_defaults(func=cmd_evaluate)

    predict = sub.add_parser("predict", help="predict one cell from clusters")
    predict.add_argument("matrix")
    predict.add_argument("clusters")
    predict.add_argument("--row", type=int, required=True)
    predict.add_argument("--col", type=int, required=True)
    predict.set_defaults(func=cmd_predict)

    analyze = sub.add_parser(
        "analyze-trace",
        help="aggregate a recorded JSONL trace (sweeps, clusters, gains)",
    )
    analyze.add_argument("trace", help="JSONL trace from 'mine --trace'")
    analyze.add_argument("--json", action="store_true",
                         help="emit the full analysis as deterministic JSON")
    analyze.add_argument("--strict", action="store_true",
                         help="fail on a truncated final line instead of "
                              "skipping it")
    analyze.add_argument("--top-slots", type=int, default=3, metavar="N",
                         help="gain histograms for the N busiest "
                              "(kind, cluster) slots (default 3)")
    analyze.add_argument("--straggler-factor", type=float,
                         default=DEFAULT_STRAGGLER_FACTOR, metavar="X",
                         help="a task is a straggler when it runs longer "
                              "than X times its wave's median "
                              f"(default {DEFAULT_STRAGGLER_FACTOR})")
    analyze.set_defaults(func=cmd_analyze_trace)

    export = sub.add_parser(
        "export-trace",
        help="render a session trace as Chrome trace-event JSON or OTLP",
    )
    export.add_argument(
        "source",
        help="a merged session trace (JSONL file) or a run directory "
             "whose traces/ shards are merged in-memory",
    )
    export.add_argument("--format", choices=("chrome", "otlp", "jsonl"),
                        default="chrome",
                        help="chrome: trace-event JSON (Perfetto/"
                             "chrome://tracing); otlp: OTLP/JSON LogsData; "
                             "jsonl: merged records (default chrome)")
    export.add_argument("--out", metavar="PATH",
                        help="write to PATH instead of stdout")
    export.set_defaults(func=cmd_export_trace)

    diff = sub.add_parser(
        "diff-traces",
        help="align two twinned traces and quantify residue divergence",
    )
    diff.add_argument("trace_a", help="baseline trace (e.g. exact gains)")
    diff.add_argument("trace_b", help="comparison trace (e.g. fast gains)")
    diff.add_argument("--json", action="store_true",
                      help="emit the aligned diff as deterministic JSON")
    diff.add_argument("--tol", type=float, default=0.0,
                      help="residue |delta| below this is not divergence")
    diff.set_defaults(func=cmd_diff_traces)

    bench = sub.add_parser(
        "bench",
        help="run registered perf workloads, write/compare BENCH_*.json",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_sub.add_parser(
        "run", help="run one suite and write its bench document"
    )
    bench_run.add_argument("--suite", default="smoke",
                           help="workload suite to run (default: smoke)")
    bench_run.add_argument("--repeats", type=int, default=3, metavar="N",
                           help="repetitions per workload; wall time is "
                                "best-of-N, counters must be identical "
                                "(default 3)")
    bench_run.add_argument("--out", default=None, metavar="PATH",
                           help="document path (default BENCH_<suite>.json)")
    bench_run.add_argument("--results-dir", default="benchmarks/results",
                           metavar="DIR",
                           help="directory for content-addressed per-run "
                                "records (default benchmarks/results)")
    bench_run.set_defaults(func=cmd_bench)
    bench_list = bench_sub.add_parser(
        "list", help="list registered workloads and suites"
    )
    bench_list.add_argument("--suite", default=None,
                            help="restrict the listing to one suite")
    bench_list.set_defaults(func=cmd_bench)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="compare two bench documents; exit 1 on regression",
    )
    bench_compare.add_argument("old", help="baseline document")
    bench_compare.add_argument("new", help="candidate document")
    bench_compare.add_argument("--tol-time", default="20%",
                               help="relative slowdown budget, e.g. 20%% "
                                    "or 0.2; 'none' skips timing checks "
                                    "(default 20%%)")
    bench_compare.add_argument("--tol-work", default="0%",
                               help="relative work-counter drift budget "
                                    "(default 0%% -- exact; counters are "
                                    "deterministic)")
    bench_compare.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint", help="run the DCL invariant linter over a source tree"
    )
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("human", "json"), default="human")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes (e.g. DCL001,DCL005)")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--deep", action="store_true",
                      help="also run the whole-program rules "
                           "(DCL010-DCL013) over the cross-module "
                           "call graph")
    lint.add_argument("--call-graph", default=None, metavar="FN",
                      help="print a function's transitive reach "
                           "(qualname or dotted suffix) and exit")
    lint.add_argument("--strict-suppressions", action="store_true",
                      help="fail on malformed, unknown, or stale "
                           "suppression comments")
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
