"""Worker-side entrypoint for supervised restart tasks.

:func:`execute_restart_task` is the module-level function the supervisor
submits to its :class:`~concurrent.futures.ProcessPoolExecutor` (it must
be importable by name so it pickles).  Each invocation is a pure,
seed-addressable unit of work: restart ``i`` of the session described by
a :class:`~repro.runtime.config.RunConfig` draws its private RNG stream
from ``restart_seed(config.root_seed, i)``, so *any* process -- first
attempt, retry, or resume -- reproduces the identical result.

The worker persists its own restart record (atomic write + digest)
before acking, so a success ack always implies a durable checkpoint.
Fault hooks (:func:`repro.runtime.faults.inject`) run at worker start,
around the checkpoint write, and at worker end -- keyed off the
``REPRO_FAULT_PLAN`` environment variable, which child processes
inherit.

Session tracing: when the payload carries a ``trace`` context
(:class:`~repro.obs.session.TraceContext` dict, attached by the
supervisor for ``--trace`` runs), the restart executes under a real
tracer backed by this worker's durable JSONL shard
(:func:`~repro.obs.session.open_worker_tracer`), and the worker samples
``resource.getrusage`` around the restart -- peak RSS plus user/sys CPU
*deltas*, since pool processes are reused -- reporting the telemetry in
both the shard (:class:`~repro.obs.events.ResourceEvent`) and the
durable record/ack (digest-exempt: telemetry is nondeterministic
observation, never part of the restart's identity).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

try:  # pragma: no cover - resource is stdlib on every POSIX platform
    import resource
except ImportError:  # pragma: no cover - e.g. Windows
    resource = None  # type: ignore[assignment]

from ..core.matrix import DataMatrix
from ..core.mining import run_restart
from ..data.io import write_json_atomic
from ..obs.events import ResourceEvent
from ..obs.perf.counters import WorkCounters
from ..obs.session import open_worker_tracer
from ..obs.tracer import NULL_TRACER, Tracer
from .checkpoint import record_digest, result_to_record
from .config import RunConfig
from .faults import FaultSpec, inject

__all__ = ["TaskPayload", "execute_restart_task"]

#: The argument bundle pickled to workers (kept a plain dict so the
#: payload survives refactors of either side independently).
TaskPayload = Dict[str, object]


def _corrupt_bytes(text: str) -> str:
    """Deterministically garble a serialized record (media-corruption
    model): truncate the tail and damage the JSON structure."""
    keep = max(1, len(text) // 2)
    return text[:keep] + "\x00corrupt"


def _write_record(
    run_dir: Path,
    restart: int,
    record: Dict[str, object],
    corrupt: Optional[FaultSpec],
) -> None:
    path = run_dir / "restarts" / f"restart-{restart:05d}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    if corrupt is None:
        write_json_atomic(path, record)
        return
    # Injected corruption: the atomic rename still happens (the write
    # itself succeeded from the filesystem's point of view) but the
    # payload bytes are damaged, which the digest check catches on load.
    text = _corrupt_bytes(json.dumps(record, sort_keys=True))
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _rusage_telemetry(
    before: Optional["resource.struct_rusage"],
) -> Optional[Dict[str, float]]:
    """Peak RSS + CPU-time deltas for the restart that just finished.

    ``ru_maxrss`` is a high-water mark (absolute, kilobytes on Linux);
    CPU times are deltas against the pre-restart snapshot because pool
    processes are reused across tasks.  Returns ``None`` where the
    ``resource`` module is unavailable.
    """
    if resource is None or before is None:
        return None
    after = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "max_rss_kb": float(after.ru_maxrss),
        "user_cpu_s": round(after.ru_utime - before.ru_utime, 6),
        "sys_cpu_s": round(after.ru_stime - before.ru_stime, 6),
    }


def execute_restart_task(payload: TaskPayload) -> Dict[str, object]:
    """Run one restart, persist its record, and return a small ack.

    ``payload`` keys: ``matrix`` (:class:`DataMatrix`), ``config``
    (:meth:`RunConfig.to_dict` output), ``restart``, ``attempt``,
    ``run_dir``, and optionally ``trace`` (a session
    :class:`~repro.obs.session.TraceContext` dict).  The ack is
    ``{"restart", "attempt", "digest"}`` plus ``telemetry`` when rusage
    is available -- the record itself is read back from disk by the
    supervisor, which both verifies durability and keeps the pooled
    result byte-identical between uninterrupted and resumed runs.
    """
    restart = int(payload["restart"])  # type: ignore[arg-type]
    attempt = int(payload["attempt"])  # type: ignore[arg-type]
    config = RunConfig.from_dict(dict(payload["config"]))  # type: ignore[arg-type]
    matrix = payload["matrix"]
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    run_dir = Path(str(payload["run_dir"]))
    trace_ctx = payload.get("trace")

    tracer: Tracer = NULL_TRACER
    if isinstance(trace_ctx, dict):
        tracer = open_worker_tracer(run_dir, trace_ctx, restart, attempt)
    try:
        inject("worker_start", restart, attempt)

        rusage_before = (
            resource.getrusage(resource.RUSAGE_SELF)
            if resource is not None
            else None
        )

        # Supervised restarts always count work: counting never changes
        # the result, and the counters ride the checkpoint record so
        # resumed and uninterrupted sessions report identical totals for
        # free.
        work = WorkCounters()
        result = run_restart(
            matrix,
            restart,
            residue_target=config.residue_target,
            root_seed=config.root_seed,
            k=config.k,
            min_rows=config.min_rows,
            min_cols=config.min_cols,
            alpha=config.alpha,
            p=config.p,
            reseed_rounds=config.reseed_rounds,
            ordering=config.ordering,
            gain_mode=config.gain_mode,
            max_iterations=config.max_iterations,
            tracer=tracer,
            work=work,
        )

        telemetry = _rusage_telemetry(rusage_before)

        # Telemetry is attached *after* the digest is computed inside
        # result_to_record and is digest-exempt (see record_digest), so
        # the record still verifies and pooled results stay bit-exact.
        record = result_to_record(restart, result)
        if telemetry is not None:
            record["telemetry"] = telemetry
            if tracer.enabled:
                tracer.emit(ResourceEvent(
                    restart=restart,
                    attempt=attempt,
                    max_rss_kb=telemetry["max_rss_kb"],
                    user_cpu_s=telemetry["user_cpu_s"],
                    sys_cpu_s=telemetry["sys_cpu_s"],
                ))
        corrupt = inject("checkpoint", restart, attempt)
        _write_record(run_dir, restart, record, corrupt)

        inject("worker_end", restart, attempt)
        ack: Dict[str, object] = {
            "restart": restart,
            "attempt": attempt,
            "digest": record_digest(record),
        }
        if telemetry is not None:
            ack["telemetry"] = telemetry
        return ack
    finally:
        tracer.close()
