"""Worker-side entrypoint for supervised restart tasks.

:func:`execute_restart_task` is the module-level function the supervisor
submits to its :class:`~concurrent.futures.ProcessPoolExecutor` (it must
be importable by name so it pickles).  Each invocation is a pure,
seed-addressable unit of work: restart ``i`` of the session described by
a :class:`~repro.runtime.config.RunConfig` draws its private RNG stream
from ``restart_seed(config.root_seed, i)``, so *any* process -- first
attempt, retry, or resume -- reproduces the identical result.

The worker persists its own restart record (atomic write + digest)
before acking, so a success ack always implies a durable checkpoint.
Fault hooks (:func:`repro.runtime.faults.inject`) run at worker start,
around the checkpoint write, and at worker end -- keyed off the
``REPRO_FAULT_PLAN`` environment variable, which child processes
inherit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from ..core.matrix import DataMatrix
from ..core.mining import run_restart
from ..data.io import write_json_atomic
from ..obs.perf.counters import WorkCounters
from .checkpoint import record_digest, result_to_record
from .config import RunConfig
from .faults import FaultSpec, inject

__all__ = ["TaskPayload", "execute_restart_task"]

#: The argument bundle pickled to workers (kept a plain dict so the
#: payload survives refactors of either side independently).
TaskPayload = Dict[str, object]


def _corrupt_bytes(text: str) -> str:
    """Deterministically garble a serialized record (media-corruption
    model): truncate the tail and damage the JSON structure."""
    keep = max(1, len(text) // 2)
    return text[:keep] + "\x00corrupt"


def _write_record(
    run_dir: Path,
    restart: int,
    record: Dict[str, object],
    corrupt: Optional[FaultSpec],
) -> None:
    path = run_dir / "restarts" / f"restart-{restart:05d}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    if corrupt is None:
        write_json_atomic(path, record)
        return
    # Injected corruption: the atomic rename still happens (the write
    # itself succeeded from the filesystem's point of view) but the
    # payload bytes are damaged, which the digest check catches on load.
    text = _corrupt_bytes(json.dumps(record, sort_keys=True))
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def execute_restart_task(payload: TaskPayload) -> Dict[str, object]:
    """Run one restart, persist its record, and return a small ack.

    ``payload`` keys: ``matrix`` (:class:`DataMatrix`), ``config``
    (:meth:`RunConfig.to_dict` output), ``restart``, ``attempt``, and
    ``run_dir``.  The ack is ``{"restart", "attempt", "digest"}`` --
    the record itself is read back from disk by the supervisor, which
    both verifies durability and keeps the pooled result byte-identical
    between uninterrupted and resumed runs.
    """
    restart = int(payload["restart"])  # type: ignore[arg-type]
    attempt = int(payload["attempt"])  # type: ignore[arg-type]
    config = RunConfig.from_dict(dict(payload["config"]))  # type: ignore[arg-type]
    matrix = payload["matrix"]
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    run_dir = Path(str(payload["run_dir"]))

    inject("worker_start", restart, attempt)

    # Supervised restarts always count work: counting never changes the
    # result, and the counters ride the checkpoint record so resumed and
    # uninterrupted sessions report identical totals for free.
    work = WorkCounters()
    result = run_restart(
        matrix,
        restart,
        residue_target=config.residue_target,
        root_seed=config.root_seed,
        k=config.k,
        min_rows=config.min_rows,
        min_cols=config.min_cols,
        alpha=config.alpha,
        p=config.p,
        reseed_rounds=config.reseed_rounds,
        ordering=config.ordering,
        gain_mode=config.gain_mode,
        max_iterations=config.max_iterations,
        work=work,
    )

    record = result_to_record(restart, result)
    corrupt = inject("checkpoint", restart, attempt)
    _write_record(run_dir, restart, record, corrupt)

    inject("worker_end", restart, attempt)
    return {
        "restart": restart,
        "attempt": attempt,
        "digest": record_digest(record),
    }
