"""Deterministic fault injection for chaos-testing the runtime.

A *fault plan* is a declarative list of :class:`FaultSpec` entries, each
naming an injection *site*, a fault *kind*, and the restart/attempt
window in which it fires.  Plans travel to worker processes through the
``REPRO_FAULT_PLAN`` environment variable as JSON, so the exact same
supervisor / worker / checkpoint code paths run under test -- no mocks.

Sites (checked in :mod:`repro.runtime.worker`):

* ``worker_start`` -- before the restart computes anything;
* ``checkpoint`` -- while the restart record is written (``corrupt``
  garbles the durable bytes *after* the digest was computed, modelling
  media corruption);
* ``worker_end`` -- after the record is durable, before the ack.

Kinds:

* ``kill`` -- ``os._exit(exit_code)``: an abrupt worker death the
  supervisor sees as a broken pool;
* ``delay`` -- sleep ``delay_s`` seconds (drive a task past its
  timeout);
* ``error`` -- raise :class:`InjectedFault` (an ordinary retryable
  exception);
* ``corrupt`` -- flip the checkpoint bytes (only meaningful at the
  ``checkpoint`` site).

``attempts`` bounds injection per task: the fault fires while the
task's 0-based attempt is ``< attempts`` (default 1 -- fail the first
try, succeed on retry), so retry/resume recovery is exercised
deterministically.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "inject",
    "load_plan_from_env",
]

#: Environment variable carrying the JSON-encoded plan to workers.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_SITES = ("worker_start", "checkpoint", "worker_end")
_KINDS = ("kill", "delay", "error", "corrupt")


class InjectedFault(RuntimeError):
    """The exception raised by ``error`` faults."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    ``restart=None`` matches every restart.  ``attempts`` is the number
    of injections per task (fires while ``attempt < attempts``).
    """

    site: str
    kind: str
    restart: Optional[int] = None
    attempts: int = 1
    delay_s: float = 0.0
    exit_code: int = 17

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {_SITES}"
            )
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.kind == "corrupt" and self.site != "checkpoint":
            raise ValueError("corrupt faults only apply at the checkpoint site")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, site: str, restart: int, attempt: int) -> bool:
        return (
            self.site == site
            and (self.restart is None or self.restart == restart)
            and attempt < self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` entries."""

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def find(self, site: str, restart: int, attempt: int) -> Optional[FaultSpec]:
        """First spec matching ``(site, restart, attempt)``, or ``None``."""
        for spec in self.specs:
            if spec.matches(site, restart, attempt):
                return spec
        return None

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([asdict(spec) for spec in self.specs])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(raw, list):
            raise ValueError("fault plan must be a JSON list of specs")
        specs: List[FaultSpec] = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise ValueError(f"fault spec must be an object: {entry!r}")
            specs.append(FaultSpec(**entry))
        return cls(tuple(specs))

    def to_env(self, env: Optional[Dict[str, str]] = None) -> Dict[str, str]:
        """Install the plan into ``env`` (default ``os.environ``)."""
        target = os.environ if env is None else env
        target[FAULT_PLAN_ENV] = self.to_json()
        return dict(target)


def load_plan_from_env() -> Optional[FaultPlan]:
    """The plan in ``REPRO_FAULT_PLAN``, or ``None`` when unset/empty."""
    text = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if not text:
        return None
    return FaultPlan.from_json(text)


def inject(site: str, restart: int, attempt: int) -> Optional[FaultSpec]:
    """Fire any environment-configured fault for this injection point.

    ``kill`` exits the process, ``delay`` sleeps, ``error`` raises
    :class:`InjectedFault`.  ``corrupt`` specs are *returned* so the
    caller (the checkpoint writer) applies the corruption to the bytes
    it controls; all other paths return ``None``.
    """
    plan = load_plan_from_env()
    if plan is None:
        return None
    spec = plan.find(site, restart, attempt)
    if spec is None:
        return None
    if spec.kind == "kill":
        os._exit(spec.exit_code)
    if spec.kind == "delay":
        time.sleep(spec.delay_s)
        return None
    if spec.kind == "error":
        raise InjectedFault(
            f"injected fault at {site} (restart={restart}, attempt={attempt})"
        )
    return spec  # corrupt: handled by the caller
