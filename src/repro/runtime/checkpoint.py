"""Durable, resumable checkpoints for supervised mining sessions.

Layout of a run directory::

    <run_dir>/
        manifest.json             # session identity + per-restart status
        restarts/
            restart-00000.json    # one durable record per finished restart
            restart-00001.json
            ...

Every write is atomic (:func:`repro.data.io.write_json_atomic`: temp
file + fsync + rename), so a kill at any instant leaves either the old
or the new version on disk -- never a torn file.  Restart records carry
a sha256 digest over their canonical-JSON payload; a corrupted record is
detected on load and treated as *absent*, so the supervisor simply
re-executes that restart.

Determinism contract: a restart record serializes floats through
``json`` (``repr`` round-trip), so a reloaded :class:`FlocResult` is
bit-identical to the in-memory original.  The supervisor always pools
from reloaded records, which makes an uninterrupted run and a resumed
run byte-for-byte identical by construction.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from ..core.cluster import DeltaCluster
from ..core.clustering import Clustering
from ..core.floc import FlocResult
from ..core.matrix import DataMatrix
from ..data.io import write_json_atomic
from ..obs.perf.counters import WorkCounters
from .config import RunConfig

__all__ = [
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "record_digest",
    "record_to_result",
    "result_to_record",
]

MANIFEST_SCHEMA = 1
PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """Base class for checkpoint failures."""


class CheckpointCorruptionError(CheckpointError):
    """A restart record or manifest failed digest / JSON validation."""


class CheckpointMismatchError(CheckpointError):
    """A resume targeted a run directory from a different session."""


def _canonical(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace -- the digest input."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


#: Record keys excluded from the digest: ``digest`` is the digest
#: itself, and ``telemetry`` is per-attempt resource measurement
#: (rusage) -- real observation, but nondeterministic, so it must not
#: participate in the bit-identity contract the digest enforces.
_UNDIGESTED_KEYS = frozenset({"digest", "telemetry"})


def record_digest(payload: Dict[str, object]) -> str:
    """sha256 over the canonical JSON of ``payload``.

    Excludes :data:`_UNDIGESTED_KEYS` so resource telemetry can ride the
    durable record without breaking resumed-vs-uninterrupted parity.
    """
    body = {k: v for k, v in payload.items() if k not in _UNDIGESTED_KEYS}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


def result_to_record(restart: int, result: FlocResult) -> Dict[str, object]:
    """Serialize one restart's :class:`FlocResult` to a durable record.

    Tracer aggregates (``metrics`` / ``trace_summary``) are dropped:
    they are session-cumulative observations, not part of the restart's
    deterministic output.
    """
    payload: Dict[str, object] = {
        "schema": MANIFEST_SCHEMA,
        "restart": int(restart),
        "clusters": [
            [list(c.rows), list(c.cols)] for c in result.clustering
        ],
        "n_iterations": int(result.n_iterations),
        "initial_residue": float(result.initial_residue),
        "history": [float(x) for x in result.history],
        "iteration_times": [float(x) for x in result.iteration_times],
        "elapsed_seconds": float(result.elapsed_seconds),
        "converged": bool(result.converged),
        "n_actions": int(result.n_actions),
    }
    if result.work is not None:
        # Work counters are deterministic restart output (unlike the
        # tracer aggregates), so they round-trip and feed the digest.
        payload["work"] = result.work.as_dict()
    payload["digest"] = record_digest(payload)
    return payload


def record_to_result(
    record: Dict[str, object], matrix: DataMatrix
) -> FlocResult:
    """Inverse of :func:`result_to_record` (digest must already be
    verified by the caller -- see :meth:`CheckpointStore.load_record`)."""
    clusters = [
        DeltaCluster(rows, cols)
        for rows, cols in record["clusters"]  # type: ignore[union-attr]
    ]
    work = record.get("work")
    return FlocResult(
        clustering=Clustering(matrix, clusters),
        n_iterations=int(record["n_iterations"]),  # type: ignore[arg-type]
        initial_residue=float(record["initial_residue"]),  # type: ignore[arg-type]
        history=list(record["history"]),  # type: ignore[arg-type]
        iteration_times=list(record["iteration_times"]),  # type: ignore[arg-type]
        elapsed_seconds=float(record["elapsed_seconds"]),  # type: ignore[arg-type]
        converged=bool(record["converged"]),
        n_actions=int(record["n_actions"]),  # type: ignore[arg-type]
        work=WorkCounters(**work) if isinstance(work, dict) else None,
    )


class CheckpointStore:
    """Manifest + per-restart records under one run directory.

    Use :meth:`create` for a fresh session and :meth:`open` to attach to
    an existing one (the resume path).  All mutating methods rewrite the
    manifest atomically, so the store is always consistent on disk.
    """

    def __init__(self, run_dir: PathLike, config: RunConfig,
                 manifest: Dict[str, object]) -> None:
        self.run_dir = Path(run_dir)
        self.config = config
        self._manifest = manifest

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, run_dir: PathLike, config: RunConfig) -> "CheckpointStore":
        """Initialize a fresh run directory (must not hold a manifest)."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / "manifest.json"
        if manifest_path.exists():
            raise CheckpointError(
                f"run directory already initialized: {manifest_path}; "
                "use CheckpointStore.open() / --resume to continue it"
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "restarts").mkdir(exist_ok=True)
        manifest: Dict[str, object] = {
            "schema": MANIFEST_SCHEMA,
            "config": config.to_dict(),
            "restarts": {},
            "best": None,
        }
        store = cls(run_dir, config, manifest)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, run_dir: PathLike) -> "CheckpointStore":
        """Attach to an existing run directory, validating the manifest."""
        run_dir = Path(run_dir)
        manifest_path = run_dir / "manifest.json"
        if not manifest_path.exists():
            raise CheckpointError(f"no manifest in run directory: {run_dir}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptionError(
                f"manifest is not valid JSON: {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "config" not in manifest:
            raise CheckpointCorruptionError(
                f"manifest missing config section: {manifest_path}"
            )
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise CheckpointMismatchError(
                f"manifest schema {manifest.get('schema')!r} is not the "
                f"supported schema {MANIFEST_SCHEMA}: {manifest_path}"
            )
        config = RunConfig.from_dict(dict(manifest["config"]))
        return cls(run_dir, config, manifest)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    def record_path(self, restart: int) -> Path:
        return self.run_dir / "restarts" / f"restart-{restart:05d}.json"

    def completed_restarts(self) -> Set[int]:
        """Restart indices the manifest marks done AND whose record on
        disk verifies; corrupt/missing records are dropped from the
        manifest so the supervisor re-executes them."""
        done: Set[int] = set()
        stale: List[str] = []
        restarts = self._manifest.setdefault("restarts", {})
        assert isinstance(restarts, dict)
        for key, entry in restarts.items():
            restart = int(key)
            if not isinstance(entry, dict) or entry.get("status") != "done":
                continue
            try:
                record = self.load_record(restart)
            except CheckpointError:
                stale.append(key)
                continue
            if record.get("digest") != entry.get("digest"):
                stale.append(key)
                continue
            done.add(restart)
        if stale:
            for key in stale:
                del restarts[key]
            self._write_manifest()
        return done

    def load_record(self, restart: int) -> Dict[str, object]:
        """Load and digest-verify one restart record."""
        path = self.record_path(restart)
        if not path.exists():
            raise CheckpointError(f"no record for restart {restart}: {path}")
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptionError(
                f"restart {restart} record is not valid JSON: {path}"
            ) from exc
        if not isinstance(record, dict):
            raise CheckpointCorruptionError(
                f"restart {restart} record is not an object: {path}"
            )
        digest = record.get("digest")
        if digest != record_digest(record):
            raise CheckpointCorruptionError(
                f"restart {restart} record failed digest check: {path}"
            )
        if record.get("restart") != restart:
            raise CheckpointCorruptionError(
                f"record at {path} claims restart {record.get('restart')!r}"
            )
        return record

    def load_result(self, restart: int, matrix: DataMatrix) -> FlocResult:
        return record_to_result(self.load_record(restart), matrix)

    def best_digest(self) -> Optional[str]:
        best = self._manifest.get("best")
        if isinstance(best, dict):
            digest = best.get("digest")
            return digest if isinstance(digest, str) else None
        return None

    def verify_config(self, config: RunConfig) -> None:
        """Raise :class:`CheckpointMismatchError` unless ``config`` is
        identity-compatible with the session stored here."""
        theirs = self.config.identity()
        ours = config.identity()
        if theirs != ours:
            diff = sorted(
                name for name in ours
                if ours[name] != theirs[name]
            )
            raise CheckpointMismatchError(
                "run directory belongs to a different session; "
                f"mismatched fields: {', '.join(diff)}"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark_done(self, restart: int, digest: str) -> None:
        """Record a durably-written restart in the manifest."""
        restarts = self._manifest.setdefault("restarts", {})
        assert isinstance(restarts, dict)
        restarts[str(restart)] = {"status": "done", "digest": digest}
        self._write_manifest()

    def update_best(self, digest: str, average_residue: float,
                    n_clusters: int) -> None:
        """Track the best-so-far pooled clustering digest."""
        self._manifest["best"] = {
            "digest": digest,
            "average_residue": float(average_residue),
            "n_clusters": int(n_clusters),
        }
        self._write_manifest()

    def _write_manifest(self) -> None:
        write_json_atomic(self.manifest_path, self._manifest, indent=2)
