"""Supervised parallel execution of mining restarts.

The supervisor decomposes a mining session into seed-addressable
restart tasks (:func:`repro.core.mining.run_restart` via
:mod:`repro.runtime.worker`), schedules them on a
:class:`~concurrent.futures.ProcessPoolExecutor`, and survives the
three classic failure modes:

* **exceptions** -- a task raising is retried with exponential backoff;
* **timeouts** -- a wave that exceeds its time budget has its
  stragglers terminated and re-queued;
* **crashes** -- an abrupt worker death (``os._exit``, OOM-kill) breaks
  the pool; the supervisor rebuilds a fresh pool for the next wave and
  retries the affected tasks.

Execution proceeds in *waves*: all currently-runnable tasks are
submitted to a fresh pool, harvested, and failures that still have
retry budget are queued for the next wave after a jittered backoff.
A broken pool therefore never poisons more than the remainder of one
wave.

Determinism: every task's output is a pure function of
``(matrix, config identity, restart index)`` -- retries and resumes
reproduce bit-identical records -- and the final pooled result is
always built from the durable checkpoint records in restart order.
An uninterrupted run, a crash-riddled run, and a resumed run of the
same session all serialize byte-for-byte identically.  Backoff jitter
draws from a dedicated spawned RNG stream
(``SeedSequence(root_seed, spawn_key=(BACKOFF_STREAM_KEY,))``), so
scheduling noise can never perturb mining results.

When retry budgets exhaust, the supervisor degrades gracefully: the
:class:`RuntimeResult` carries a :class:`DegradationReport` naming the
lost restarts, and the pooled clustering is built from the restarts
that did complete (``None`` only when *every* restart was lost).
"""

from __future__ import annotations

import math
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from tempfile import mkdtemp
from typing import Callable, Dict, List, Optional, Set, Union

import numpy as np

from ..core.matrix import DataMatrix
from ..core.mining import MiningResult, pool_mining_results
from ..obs.events import FaultEvent, RetryEvent, TaskEvent
from ..obs.session import SessionTrace
from ..obs.tracer import NULL_TRACER, Tracer
from .checkpoint import (
    CheckpointError,
    CheckpointStore,
    record_digest,
)
from .config import RunConfig
from .faults import load_plan_from_env
from .worker import TaskPayload, execute_restart_task

__all__ = [
    "BACKOFF_STREAM_KEY",
    "DegradationReport",
    "RuntimeResult",
    "TaskFailure",
    "resume_run",
    "run_supervised",
]

#: Spawn key of the backoff-jitter RNG stream.  Large and fixed so it
#: can never collide with a restart index (restart ``i`` uses
#: ``spawn_key=(i,)``).
BACKOFF_STREAM_KEY = 0x5AFE_B0FF

SleepFn = Callable[[float], None]
PathLike = Union[str, Path]


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt that exhausted its retry budget."""

    restart: int
    attempt: int
    kind: str  # "exception" | "timeout" | "crash" | "corrupt"
    error: str


@dataclass(frozen=True)
class DegradationReport:
    """What was lost when the supervisor gave up on some restarts.

    Returned *instead of raising* so callers still receive the pooled
    result of every restart that did complete.
    """

    failures: List[TaskFailure] = field(default_factory=list)
    completed: List[int] = field(default_factory=list)
    missing: List[int] = field(default_factory=list)

    @property
    def message(self) -> str:
        lost = ", ".join(str(i) for i in self.missing)
        return (
            f"{len(self.missing)} of "
            f"{len(self.missing) + len(self.completed)} restarts lost "
            f"after exhausting retries (restarts: {lost}); pooled result "
            f"covers the {len(self.completed)} completed restart(s)"
        )


@dataclass
class RuntimeResult:
    """Outcome of a supervised (or resumed) mining session."""

    result: Optional[MiningResult]
    run_dir: Path
    executed: List[int] = field(default_factory=list)
    skipped: List[int] = field(default_factory=list)
    degradation: Optional[DegradationReport] = None
    #: Merged cross-process session trace (``session_trace=True`` runs).
    session_trace: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return self.degradation is None and self.result is not None


@dataclass
class _Attempt:
    """Supervisor-side bookkeeping for one in-flight task."""

    restart: int
    attempt: int
    started: float = 0.0


def _backoff_delay(rng: np.random.Generator, base: float, attempt: int) -> float:
    """Exponential backoff with half-width jitter: ``base * 2^attempt``
    scaled by a factor drawn uniformly from ``[0.5, 1.0)``."""
    return base * (2.0 ** attempt) * (0.5 + 0.5 * float(rng.random()))


def _emit_plan_fault(
    tracer: Tracer, restart: int, attempt: int
) -> None:
    """Attribute an observed failure to the active fault plan, if any.

    Supervisor-side best effort: when ``REPRO_FAULT_PLAN`` is set and an
    entry targets this (restart, attempt), emit a :class:`FaultEvent` so
    chaos traces show which failures were injected rather than organic.
    """
    if not tracer.enabled:
        return
    try:
        plan = load_plan_from_env()
    except ValueError:
        return
    if plan is None:
        return
    for spec in plan.specs:
        if (spec.restart is None or spec.restart == restart) \
                and attempt < spec.attempts:
            tracer.emit(FaultEvent(site=spec.site, kind=spec.kind,
                                   restart=restart, attempt=attempt))
            return


def _observe_telemetry(tracer: Tracer, telemetry: object) -> None:
    """Surface a completed ack's rusage telemetry as ``runtime.task.*``
    metrics (no-op when the worker platform had no ``resource``)."""
    if not isinstance(telemetry, dict):
        return
    for key in ("max_rss_kb", "user_cpu_s", "sys_cpu_s"):
        value = telemetry.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            tracer.observe(f"runtime.task.{key}", float(value))


def _terminate_stragglers(executor: ProcessPoolExecutor) -> None:
    """Hard-stop worker processes that outlived the wave budget.

    Reaches into the executor's process table (no public API exists);
    guarded so behavior degrades to a plain shutdown on other
    implementations.
    """
    processes = getattr(executor, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        terminate = getattr(process, "terminate", None)
        if terminate is not None:
            terminate()


def _run_wave(
    matrix: DataMatrix,
    config: RunConfig,
    run_dir: Path,
    wave: List[_Attempt],
    tracer: Tracer,
    session: Optional[SessionTrace] = None,
) -> Dict[int, Optional[str]]:
    """Execute one wave of tasks on a fresh pool.

    Returns ``{restart: None}`` for successes and
    ``{restart: "kind: detail"}`` for failures.  The pool is always torn
    down afterwards, so a crash in this wave cannot leak into the next.
    """
    outcomes: Dict[int, Optional[str]] = {}
    n_workers = min(config.workers, len(wave))
    rounds = math.ceil(len(wave) / n_workers)
    budget: Optional[float] = None
    if config.task_timeout is not None:
        budget = config.task_timeout * rounds

    executor = ProcessPoolExecutor(max_workers=n_workers)
    clock = tracer.clock
    wave_start = clock()
    try:
        futures: Dict["Future[Dict[str, object]]", _Attempt] = {}
        for task in wave:
            payload: TaskPayload = {
                "matrix": matrix,
                "config": config.to_dict(),
                "restart": task.restart,
                "attempt": task.attempt,
                "run_dir": str(run_dir),
            }
            if session is not None:
                # Dispatch-time anchor: the worker pairs this session
                # clock reading with its own to align shard timestamps.
                payload["trace"] = session.task_context(
                    task.restart, task.attempt
                )
            task.started = clock()
            tracer.emit(TaskEvent(restart=task.restart, status="dispatched",
                                  attempt=task.attempt))
            futures[executor.submit(execute_restart_task, payload)] = task

        pending = set(futures)
        while pending:
            remaining: Optional[float] = None
            if budget is not None:
                remaining = budget - (clock() - wave_start)
                if remaining <= 0:
                    break
            done, pending = wait(pending, timeout=remaining,
                                 return_when=FIRST_COMPLETED)
            if not done and budget is not None:
                break  # budget exhausted with stragglers still running
            for future in done:
                task = futures[future]
                elapsed = clock() - task.started
                try:
                    ack = future.result()
                except BrokenProcessPool as exc:
                    outcomes[task.restart] = f"crash: {exc}"
                    tracer.emit(TaskEvent(
                        restart=task.restart, status="failed",
                        attempt=task.attempt, elapsed_s=elapsed,
                        error="BrokenProcessPool"))
                except Exception as exc:
                    outcomes[task.restart] = (
                        f"exception: {type(exc).__name__}: {exc}"
                    )
                    tracer.emit(TaskEvent(
                        restart=task.restart, status="failed",
                        attempt=task.attempt, elapsed_s=elapsed,
                        error=type(exc).__name__))
                else:
                    outcomes[task.restart] = None
                    tracer.emit(TaskEvent(
                        restart=task.restart, status="completed",
                        attempt=task.attempt, elapsed_s=elapsed))
                    tracer.inc("runtime.ack.digest_ok",
                               int(bool(ack.get("digest"))))
                    _observe_telemetry(tracer, ack.get("telemetry"))

        for future, task in futures.items():
            if task.restart in outcomes:
                continue
            future.cancel()
            outcomes[task.restart] = (
                f"timeout: exceeded wave budget of {budget:.3f}s"
            )
            tracer.emit(TaskEvent(
                restart=task.restart, status="failed",
                attempt=task.attempt,
                elapsed_s=clock() - task.started, error="Timeout"))
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        _terminate_stragglers(executor)

    return outcomes


def run_supervised(
    matrix: Union[DataMatrix, np.ndarray],
    config: RunConfig,
    *,
    run_dir: Optional[PathLike] = None,
    resume: bool = False,
    tracer: Tracer = NULL_TRACER,
    sleep: SleepFn = time.sleep,
    backoff_base: float = 0.1,
    session_trace: bool = False,
) -> RuntimeResult:
    """Mine ``config.n_restarts`` restarts under supervision.

    Parameters
    ----------
    matrix:
        The data matrix (raw arrays are wrapped).
    config:
        The session description; its identity fields plus the matrix
        fully determine the result.
    run_dir:
        Checkpoint directory.  ``None`` creates a throwaway directory
        (checkpoints are still written -- the pooled result is *always*
        built from durable records, which is what makes resumed runs
        bit-identical to uninterrupted ones).
    resume:
        Attach to an existing run directory instead of initializing it;
        completed restarts are verified and skipped.
    tracer:
        Receives ``task`` / ``retry`` / ``fault`` events and the
        ``runtime.*`` metrics.
    sleep:
        Injection point for the backoff delay (tests pass a recorder).
    backoff_base:
        First-retry backoff in seconds; doubles per attempt, with
        multiplicative jitter in ``[0.5, 1.0)``.
    session_trace:
        Record a cross-process session trace
        (:mod:`repro.obs.session`): the supervisor and every worker
        write durable JSONL shards under ``<run_dir>/traces/``, merged
        into ``trace_session.jsonl`` on completion
        (:attr:`RuntimeResult.session_trace`).  Tracing never perturbs
        mining -- traced runs stay bit-identical to untraced ones.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if run_dir is None:
        if resume:
            raise ValueError("resume=True requires an explicit run_dir")
        run_dir = Path(mkdtemp(prefix="repro-run-"))
    run_dir = Path(run_dir)

    if resume:
        store = CheckpointStore.open(run_dir)
        store.verify_config(config)
    else:
        store = CheckpointStore.create(run_dir, config)

    session: Optional[SessionTrace] = None
    if session_trace:
        session = SessionTrace.create(run_dir, config.identity())
        # attach() returns the tracer to use from here on: the caller's
        # (now also feeding the supervisor shard) or, when the caller's
        # is disabled, a fresh shard-only tracer -- NULL_TRACER is
        # shared and must never be mutated.
        tracer = session.attach(tracer)

    try:
        completed: Set[int] = store.completed_restarts()
        skipped = sorted(completed)
        for restart in skipped:
            tracer.emit(TaskEvent(restart=restart, status="skipped"))
            tracer.inc("runtime.tasks.skipped")

        attempts: Dict[int, int] = {
            i: 0 for i in config.restart_indices() if i not in completed
        }
        executed = sorted(attempts)
        failures: List[TaskFailure] = []
        backoff_rng = np.random.default_rng(
            np.random.SeedSequence(config.root_seed,
                                   spawn_key=(BACKOFF_STREAM_KEY,))
        )

        pending = sorted(attempts)
        wave_index = 0
        while pending:
            wave = [_Attempt(restart=i, attempt=attempts[i]) for i in pending]
            # Every task/retry/fault event of this wave carries a `wave`
            # context key, so live sinks (ConsoleProgressSink) and recorded
            # traces can show wave-by-wave progress of long sessions.
            if tracer.enabled:
                tracer.push_context(wave=wave_index)
            try:
                tracer.inc("runtime.waves")
                outcomes = _run_wave(matrix, config, run_dir, wave, tracer,
                                     session)
                pending = []
                wave_backoff = 0.0
                for restart in sorted(outcomes):
                    error = outcomes[restart]
                    attempt = attempts[restart]
                    if error is None:
                        # Durability check: re-read the record the worker
                        # claims to have persisted; a corrupt record demotes
                        # the task back to failed.
                        try:
                            record = store.load_record(restart)
                        except CheckpointError as exc:
                            error = f"corrupt: {exc}"
                        else:
                            store.mark_done(restart, str(record["digest"]))
                            completed.add(restart)
                            tracer.inc("runtime.tasks.completed")
                            continue
                    kind = error.split(":", 1)[0]
                    tracer.inc("runtime.tasks.failed")
                    tracer.inc(f"runtime.failures.{kind}")
                    _emit_plan_fault(tracer, restart, attempt)
                    if attempt < config.max_retries:
                        attempts[restart] = attempt + 1
                        delay = _backoff_delay(backoff_rng, backoff_base,
                                               attempt)
                        wave_backoff = max(wave_backoff, delay)
                        tracer.emit(RetryEvent(
                            restart=restart, attempt=attempt, backoff_s=delay,
                            remaining=config.max_retries - attempt - 1,
                            error=kind))
                        tracer.inc("runtime.retries")
                        pending.append(restart)
                    else:
                        failures.append(TaskFailure(
                            restart=restart, attempt=attempt, kind=kind,
                            error=error))
            finally:
                if tracer.enabled:
                    tracer.pop_context()
            wave_index += 1
            if pending and wave_backoff > 0:
                sleep(wave_backoff)
            pending.sort()

        outcome = _finalize(matrix, config, store, tracer,
                            executed=[i for i in executed if i in completed],
                            skipped=skipped, failures=failures)
    finally:
        if session is not None:
            session.detach()

    if session is not None:
        # Merge after detach so the supervisor shard is closed/durable;
        # merging the same shards is byte-deterministic.
        outcome.session_trace = session.merge()
    return outcome


def _finalize(
    matrix: DataMatrix,
    config: RunConfig,
    store: CheckpointStore,
    tracer: Tracer,
    *,
    executed: List[int],
    skipped: List[int],
    failures: List[TaskFailure],
) -> RuntimeResult:
    """Pool the durable records into the session result."""
    completed = sorted(store.completed_restarts())
    runs = [store.load_result(i, matrix) for i in completed]
    result: Optional[MiningResult] = None
    if runs:
        result = pool_mining_results(
            matrix, runs,
            residue_target=config.residue_target,
            min_rows=config.min_rows,
            min_cols=config.min_cols,
            min_volume=config.min_volume,
            max_overlap=config.max_overlap,
            max_clusters=config.max_clusters,
        )
        result.metrics = tracer.snapshot_metrics() if tracer.enabled else None
        result.trace_summary = tracer.summary() if tracer.enabled else None
        pooled_payload = {
            "clusters": [
                [list(c.rows), list(c.cols)] for c in result.clustering
            ],
        }
        store.update_best(
            record_digest(pooled_payload),
            result.clustering.average_residue(),
            len(result.clustering),
        )

    degradation: Optional[DegradationReport] = None
    if failures:
        missing = sorted({f.restart for f in failures})
        degradation = DegradationReport(
            failures=list(failures), completed=completed, missing=missing)
        tracer.inc("runtime.degraded_restarts", len(missing))

    return RuntimeResult(
        result=result,
        run_dir=store.run_dir,
        executed=executed,
        skipped=skipped,
        degradation=degradation,
    )


def resume_run(
    matrix: Union[DataMatrix, np.ndarray],
    run_dir: PathLike,
    *,
    workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    max_retries: Optional[int] = None,
    tracer: Tracer = NULL_TRACER,
    sleep: SleepFn = time.sleep,
    backoff_base: float = 0.1,
    session_trace: bool = False,
) -> RuntimeResult:
    """Resume a checkpointed session from its run directory.

    The session config is read from the manifest; only the
    schedule-only knobs (``workers`` / ``task_timeout`` /
    ``max_retries``) may be overridden -- identity fields are pinned by
    the manifest, so a resume cannot silently change the session.
    ``session_trace`` resumes trace collection too: the resumed
    supervisor writes a generation-suffixed shard and the merge spans
    every generation of the session.
    """
    store = CheckpointStore.open(run_dir)
    config = store.config
    overrides: Dict[str, object] = {}
    if workers is not None:
        overrides["workers"] = workers
    if task_timeout is not None:
        overrides["task_timeout"] = task_timeout
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    if overrides:
        config = replace(config, **overrides)  # type: ignore[arg-type]
    return run_supervised(
        matrix, config,
        run_dir=run_dir, resume=True,
        tracer=tracer, sleep=sleep, backoff_base=backoff_base,
        session_trace=session_trace,
    )
