"""Run configuration for the supervised mining runtime.

A :class:`RunConfig` captures *everything* a worker process needs to
re-execute restart ``i`` of a mining session: the FLOC parameters, the
pooling thresholds, and the root seed that
:func:`repro.core.mining.restart_seed` expands into the restart's
private stream.  It round-trips through plain JSON so the checkpoint
manifest can embed it and a resumed run can verify it is continuing
the *same* session (see :mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["RunConfig"]


@dataclass(frozen=True)
class RunConfig:
    """Immutable description of one supervised mining session.

    Mining parameters mirror
    :func:`repro.core.mining.mine_delta_clusters`; supervision
    parameters (``workers``, ``task_timeout``, ``max_retries``) shape
    scheduling only and are deliberately *excluded* from the identity
    digest -- re-running with more workers must resume the same session.
    """

    # -- mining parameters (identity-bearing) --------------------------
    residue_target: float = 0.0
    n_restarts: int = 1
    root_seed: int = 0
    k: int = 10
    min_rows: int = 3
    min_cols: int = 3
    alpha: float = 0.0
    p: Union[float, Sequence[float]] = 0.2
    reseed_rounds: int = 10
    ordering: str = "greedy"
    gain_mode: str = "fast"
    max_iterations: int = 100
    min_volume: int = 25
    max_overlap: float = 0.5
    max_clusters: Optional[int] = None

    # -- supervision parameters (schedule-only) ------------------------
    workers: int = 1
    task_timeout: Optional[float] = None
    max_retries: int = 2

    #: Fields that define the session identity: two configs agreeing on
    #: these produce bit-identical results regardless of scheduling.
    IDENTITY_FIELDS = (
        "residue_target", "n_restarts", "root_seed", "k", "min_rows",
        "min_cols", "alpha", "p", "reseed_rounds", "ordering",
        "gain_mode", "max_iterations", "min_volume", "max_overlap",
        "max_clusters",
    )

    def __post_init__(self) -> None:
        if self.residue_target <= 0:
            raise ValueError(
                f"residue_target must be positive, got {self.residue_target}"
            )
        if self.n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {self.n_restarts}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if isinstance(self.p, (list, tuple)):
            # Normalize to a tuple so to_dict/from_dict round-trips and
            # frozen instances hash consistently.
            object.__setattr__(self, "p", tuple(float(x) for x in self.p))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (tuples become lists)."""
        out = asdict(self)
        if isinstance(out["p"], tuple):
            out["p"] = list(out["p"])
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown RunConfig keys: {', '.join(unknown)}")
        return cls(**payload)  # type: ignore[arg-type]

    def identity(self) -> Dict[str, object]:
        """The identity-bearing subset of :meth:`to_dict` (see above)."""
        full = self.to_dict()
        return {name: full[name] for name in self.IDENTITY_FIELDS}

    def restart_indices(self) -> List[int]:
        return list(range(self.n_restarts))
