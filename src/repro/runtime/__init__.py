"""Fault-tolerant mining runtime: supervision, checkpoints, chaos.

The runtime layers *operational* robustness over the pure algorithms in
:mod:`repro.core` without touching their semantics:

* :mod:`repro.runtime.config` -- :class:`RunConfig`, the JSON-round-trip
  description of a mining session (identity fields pin the result;
  scheduling fields shape execution only);
* :mod:`repro.runtime.supervisor` -- :func:`run_supervised` /
  :func:`resume_run`: wave-scheduled restarts on a process pool with
  per-task timeouts, bounded jittered retries, and graceful degradation
  (:class:`DegradationReport`) when budgets exhaust;
* :mod:`repro.runtime.checkpoint` -- :class:`CheckpointStore`: atomic,
  digest-verified manifest + per-restart records, the substrate of
  ``repro mine --resume``;
* :mod:`repro.runtime.worker` -- the process-pool entrypoint executing
  one seed-addressable restart;
* :mod:`repro.runtime.faults` -- the deterministic fault-injection
  harness (``REPRO_FAULT_PLAN``) used by the chaos tests and the CI
  ``chaos-smoke`` job.

Determinism contract: restart ``i`` of a session is a pure function of
``(matrix, config identity, i)``, and pooled results are always built
from durable checkpoint records -- so uninterrupted, crash-riddled, and
resumed runs of the same session are byte-for-byte identical.  See
``docs/ROBUSTNESS.md``.
"""

from ..core.mining import restart_seed
from .checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    record_digest,
    record_to_result,
    result_to_record,
)
from .config import RunConfig
from .faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    load_plan_from_env,
)
from .supervisor import (
    BACKOFF_STREAM_KEY,
    DegradationReport,
    RuntimeResult,
    TaskFailure,
    resume_run,
    run_supervised,
)
from .worker import execute_restart_task

__all__ = [
    "BACKOFF_STREAM_KEY",
    "CheckpointCorruptionError",
    "CheckpointError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "DegradationReport",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RunConfig",
    "RuntimeResult",
    "TaskFailure",
    "execute_restart_task",
    "load_plan_from_env",
    "record_digest",
    "record_to_result",
    "restart_seed",
    "result_to_record",
    "resume_run",
    "run_supervised",
]
