"""Small graph substrate: union-find, adjacency graphs, maximal cliques.

The alternative delta-cluster algorithm (Section 4.4) needs two graph
operations implemented from scratch:

* **connected components** over dense grid units (CLIQUE merges adjacent
  dense units into subspace clusters) -- provided by :class:`UnionFind`,
* **maximal clique enumeration** over the attribute graph built from
  derived-attribute subspace clusters ("Any clique in this graph indicates
  the existence of a delta-cluster") -- provided by Bron-Kerbosch with
  pivoting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterator, List, Set

__all__ = ["UnionFind", "Graph", "maximal_cliques"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        """Root of ``item``'s set (inserting the item when new)."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: Hashable, second: Hashable) -> None:
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def groups(self) -> List[Set[Hashable]]:
        """All disjoint sets, as a list of member sets."""
        buckets: Dict[Hashable, Set[Hashable]] = {}
        for item in self._parent:
            buckets.setdefault(self.find(item), set()).add(item)
        return list(buckets.values())

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)


class Graph:
    """Tiny undirected graph on hashable vertices (adjacency sets)."""

    def __init__(self) -> None:
        self._adj: Dict[Hashable, Set[Hashable]] = {}

    def add_vertex(self, vertex: Hashable) -> None:
        self._adj.setdefault(vertex, set())

    def add_edge(self, first: Hashable, second: Hashable) -> None:
        if first == second:
            raise ValueError(f"self-loop on {first!r} not allowed")
        self.add_vertex(first)
        self.add_vertex(second)
        self._adj[first].add(second)
        self._adj[second].add(first)

    @property
    def vertices(self) -> FrozenSet[Hashable]:
        return frozenset(self._adj)

    def neighbors(self, vertex: Hashable) -> FrozenSet[Hashable]:
        return frozenset(self._adj[vertex])

    def has_edge(self, first: Hashable, second: Hashable) -> bool:
        return second in self._adj.get(first, ())

    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adj)


def maximal_cliques(graph: Graph, min_size: int = 1) -> List[FrozenSet[Hashable]]:
    """All maximal cliques of ``graph`` (Bron-Kerbosch with pivoting).

    Returns cliques of at least ``min_size`` vertices.  Pivoting keeps the
    recursion tree small on the near-clique graphs the derived-attribute
    mapping produces.
    """
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    adjacency = {v: set(graph.neighbors(v)) for v in graph}
    cliques: List[FrozenSet[Hashable]] = []

    def expand(candidate: Set, candidates: Set, excluded: Set) -> None:
        if not candidates and not excluded:
            if len(candidate) >= min_size:
                cliques.append(frozenset(candidate))
            return
        pivot_pool = candidates | excluded
        pivot = max(pivot_pool, key=lambda v: len(adjacency[v] & candidates))
        for vertex in list(candidates - adjacency[pivot]):
            expand(
                candidate | {vertex},
                candidates & adjacency[vertex],
                excluded & adjacency[vertex],
            )
            candidates.discard(vertex)
            excluded.add(vertex)

    expand(set(), set(adjacency), set())
    return cliques
