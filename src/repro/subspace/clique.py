"""CLIQUE: grid- and density-based subspace clustering (Agrawal et al. 1998).

The substrate of the paper's *alternative* delta-cluster algorithm
(Section 4.4).  The implementation follows the description in Section 2:

1. every dimension is partitioned into ``xi`` equal-width bins
   (:mod:`repro.subspace.grid`);
2. a *unit* -- one bin choice per dimension of a subspace -- is **dense**
   when it holds more than a ``tau`` fraction of all points;
3. dense units are mined bottom-up Apriori-style: dense units in
   ``d``-dimensional subspaces are joined (and subset-pruned) to form
   candidate ``d+1``-dimensional units, whose support is counted by
   intersecting point sets;
4. within each subspace, dense units that share a face (bins differing by
   one step in exactly one dimension) merge into clusters via union-find.

The output is a list of :class:`SubspaceCluster` -- (dimension set, point
set) pairs -- exactly what the derived-attribute mapping consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from ..core.matrix import DataMatrix
from .graph import UnionFind
from .grid import discretize

__all__ = ["DenseUnit", "SubspaceCluster", "clique"]

#: A unit key: sorted ((dim, bin), ...) pairs.
UnitKey = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class DenseUnit:
    """A dense grid unit: dimension/bin choices plus its supporting points."""

    key: UnitKey
    points: FrozenSet[int]

    @property
    def dims(self) -> Tuple[int, ...]:
        return tuple(dim for dim, _ in self.key)

    @property
    def bins(self) -> Tuple[int, ...]:
        return tuple(b for _, b in self.key)

    @property
    def dimensionality(self) -> int:
        return len(self.key)


@dataclass(frozen=True)
class SubspaceCluster:
    """A maximal set of face-connected dense units in one subspace."""

    dims: Tuple[int, ...]
    points: FrozenSet[int]
    units: Tuple[DenseUnit, ...]

    @property
    def dimensionality(self) -> int:
        return len(self.dims)

    @property
    def n_points(self) -> int:
        return len(self.points)


def clique(
    data: Union[DataMatrix, np.ndarray],
    xi: int,
    tau: float,
    max_dims: Optional[int] = None,
    min_points: int = 1,
) -> List[SubspaceCluster]:
    """Run CLIQUE and return the subspace clusters of every subspace level.

    Parameters
    ----------
    data:
        Points x dimensions; ``NaN`` coordinates never contribute density.
    xi:
        Number of equal-width bins per dimension.
    tau:
        Density threshold: a unit is dense when it holds *more than*
        ``tau`` of all points.
    max_dims:
        Optional cap on subspace dimensionality (the Apriori ladder stops
        there); ``None`` lets it run until no candidates survive.
    min_points:
        Discard clusters supported by fewer points.

    Returns
    -------
    list of :class:`SubspaceCluster`, highest-dimensional first.
    """
    if not 0.0 < tau < 1.0:
        raise ValueError(f"tau must be in (0, 1), got {tau}")
    if max_dims is not None and max_dims < 1:
        raise ValueError(f"max_dims must be >= 1, got {max_dims}")
    partition = discretize(data, xi)
    n_points = partition.n_points
    min_support = tau * n_points

    # Level 1: dense 1-dimensional units.
    level: Dict[UnitKey, FrozenSet[int]] = {}
    for dim in range(partition.n_dims):
        column = partition.bins[:, dim]
        for bin_index in range(partition.xi):
            members = np.flatnonzero(column == bin_index)
            if members.size > min_support:
                key: UnitKey = ((dim, int(bin_index)),)
                level[key] = frozenset(int(i) for i in members)
    dense_by_level: List[Dict[UnitKey, FrozenSet[int]]] = [level]

    # Apriori ladder.
    depth = 1
    while level and (max_dims is None or depth < max_dims):
        candidates = _generate_candidates(level)
        next_level: Dict[UnitKey, FrozenSet[int]] = {}
        for key, (first, second) in candidates.items():
            support = level[first] & level[second]
            if len(support) > min_support and _all_subunits_dense(key, level):
                next_level[key] = support
        if not next_level:
            break
        dense_by_level.append(next_level)
        level = next_level
        depth += 1

    clusters: List[SubspaceCluster] = []
    for units in reversed(dense_by_level):
        clusters.extend(_connect_units(units, min_points))
    return clusters


def _generate_candidates(
    level: Dict[UnitKey, FrozenSet[int]]
) -> Dict[UnitKey, Tuple[UnitKey, UnitKey]]:
    """Join units agreeing on all but their last (dim, bin) pair.

    Classic Apriori candidate generation: two ``d``-dimensional dense
    units whose first ``d-1`` pairs coincide and whose last pairs name
    *different* dimensions join into a ``d+1``-dimensional candidate.
    Returns candidate -> (parent_a, parent_b) so supports can be
    intersected without re-scanning points.
    """
    keys = sorted(level)
    by_prefix: Dict[UnitKey, List[UnitKey]] = {}
    for key in keys:
        by_prefix.setdefault(key[:-1], []).append(key)
    candidates: Dict[UnitKey, Tuple[UnitKey, UnitKey]] = {}
    for prefix, group in by_prefix.items():
        for i, first in enumerate(group):
            for second in group[i + 1:]:
                dim_a, dim_b = first[-1][0], second[-1][0]
                if dim_a == dim_b:
                    continue
                merged = tuple(sorted(prefix + (first[-1], second[-1])))
                candidates.setdefault(merged, (first, second))
    return candidates


def _all_subunits_dense(
    key: UnitKey, level: Dict[UnitKey, FrozenSet[int]]
) -> bool:
    """Apriori pruning: every d-element sub-unit must itself be dense."""
    for drop in range(len(key)):
        sub = key[:drop] + key[drop + 1:]
        if sub not in level:
            return False
    return True


def _connect_units(
    units: Dict[UnitKey, FrozenSet[int]], min_points: int
) -> List[SubspaceCluster]:
    """Merge face-adjacent dense units of each subspace into clusters."""
    by_subspace: Dict[Tuple[int, ...], List[UnitKey]] = {}
    for key in units:
        dims = tuple(dim for dim, _ in key)
        by_subspace.setdefault(dims, []).append(key)

    clusters: List[SubspaceCluster] = []
    for dims, keys in by_subspace.items():
        forest = UnionFind()
        key_set = set(keys)
        for key in keys:
            forest.add(key)
            # Probe the <=2d face-neighbours instead of comparing all pairs.
            for position, (dim, bin_index) in enumerate(key):
                for delta in (-1, 1):
                    neighbor = (
                        key[:position]
                        + ((dim, bin_index + delta),)
                        + key[position + 1:]
                    )
                    if neighbor in key_set:
                        forest.union(key, neighbor)
        for group in forest.groups():
            member_units = tuple(
                DenseUnit(key=k, points=units[k]) for k in sorted(group)
            )
            points: FrozenSet[int] = frozenset().union(
                *(units[k] for k in group)
            )
            if len(points) >= min_points:
                clusters.append(
                    SubspaceCluster(dims=dims, points=points, units=member_units)
                )
    clusters.sort(key=lambda c: (-c.dimensionality, -c.n_points))
    return clusters
