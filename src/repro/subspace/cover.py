"""Minimal cluster descriptions for CLIQUE (Agrawal et al. 1998, phase 3).

A CLIQUE cluster is a connected set of dense grid units; the original
algorithm finishes by producing a *minimal description* -- a small set of
axis-aligned hyper-rectangles of units whose union covers the cluster.
The delta-clusters paper only needs CLIQUE's (dims, points) output, but a
faithful CLIQUE substrate ships the description step too:

1. **greedy growth**: starting from an uncovered unit, grow a maximal
   rectangle by repeatedly extending it one bin in whichever direction
   keeps every contained unit dense;
2. repeat until every unit is covered;
3. **removal heuristic**: drop rectangles whose units are all covered by
   other rectangles.

The result is not guaranteed minimal (that problem is NP-hard; the greedy
+ removal heuristic is exactly what the CLIQUE paper prescribes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .clique import SubspaceCluster, UnitKey

__all__ = ["Rectangle", "minimal_description", "rectangle_covers"]


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned range of bins per dimension of a subspace.

    ``dims[i]``'s bins span ``lo[i] .. hi[i]`` inclusive.
    """

    dims: Tuple[int, ...]
    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not (len(self.dims) == len(self.lo) == len(self.hi)):
            raise ValueError("dims, lo and hi must have equal length")
        for low, high in zip(self.lo, self.hi):
            if low > high:
                raise ValueError(f"empty bin range {low}..{high}")

    def contains(self, key: UnitKey) -> bool:
        """Whether a unit (sorted (dim, bin) pairs) lies inside."""
        if tuple(dim for dim, __ in key) != self.dims:
            return False
        return all(
            low <= bin_index <= high
            for (__, bin_index), low, high in zip(key, self.lo, self.hi)
        )

    def units(self) -> List[UnitKey]:
        """Enumerate every unit key inside the rectangle."""
        out: List[UnitKey] = [()]
        for dim, low, high in zip(self.dims, self.lo, self.hi):
            out = [
                prefix + ((dim, bin_index),)
                for prefix in out
                for bin_index in range(low, high + 1)
            ]
        return out

    @property
    def n_units(self) -> int:
        size = 1
        for low, high in zip(self.lo, self.hi):
            size *= high - low + 1
        return size


def rectangle_covers(
    rectangles: Sequence[Rectangle], keys: Sequence[UnitKey]
) -> bool:
    """Do the rectangles jointly cover every unit key?"""
    return all(
        any(rect.contains(key) for rect in rectangles) for key in keys
    )


def minimal_description(cluster: SubspaceCluster) -> List[Rectangle]:
    """Greedy-growth + removal-heuristic cover of a cluster's units.

    Returns rectangles whose union is exactly the cluster's dense units
    (no rectangle strays outside the cluster).
    """
    keys = {unit.key for unit in cluster.units}
    if not keys:
        return []
    dims = cluster.dims
    uncovered = set(keys)
    rectangles: List[Rectangle] = []
    while uncovered:
        seed = min(uncovered)  # deterministic
        rect = _grow(seed, dims, keys)
        rectangles.append(rect)
        uncovered -= set(rect.units())

    return _remove_redundant(rectangles, keys)


def _grow(seed: UnitKey, dims: Tuple[int, ...], keys: set) -> Rectangle:
    """Maximal rectangle around ``seed`` staying inside ``keys``.

    Extends one bin at a time per direction, cycling through dimensions,
    exactly like CLIQUE's greedy growth.
    """
    lo = [bin_index for __, bin_index in seed]
    hi = list(lo)
    changed = True
    while changed:
        changed = False
        for axis in range(len(dims)):
            for direction in (-1, 1):
                candidate_lo = list(lo)
                candidate_hi = list(hi)
                if direction < 0:
                    candidate_lo[axis] -= 1
                else:
                    candidate_hi[axis] += 1
                rect = Rectangle(dims, tuple(candidate_lo), tuple(candidate_hi))
                # The extension is legal when every newly included unit
                # is dense (i.e. in the cluster).
                if all(key in keys for key in _face_units(
                    dims, candidate_lo, candidate_hi, axis, direction
                )):
                    lo, hi = candidate_lo, candidate_hi
                    changed = True
    return Rectangle(dims, tuple(lo), tuple(hi))


def _face_units(
    dims: Tuple[int, ...],
    lo: List[int],
    hi: List[int],
    axis: int,
    direction: int,
) -> List[UnitKey]:
    """Units on the face just added by extending ``axis`` in ``direction``."""
    face_bin = lo[axis] if direction < 0 else hi[axis]
    out: List[UnitKey] = [()]
    for i, dim in enumerate(dims):
        if i == axis:
            choices = [face_bin]
        else:
            choices = list(range(lo[i], hi[i] + 1))
        out = [
            prefix + ((dim, bin_index),)
            for prefix in out
            for bin_index in choices
        ]
    return out


def _remove_redundant(
    rectangles: List[Rectangle], keys: set
) -> List[Rectangle]:
    """Drop rectangles whose units are covered by the rest (smallest
    first, the CLIQUE heuristic)."""
    kept = list(rectangles)
    for rect in sorted(rectangles, key=lambda r: r.n_units):
        if len(kept) == 1:
            break
        remaining = [r for r in kept if r is not rect]
        if rectangle_covers(remaining, rect.units()):
            kept = remaining
    return kept
