"""The alternative delta-cluster algorithm (Section 4.4 of the paper).

The paper sketches -- and then argues against -- a reduction of
delta-cluster mining to classic subspace clustering:

1. **Derive attributes.** For every pair of original attributes
   ``(A_j1, A_j2)`` with ``j1 < j2``, add a derived attribute holding
   ``A_j1 - A_j2``.  ``N`` attributes become ``N * (N - 1) / 2`` derived
   ones (Figure 7(a)); an entry is missing when either operand is.
2. **Subspace-cluster the derived matrix** with CLIQUE: objects whose
   pairwise attribute differences agree are close in the derived space.
3. **Map back.**  For each subspace cluster, build a graph on the original
   attributes with an edge per derived dimension present; every clique of
   that graph (Figure 7(b)) names an attribute set on which the cluster's
   objects are shifting-coherent -- i.e. a delta-cluster.

The quadratic dimensionality blow-up makes step 2 very expensive -- that is
exactly the point of Figure 10, which this module's implementation
regenerates as the slow baseline curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from .clique import SubspaceCluster, clique
from .graph import Graph, maximal_cliques

__all__ = [
    "derived_matrix",
    "attribute_graph",
    "subspace_cluster_to_delta",
    "AlternativeResult",
    "alternative_delta_clusters",
]


def derived_matrix(
    matrix: Union[DataMatrix, np.ndarray]
) -> Tuple[DataMatrix, List[Tuple[int, int]]]:
    """Build the pairwise-difference matrix of Figure 7(a).

    Returns the derived :class:`DataMatrix` (``N * (N-1) / 2`` columns)
    and the list of original-attribute pairs, aligned with the derived
    columns.  Derived entries are missing when either operand is.
    """
    values = matrix.values if isinstance(matrix, DataMatrix) else np.asarray(matrix)
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={values.ndim}")
    n_cols = values.shape[1]
    if n_cols < 2:
        raise ValueError("need at least 2 attributes to derive differences")
    pairs: List[Tuple[int, int]] = [
        (j1, j2) for j1 in range(n_cols) for j2 in range(j1 + 1, n_cols)
    ]
    columns = [values[:, j1] - values[:, j2] for j1, j2 in pairs]
    derived = np.column_stack(columns)
    labels = None
    if isinstance(matrix, DataMatrix) and matrix.col_labels is not None:
        labels = [
            f"{matrix.col_labels[j1]}-{matrix.col_labels[j2]}" for j1, j2 in pairs
        ]
    return DataMatrix(derived, col_labels=labels), pairs


def attribute_graph(
    cluster_dims: Tuple[int, ...], pairs: List[Tuple[int, int]]
) -> Graph:
    """Graph on original attributes induced by a derived-subspace cluster.

    One vertex per original attribute touched, one edge per derived
    dimension in the subspace cluster (Figure 7(b)).
    """
    graph = Graph()
    for dim in cluster_dims:
        j1, j2 = pairs[dim]
        graph.add_edge(j1, j2)
    return graph


def subspace_cluster_to_delta(
    cluster: SubspaceCluster,
    pairs: List[Tuple[int, int]],
    min_rows: int = 2,
    min_cols: int = 2,
) -> List[DeltaCluster]:
    """Extract the delta-clusters a derived-subspace cluster implies.

    Every maximal clique of at least ``min_cols`` attributes in the
    induced attribute graph, together with the subspace cluster's object
    set, is a candidate delta-cluster.
    """
    if cluster.n_points < min_rows:
        return []
    graph = attribute_graph(cluster.dims, pairs)
    rows = sorted(cluster.points)
    out = []
    for clique_vertices in maximal_cliques(graph, min_size=min_cols):
        out.append(DeltaCluster(rows, sorted(clique_vertices)))
    return out


@dataclass
class AlternativeResult:
    """Outcome of the alternative algorithm, with its cost breakdown."""

    clusters: List[DeltaCluster] = field(default_factory=list)
    n_derived_attributes: int = 0
    n_subspace_clusters: int = 0
    elapsed_seconds: float = 0.0
    derive_seconds: float = 0.0
    clique_seconds: float = 0.0
    map_seconds: float = 0.0


def alternative_delta_clusters(
    matrix: Union[DataMatrix, np.ndarray],
    xi: int = 10,
    tau: float = 0.01,
    max_dims: Optional[int] = None,
    min_rows: int = 2,
    min_cols: int = 2,
    max_residue: Optional[float] = None,
) -> AlternativeResult:
    """Run the full three-step alternative algorithm.

    Parameters
    ----------
    matrix:
        The original data matrix.
    xi, tau, max_dims:
        CLIQUE parameters for the derived matrix (see
        :func:`repro.subspace.clique.clique`).
    min_rows, min_cols:
        Discard candidate delta-clusters smaller than this.
    max_residue:
        When given, verify every candidate against the *original* matrix
        and keep only those with mean absolute residue at most this bound
        (grid discretization admits some slack; verification removes it).

    Returns
    -------
    AlternativeResult with deduplicated clusters and per-phase timings.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    started = time.perf_counter()

    derive_start = time.perf_counter()
    derived, pairs = derived_matrix(matrix)
    derive_seconds = time.perf_counter() - derive_start

    clique_start = time.perf_counter()
    subspace_clusters = clique(
        derived, xi=xi, tau=tau, max_dims=max_dims, min_points=min_rows
    )
    clique_seconds = time.perf_counter() - clique_start

    map_start = time.perf_counter()
    seen = set()
    clusters: List[DeltaCluster] = []
    for sc in subspace_clusters:
        for candidate in subspace_cluster_to_delta(sc, pairs, min_rows, min_cols):
            key = (candidate.rows, candidate.cols)
            if key in seen:
                continue
            seen.add(key)
            if max_residue is not None and candidate.residue(matrix) > max_residue:
                continue
            clusters.append(candidate)
    map_seconds = time.perf_counter() - map_start

    return AlternativeResult(
        clusters=clusters,
        n_derived_attributes=len(pairs),
        n_subspace_clusters=len(subspace_clusters),
        elapsed_seconds=time.perf_counter() - started,
        derive_seconds=derive_seconds,
        clique_seconds=clique_seconds,
        map_seconds=map_seconds,
    )
