"""Grid discretization for CLIQUE (Agrawal et al., SIGMOD 1998).

CLIQUE "discretizes the data space into non-overlapping rectangular cells
by partitioning each dimension to a fixed number of bins of equal length"
(Section 2 of the delta-clusters paper).  This module performs that
partitioning: each dimension is cut into ``xi`` equal-width intervals over
its own observed range; every point maps to a bin index per dimension.
Missing coordinates map to the sentinel ``MISSING_BIN`` and never
contribute density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..core.matrix import DataMatrix

__all__ = ["MISSING_BIN", "GridPartition", "discretize"]

#: Bin index used for missing coordinates.
MISSING_BIN = -1


@dataclass(frozen=True)
class GridPartition:
    """A discretized dataset.

    Attributes
    ----------
    bins:
        Integer array, same shape as the data; ``bins[i, d]`` is the bin
        of point ``i`` along dimension ``d`` in ``0..xi-1``, or
        ``MISSING_BIN`` for a missing coordinate.
    xi:
        Number of intervals per dimension.
    lower, width:
        Per-dimension interval origin and width (width 1.0 for constant
        dimensions, where every value falls in bin 0).
    """

    bins: np.ndarray
    xi: int
    lower: np.ndarray
    width: np.ndarray

    @property
    def n_points(self) -> int:
        return self.bins.shape[0]

    @property
    def n_dims(self) -> int:
        return self.bins.shape[1]

    def bin_interval(self, dim: int, bin_index: int) -> Tuple[float, float]:
        """The value interval ``[lo, hi)`` a bin covers along ``dim``."""
        if not 0 <= bin_index < self.xi:
            raise IndexError(f"bin {bin_index} out of range [0, {self.xi})")
        lo = self.lower[dim] + bin_index * self.width[dim]
        return float(lo), float(lo + self.width[dim])


def discretize(data: Union[DataMatrix, np.ndarray], xi: int) -> GridPartition:
    """Partition every dimension into ``xi`` equal-width bins.

    Each dimension's range is its own [min, max] over specified values;
    the maximum value lands in the last bin (closed upper edge).
    """
    if xi < 1:
        raise ValueError(f"xi must be >= 1, got {xi}")
    values = data.values if isinstance(data, DataMatrix) else np.asarray(data, float)
    if values.ndim != 2:
        raise ValueError(f"expected 2-D data, got ndim={values.ndim}")
    mask = ~np.isnan(values)
    n_points, n_dims = values.shape
    lower = np.zeros(n_dims)
    width = np.ones(n_dims)
    bins = np.full(values.shape, MISSING_BIN, dtype=np.int64)
    for dim in range(n_dims):
        column = values[:, dim]
        specified = mask[:, dim]
        if not specified.any():
            continue
        lo = column[specified].min()
        hi = column[specified].max()
        lower[dim] = lo
        span = hi - lo
        if span <= 0:
            # Constant dimension: everything in bin 0, unit width.
            width[dim] = 1.0
            bins[specified, dim] = 0
            continue
        width[dim] = span / xi
        raw = np.floor((column[specified] - lo) / width[dim]).astype(np.int64)
        bins[specified, dim] = np.clip(raw, 0, xi - 1)
    return GridPartition(bins=bins, xi=xi, lower=lower, width=width)
