"""CLIQUE subspace clustering and the Section-4.4 alternative algorithm."""

from .clique import DenseUnit, SubspaceCluster, clique
from .cover import Rectangle, minimal_description, rectangle_covers
from .derived import (
    AlternativeResult,
    alternative_delta_clusters,
    attribute_graph,
    derived_matrix,
    subspace_cluster_to_delta,
)
from .graph import Graph, UnionFind, maximal_cliques
from .grid import MISSING_BIN, GridPartition, discretize

__all__ = [
    "AlternativeResult",
    "DenseUnit",
    "Graph",
    "GridPartition",
    "MISSING_BIN",
    "Rectangle",
    "SubspaceCluster",
    "UnionFind",
    "alternative_delta_clusters",
    "attribute_graph",
    "clique",
    "derived_matrix",
    "discretize",
    "maximal_cliques",
    "minimal_description",
    "rectangle_covers",
    "subspace_cluster_to_delta",
]
