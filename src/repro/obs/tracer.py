"""Tracer: span timing and typed-event dispatch with zero disabled cost.

The tracer is the single instrumentation handle threaded through FLOC.
It owns three optional facilities:

* **spans** -- ``with tracer.span("phase1", k=k) as sp:`` times a region
  (``sp.elapsed`` afterwards).  Span timings are always folded into the
  per-name aggregates returned by :meth:`Tracer.summary`; the individual
  records are forwarded to sinks only when ``emit_spans=True`` (per-slot
  ``gain_eval`` spans would otherwise flood a JSONL trace).
* **typed events** -- :meth:`Tracer.emit` takes an
  :class:`~repro.obs.events.TraceEvent`, merges the current context
  (e.g. ``restart=2``) and hands the flat dict to every sink.
* **metrics** -- :meth:`inc` / :meth:`set_gauge` / :meth:`observe`
  delegate to an attached :class:`~repro.obs.metrics.MetricsRegistry`.

A disabled tracer (``NULL_TRACER``, the default everywhere) costs one
attribute check per call site: ``span()`` returns a shared no-op span,
``emit``/``inc``/``observe`` return immediately, and no event objects
are ever constructed by callers that guard on :attr:`Tracer.enabled`.
The tracer never draws random numbers, so instrumentation cannot
perturb FLOC's RNG stream.

All timing goes through :attr:`Tracer.clock` (``time.perf_counter``),
which is also the clock core code should use instead of importing
``time`` directly -- tests substitute a fake clock through it.

Cross-process session traces (:mod:`repro.obs.session`) need a total
order over records from many processes, so a tracer can additionally
*stamp* every record it dispatches (``stamp=True``): a monotonic
``ts`` (the :attr:`clock` reading at emit time) and a per-process
``seq`` counter.  Stamping never touches the RNG or the mined result;
it only annotates the records sinks receive.
"""

from __future__ import annotations

import time
from types import TracebackType
from typing import Dict, List, Optional, Sequence, Union

from .events import TraceEvent
from .metrics import MetricsRegistry
from .sinks import Sink

__all__ = ["Span", "Tracer", "NULL_TRACER"]


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    name = ""
    elapsed = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """A timed region; created via :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "attrs", "started", "elapsed")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.started = 0.0
        self.elapsed = 0.0

    def set(self, **attrs: object) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.started = self._tracer.clock()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> bool:
        self.elapsed = self._tracer.clock() - self.started
        self._tracer._finish_span(self)
        return False


class Tracer:
    """Dispatch hub for spans, typed events and metrics.

    Parameters
    ----------
    sinks:
        Objects with ``write(record: dict)`` (see :mod:`repro.obs.sinks`);
        every emitted event is forwarded to each in order.
    metrics:
        Optional :class:`MetricsRegistry`; ``None`` makes the metric
        write paths no-ops.
    enabled:
        Master switch.  A disabled tracer ignores everything (this is
        what ``NULL_TRACER`` is).
    emit_spans:
        Also forward individual span records (``{"type": "span", ...}``)
        to the sinks.  Off by default; span aggregates are always
        available from :meth:`summary`.
    stamp:
        Annotate every dispatched record with a monotonic ``ts``
        (:attr:`clock` at emit time) and a per-process ``seq`` counter,
        the ordering keys the cross-process session merge
        (:mod:`repro.obs.session`) aligns and sorts on.
    """

    clock = staticmethod(time.perf_counter)

    def __init__(
        self,
        sinks: Sequence[Sink] = (),
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
        emit_spans: bool = False,
        stamp: bool = False,
    ) -> None:
        self.sinks: List[Sink] = list(sinks)
        self.metrics = metrics
        self.enabled = enabled
        self.emit_spans = emit_spans
        self.stamp = stamp
        self._seq = 0
        self._context: List[Dict[str, object]] = []
        self._merged_context: Dict[str, object] = {}
        self._event_counts: Dict[str, int] = {}
        self._span_agg: Dict[str, List[float]] = {}  # name -> [count, total_s]

    # -- context -------------------------------------------------------
    def push_context(self, **attrs: object) -> None:
        """Attach key/values merged into every subsequent record."""
        self._context.append(attrs)
        self._merged_context = {k: v for d in self._context for k, v in d.items()}

    def pop_context(self) -> None:
        if self._context:
            self._context.pop()
            self._merged_context = {
                k: v for d in self._context for k, v in d.items()
            }

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Union[Span, "_NullSpan"]:
        """Timed region context manager; no-op singleton when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, name, attrs)

    def _finish_span(self, span: Span) -> None:
        agg = self._span_agg.get(span.name)
        if agg is None:
            self._span_agg[span.name] = [1, span.elapsed]
        else:
            agg[0] += 1
            agg[1] += span.elapsed
        if self.emit_spans and self.sinks:
            record = {"type": "span", "name": span.name,
                      "elapsed_s": span.elapsed}
            record.update(self._merged_context)
            record.update(span.attrs)
            if self.stamp:
                self._stamp(record)
            for sink in self.sinks:
                sink.write(record)

    def _stamp(self, record: Dict[str, object]) -> None:
        """Attach the (ts, seq) ordering keys session merges sort on."""
        record["ts"] = self.clock()
        record["seq"] = self._seq
        self._seq += 1

    # -- typed events ----------------------------------------------------
    def emit(self, event: TraceEvent) -> None:
        """Forward one typed event (merged with the context) to the sinks."""
        if not self.enabled:
            return
        record = event.to_dict()
        record.update(self._merged_context)
        if self.stamp:
            self._stamp(record)
        kind = record.get("type", "event")
        self._event_counts[kind] = self._event_counts.get(kind, 0) + 1
        for sink in self.sinks:
            sink.write(record)

    # -- metrics write paths ---------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.inc(name, n)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.observe(name, value)

    # -- lifecycle -------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Aggregate view: event counts plus per-span count/total time."""
        return {
            "events": dict(self._event_counts),
            "spans": {
                name: {"count": int(agg[0]), "total_s": float(agg[1])}
                for name, agg in sorted(self._span_agg.items())
            },
        }

    def snapshot_metrics(self) -> Optional[Dict[str, object]]:
        """The metrics snapshot, or ``None`` when no registry is attached."""
        if self.metrics is None:
            return None
        return self.metrics.snapshot()

    def close(self) -> None:
        """Close every sink that supports it (flushes JSONL writers)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: The default tracer: permanently disabled, shared, allocation-free.
NULL_TRACER = Tracer(enabled=False)
