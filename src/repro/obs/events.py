"""Typed trace events: the vocabulary of the FLOC event stream.

Every record a :class:`~repro.obs.tracer.Tracer` hands to its sinks is a
plain ``dict`` with a ``type`` key; the dataclasses here are the typed
constructors for the domain events (iteration, action, seed) so call
sites cannot misspell a field.  Span timings are emitted as ``"span"``
records by the tracer itself (see :class:`~repro.obs.tracer.Span`).

The payloads mirror what the paper reports per iteration (Tables 1-5,
Figs 8-10): residue trajectory, volumes, action gains, seed shapes --
so a trace is a machine-readable convergence record rather than an
opaque end-of-run aggregate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, List, Optional, Type

__all__ = [
    "TraceEvent",
    "IterationEvent",
    "ActionEvent",
    "SeedEvent",
    "TaskEvent",
    "RetryEvent",
    "FaultEvent",
    "ResourceEvent",
    "EVENT_TYPES",
    "event_fields",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base class: a typed event that serializes to a flat dict."""

    #: Event discriminator -- overridden per subclass.
    type: str = "event"

    def to_dict(self) -> Dict[str, object]:
        """Flat, JSON-friendly representation (numpy scalars coerced)."""
        out: Dict[str, object] = {}
        for key, value in asdict(self).items():
            if value is None:
                continue
            if isinstance(value, bool):
                out[key] = value
            elif hasattr(value, "item"):  # numpy scalar
                out[key] = value.item()
            else:
                out[key] = value
        return out


@dataclass(frozen=True)
class IterationEvent(TraceEvent):
    """One Phase-2 iteration completed.

    ``residue`` is the average residue of the best clustering after the
    iteration -- by construction identical to the corresponding entry of
    :attr:`repro.core.floc.FlocResult.history`.  ``score`` is the raw
    objective value (equal to ``residue`` in paper-literal mode, the
    feasibility-weighted volume score in r-residue mode).
    """

    type: str = "iteration"
    index: int = 0
    residue: float = 0.0
    score: float = 0.0
    total_volume: int = 0
    n_actions: int = 0
    improved: bool = False
    elapsed_s: float = 0.0


@dataclass(frozen=True)
class ActionEvent(TraceEvent):
    """One membership toggle was performed.

    ``gain`` is the gain that selected the action; ``residue`` and
    ``volume`` describe the acted cluster *after* the toggle.
    """

    type: str = "action"
    kind: str = "row"
    index: int = 0
    cluster: int = 0
    is_removal: bool = False
    gain: float = 0.0
    residue: float = 0.0
    volume: int = 0


@dataclass(frozen=True)
class SeedEvent(TraceEvent):
    """A cluster slot received a fresh seed.

    ``origin`` is ``"phase1"`` for the initial draw and ``"reseed"`` when
    a dead/duplicate slot was replaced between Phase-2 rounds.  Residue
    and volume are measured against the data matrix (``None`` when the
    emitter has not evaluated the seed yet).
    """

    type: str = "seed"
    cluster: int = 0
    origin: str = "phase1"
    n_rows: int = 0
    n_cols: int = 0
    residue: Optional[float] = None
    volume: Optional[int] = None


@dataclass(frozen=True)
class TaskEvent(TraceEvent):
    """A supervised restart task changed state.

    ``status`` is one of ``"dispatched"``, ``"completed"``, ``"failed"``
    or ``"skipped"`` (already checkpointed on resume).  ``attempt`` is
    0-based; ``error`` carries the failure class name when relevant.
    """

    type: str = "task"
    restart: int = 0
    status: str = "dispatched"
    attempt: int = 0
    elapsed_s: float = 0.0
    error: Optional[str] = None


@dataclass(frozen=True)
class RetryEvent(TraceEvent):
    """The supervisor scheduled a retry for a failed restart task.

    ``backoff_s`` is the jittered delay actually slept before the next
    attempt; ``remaining`` counts attempts still available afterwards.
    """

    type: str = "retry"
    restart: int = 0
    attempt: int = 0
    backoff_s: float = 0.0
    remaining: int = 0
    error: Optional[str] = None


@dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """A declarative fault from a fault plan fired.

    Emitted by whichever side observes the injection: delay/error faults
    report from the worker, kill/corrupt faults from the supervisor when
    their effects surface.  ``site``/``kind`` mirror the plan entry.
    """

    type: str = "fault"
    site: str = "worker_start"
    kind: str = "error"
    restart: int = 0
    attempt: int = 0


@dataclass(frozen=True)
class ResourceEvent(TraceEvent):
    """Per-task resource telemetry reported by a worker process.

    Emitted once per supervised restart task, right after the restart
    finishes computing: ``max_rss_kb`` is the process's peak resident
    set (``resource.getrusage`` units -- kilobytes on Linux), while
    ``user_cpu_s`` / ``sys_cpu_s`` are the CPU time *deltas* consumed by
    this task (pool processes are reused, so absolute totals would
    conflate consecutive tasks).
    """

    type: str = "resource"
    restart: int = 0
    attempt: int = 0
    max_rss_kb: float = 0.0
    user_cpu_s: float = 0.0
    sys_cpu_s: float = 0.0


#: Registry: the ``type`` discriminator of every domain event mapped to
#: its dataclass.  Trace *consumers* (:mod:`repro.obs.analysis`) use it
#: to tell domain events apart from tracer-internal record types
#: (``"span"``) and from unknown types emitted by newer producers.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    "iteration": IterationEvent,
    "action": ActionEvent,
    "seed": SeedEvent,
    "task": TaskEvent,
    "retry": RetryEvent,
    "fault": FaultEvent,
    "resource": ResourceEvent,
}


def event_fields(kind: str) -> List[str]:
    """Field names of the registered event type ``kind`` (sans ``type``).

    Raises ``KeyError`` for unregistered kinds -- the schema source of
    truth for consumers that validate records.
    """
    return [f.name for f in fields(EVENT_TYPES[kind]) if f.name != "type"]
