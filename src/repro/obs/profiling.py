"""Lightweight function profiling for the core numeric primitives.

``@profiled`` wraps a function with wall-clock + CPU-time accounting
that is dormant until :func:`enable_profiling` is called -- the disabled
cost is one module-flag check per call, cheap enough to leave on the
residue/action primitives permanently.  Unlike ``cProfile`` this tracks
only the decorated functions (the ones the Section 4.2 complexity
analysis is about) and therefore adds no interpreter-wide overhead.

Usage::

    from repro.obs import enable_profiling, profile_report

    enable_profiling()
    floc(matrix, k=10, rng=0)
    print(profile_report())

Profiling is orthogonal to tracing: it needs no tracer object, so a
quick "where does the time go" session is two lines.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, TypeVar, cast

#: Preserves the decorated function's exact signature through @profiled.
_F = TypeVar("_F", bound=Callable[..., object])

__all__ = [
    "profiled",
    "enable_profiling",
    "disable_profiling",
    "reset_profile",
    "profiling_enabled",
    "profile_snapshot",
    "profile_report",
]


class _ProfileStat:
    __slots__ = ("name", "calls", "wall_s", "cpu_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0

    def add(self, wall: float, cpu: float) -> None:
        self.calls += 1
        self.wall_s += wall
        self.cpu_s += cpu


_STATS: Dict[str, _ProfileStat] = {}
_ENABLED = False


def enable_profiling() -> None:
    """Start accounting calls of every ``@profiled`` function."""
    global _ENABLED
    _ENABLED = True


def disable_profiling() -> None:
    """Stop accounting; already-collected statistics are kept."""
    global _ENABLED
    _ENABLED = False


def profiling_enabled() -> bool:
    """Whether ``@profiled`` functions are currently being accounted."""
    return _ENABLED


def reset_profile() -> None:
    """Zero all accumulated statistics (registrations are kept)."""
    for stat in _STATS.values():
        stat.calls = 0
        stat.wall_s = 0.0
        stat.cpu_s = 0.0


def profiled(func: _F) -> _F:
    """Decorator: account wall/CPU time of ``func`` when profiling is on."""
    name = f"{func.__module__}.{func.__qualname__}"
    stat = _STATS.get(name)
    if stat is None:
        stat = _STATS[name] = _ProfileStat(name)

    @functools.wraps(func)
    def wrapper(*args: object, **kwargs: object) -> object:
        if not _ENABLED:
            return func(*args, **kwargs)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            return func(*args, **kwargs)
        finally:
            stat.add(
                time.perf_counter() - wall0, time.process_time() - cpu0
            )

    wrapper.__profile_stat__ = stat  # type: ignore[attr-defined]
    return cast("_F", wrapper)


def profile_snapshot() -> Dict[str, Dict[str, float]]:
    """Per-function totals: ``{name: {calls, wall_s, cpu_s, wall_us_per_call}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for name, stat in _STATS.items():
        if stat.calls == 0:
            continue
        out[name] = {
            "calls": stat.calls,
            "wall_s": stat.wall_s,
            "cpu_s": stat.cpu_s,
            "wall_us_per_call": 1e6 * stat.wall_s / stat.calls,
        }
    return out


def profile_report() -> str:
    """Rendered table of the snapshot, heaviest wall time first."""
    snapshot = profile_snapshot()
    if not snapshot:
        return "profile: no samples (is profiling enabled?)"
    headers = ["function", "calls", "wall_s", "cpu_s", "us/call"]
    rows: List[List[str]] = [
        [
            name,
            str(int(entry["calls"])),
            f"{entry['wall_s']:.4f}",
            f"{entry['cpu_s']:.4f}",
            f"{entry['wall_us_per_call']:.1f}",
        ]
        for name, entry in sorted(
            snapshot.items(), key=lambda item: -item[1]["wall_s"]
        )
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), rule] + [fmt(row) for row in rows])
