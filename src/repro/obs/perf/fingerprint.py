"""Environment fingerprint: where a benchmark document came from.

Timing numbers are meaningless without knowing what produced them.
:func:`environment_fingerprint` captures the minimum provenance a
``BENCH_*.json`` document needs to be interpreted later: interpreter
and numpy versions, platform, CPU count, and the git commit the tree
was at.  Everything is best-effort and side-effect free; a missing git
binary or a non-repo working directory degrades to ``None`` rather
than failing the bench run.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Dict, Optional

import numpy as np

__all__ = ["environment_fingerprint", "git_revision"]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current ``HEAD`` commit hash, or ``None`` outside a repo.

    A ``+dirty`` suffix marks uncommitted changes so a baseline recorded
    from a dirty tree is distinguishable from its commit.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        if sha.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
        revision = sha.stdout.strip()
        if status.returncode == 0 and status.stdout.strip():
            revision += "+dirty"
        return revision
    except (OSError, subprocess.SubprocessError):
        return None


def environment_fingerprint(cwd: Optional[str] = None) -> Dict[str, object]:
    """Provenance dict embedded in every bench document.

    Keys are stable (schema ``repro.bench/1``); values describe the
    machine and tree the numbers were measured on.  The fingerprint is
    informational -- ``repro bench compare`` reports fingerprint
    differences but never fails on them.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": str(np.__version__),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git": git_revision(cwd),
        "executable": sys.executable,
    }
