"""The work-counter cost model: deterministic counts of algorithmic work.

Wall-clock timing answers "how long did it take on this machine today";
the counters here answer "how much work was done" -- a machine- and
load-independent complement that is *bit-identical across runs at a
fixed seed*.  Each counter names one unit of the Section 4.2 complexity
analysis:

``residue_evals``
    Exact residue recomputations of a cluster submatrix: one per
    :meth:`~repro.core.floc._State.refresh_cluster` of a non-empty
    cluster and one per exact candidate evaluation.  The O(n*m) unit.
``cells_scanned``
    Specified cells whose residue contribution was computed, summed
    over every evaluation.  The finest-grained cost unit -- directly
    comparable to the paper's "matrix volume x k" scaling claim.
``toggle_evals``
    Candidate toggle evaluations of any mode: exact re-evaluations,
    per-cluster frozen-bases estimates, and the k per-cluster lanes of
    every vectorized batch call.
``batch_evals``
    Invocations of the vectorized fast-gain batch
    (:meth:`~repro.core.floc._State.candidate_parts_batch`) -- the unit
    the batched-gain engine is expected to trade ``toggle_evals`` into.
``toggles``
    Membership bits actually flipped (including best-prefix replay).
``sweeps``
    Phase-2 iterations executed.
``snapshots`` / ``restores``
    Full-state copies taken / rolled back by the per-iteration
    best-clustering bookkeeping.

Counting is strictly passive: every increment reuses a quantity the
algorithm already computed, no counter path reads a clock or an RNG,
and a run with counting enabled is bit-identical to one without
(enforced by the parity test in ``tests/test_perf_counters.py`` and by
lint rule DCL008, which bans wall-clock calls in this package).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["WorkCounters", "WORK_COUNTER_FIELDS"]

#: Field order is the schema: ``as_dict`` emits exactly these keys, and
#: the bench-document ``work`` sections are comparable field-for-field.
WORK_COUNTER_FIELDS: Tuple[str, ...] = (
    "residue_evals",
    "cells_scanned",
    "toggle_evals",
    "batch_evals",
    "toggles",
    "sweeps",
    "snapshots",
    "restores",
)


class WorkCounters:
    """Monotonic integer counters of algorithmic work (see module doc).

    Plain ``__slots__`` ints so hot-path increments are a single
    attribute add.  Instances are merged with :meth:`merge` (restart
    pooling), compared structurally, and serialized via :meth:`as_dict`
    in fixed field order.
    """

    __slots__ = WORK_COUNTER_FIELDS

    def __init__(self, **initial: int) -> None:
        unknown = set(initial) - set(WORK_COUNTER_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown work counter(s): {', '.join(sorted(unknown))}"
            )
        for name in WORK_COUNTER_FIELDS:
            setattr(self, name, int(initial.get(name, 0)))

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "WorkCounters") -> "WorkCounters":
        """Add ``other``'s counts into ``self``; returns ``self``."""
        for name in WORK_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def copy(self) -> "WorkCounters":
        return WorkCounters(**self.as_dict())

    # -- views ---------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        """Plain dict in schema field order (insertion-ordered)."""
        return {name: int(getattr(self, name)) for name in WORK_COUNTER_FIELDS}

    def total(self) -> int:
        """Sum of every counter -- a crude single-number work volume."""
        return sum(getattr(self, name) for name in WORK_COUNTER_FIELDS)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.as_dict().items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(tuple(self.as_dict().values()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in WORK_COUNTER_FIELDS
        )
        return f"WorkCounters({inner})"
