"""The work-counter cost model: deterministic counts of algorithmic work.

Wall-clock timing answers "how long did it take on this machine today";
the counters here answer "how much work was done" -- a machine- and
load-independent complement that is *bit-identical across runs at a
fixed seed*.  Each counter names one unit of the Section 4.2 complexity
analysis:

``residue_evals``
    Exact residue recomputations of a cluster submatrix: one per
    :meth:`~repro.core.floc._State.refresh_cluster` of a non-empty
    cluster, one per per-action exact candidate evaluation, and one
    per :class:`~repro.core.gain_engine.ExactContext` build (each
    context re-derives its cluster's residue from the sufficient
    statistics).  The O(n*m) unit.
``cells_scanned``
    Specified cells whose residue contribution was computed, summed
    over every evaluation: cluster volumes for full scans and context
    builds, the toggled line's specified-cell count per candidate
    elsewhere (a lane adds its candidates' line counts, so a block
    build adds only the selected slots').  The finest-grained cost
    unit -- directly comparable to the paper's "matrix volume x k"
    scaling claim.
``toggle_evals``
    Candidate toggle evaluations of any mode: per-slot scalar calls
    (``exact_one`` counts 1), per-cluster frozen-bases estimates, the
    k per-cluster lanes of every vectorized batch call, and the n_out
    candidates of every engine lane build (S for a full lane, the
    block size for a windowed rebuild).
``batch_evals``
    Vectorized candidate evaluations: one per
    :meth:`~repro.core.floc._State.candidate_parts_batch` call (all k
    clusters of one slot) and one per gain-engine lane build (all
    scored slots of one cluster).  The amortization unit: the more
    ``toggle_evals`` each ``batch_eval`` carries, the better batched.
``lane_builds``
    Sorted-residual lane constructions of the batched *exact* backend
    (:meth:`~repro.core.gain_engine.ResidueBackend.exact_lane`), full
    or block-windowed -- the O(volume log n) unit that replaced exact
    mode's per-candidate submatrix rescans.
``toggles``
    Membership bits actually flipped (including best-prefix replay).
``sweeps``
    Phase-2 iterations executed.
``snapshots`` / ``restores``
    Full-state copies taken / rolled back by the per-iteration
    best-clustering bookkeeping.

Counting is strictly passive: every increment reuses a quantity the
algorithm already computed, no counter path reads a clock or an RNG,
and a run with counting enabled is bit-identical to one without
(enforced by the parity test in ``tests/test_perf_counters.py`` and by
lint rule DCL008, which bans wall-clock calls in this package).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["WorkCounters", "WORK_COUNTER_FIELDS"]

#: Field order is the schema: ``as_dict`` emits exactly these keys, and
#: the bench-document ``work`` sections are comparable field-for-field.
WORK_COUNTER_FIELDS: Tuple[str, ...] = (
    "residue_evals",
    "cells_scanned",
    "toggle_evals",
    "batch_evals",
    "lane_builds",
    "toggles",
    "sweeps",
    "snapshots",
    "restores",
)


class WorkCounters:
    """Monotonic integer counters of algorithmic work (see module doc).

    Plain ``__slots__`` ints so hot-path increments are a single
    attribute add.  Instances are merged with :meth:`merge` (restart
    pooling), compared structurally, and serialized via :meth:`as_dict`
    in fixed field order.
    """

    __slots__ = WORK_COUNTER_FIELDS

    def __init__(self, **initial: int) -> None:
        unknown = set(initial) - set(WORK_COUNTER_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown work counter(s): {', '.join(sorted(unknown))}"
            )
        for name in WORK_COUNTER_FIELDS:
            setattr(self, name, int(initial.get(name, 0)))

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "WorkCounters") -> "WorkCounters":
        """Add ``other``'s counts into ``self``; returns ``self``."""
        for name in WORK_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def copy(self) -> "WorkCounters":
        return WorkCounters(**self.as_dict())

    # -- views ---------------------------------------------------------
    def as_dict(self) -> Dict[str, int]:
        """Plain dict in schema field order (insertion-ordered)."""
        return {name: int(getattr(self, name)) for name in WORK_COUNTER_FIELDS}

    def total(self) -> int:
        """Sum of every counter -- a crude single-number work volume."""
        return sum(getattr(self, name) for name in WORK_COUNTER_FIELDS)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.as_dict().items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkCounters):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(tuple(self.as_dict().values()))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in WORK_COUNTER_FIELDS
        )
        return f"WorkCounters({inner})"
