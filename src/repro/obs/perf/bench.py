"""The bench harness: run workloads, write documents, compare baselines.

One bench *document* (schema ``repro.bench/1``) captures a suite run:

.. code-block:: json

    {
      "schema": "repro.bench/1",
      "suite": "smoke",
      "environment": {"python": "...", "numpy": "...", "git": "..."},
      "timing": {"<workload>": {"best_time_s": 0.12, "times_s": [...]}},
      "work":   {"<workload>": {"residue_evals": 123, ...}},
      "details": {"<workload>": {...}}
    }

The sections separate the two kinds of evidence: ``timing`` is
machine-dependent best-of-N wall time, ``work`` is the deterministic
counter section -- bit-identical across runs at a fixed seed, so two
documents from the same code MUST have byte-identical ``work`` sections
and any drift is a real algorithmic change.  :func:`compare_documents`
enforces exactly that split: timing regressions are judged against a
loose relative tolerance, counter drift against an exact (default 0%)
one.

Wall time is read through an injected ``clock`` callable defaulting to
the tracer's clock seam; this module never calls ``time.*`` directly
(lint rule DCL008), which keeps every code path reachable from the
counters wall-clock-free and the documents reproducible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..tracer import Tracer
from .counters import WorkCounters
from .fingerprint import environment_fingerprint
from .workloads import Workload, iter_workloads

__all__ = [
    "BENCH_SCHEMA",
    "ComparisonResult",
    "compare_documents",
    "document_bytes",
    "load_document",
    "parse_tolerance",
    "record_path",
    "run_suite",
    "run_workload",
    "write_document",
]

BENCH_SCHEMA = "repro.bench/1"

Clock = Callable[[], float]
#: Default clock: the tracer's seam, the one wall-clock source the
#: observability stack is allowed (and tests can stub).
DEFAULT_CLOCK: Clock = Tracer.clock


def run_workload(
    workload: Workload,
    *,
    repeats: int = 3,
    clock: Clock = DEFAULT_CLOCK,
) -> Dict[str, object]:
    """Run one workload ``repeats`` times; best-of time, checked counters.

    Every repetition runs with a fresh :class:`WorkCounters`; the
    repetitions' counters must be identical (the determinism contract),
    otherwise this raises ``RuntimeError`` rather than emit an
    untrustworthy document.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    times: List[float] = []
    counter_dicts: List[Dict[str, int]] = []
    details: Dict[str, object] = {}
    for _ in range(repeats):
        work = WorkCounters()
        started = clock()
        details = workload.run(work)
        times.append(clock() - started)
        counter_dicts.append(work.as_dict())
    for rep, counters in enumerate(counter_dicts[1:], start=2):
        if counters != counter_dicts[0]:
            raise RuntimeError(
                f"workload {workload.name!r} is not deterministic: "
                f"repetition {rep} counted {counters}, "
                f"repetition 1 counted {counter_dicts[0]}"
            )
    return {
        "name": workload.name,
        "description": workload.description,
        "repeats": repeats,
        "best_time_s": min(times),
        "times_s": times,
        "work": counter_dicts[0],
        "details": details,
    }


def run_suite(
    suite: str,
    *,
    repeats: int = 3,
    clock: Clock = DEFAULT_CLOCK,
    cwd: Optional[str] = None,
) -> Dict[str, object]:
    """Run every workload of ``suite`` into one bench document."""
    workloads = list(iter_workloads(suite))
    if not workloads:
        raise ValueError(f"no workloads registered for suite {suite!r}")
    timing: Dict[str, object] = {}
    work: Dict[str, object] = {}
    details: Dict[str, object] = {}
    for workload in workloads:
        record = run_workload(workload, repeats=repeats, clock=clock)
        timing[workload.name] = {
            "best_time_s": record["best_time_s"],
            "times_s": record["times_s"],
            "repeats": record["repeats"],
        }
        work[workload.name] = record["work"]
        details[workload.name] = record["details"]
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "environment": environment_fingerprint(cwd),
        "timing": timing,
        "work": work,
        "details": details,
    }


# -- serialization -----------------------------------------------------

def document_bytes(document: Dict[str, object]) -> bytes:
    """Canonical bytes of a document (sorted keys, 2-space indent)."""
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode("utf-8")


def write_document(document: Dict[str, object], path: Union[str, Path]) -> Path:
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(document_bytes(document))
    return target


def record_path(results_dir: Union[str, Path], document: Dict[str, object]) -> Path:
    """Content-addressed per-run record path under ``results_dir``.

    Named by content digest instead of a timestamp so the perf package
    stays wall-clock-free (DCL008) and identical runs coalesce into one
    record instead of piling up duplicates.
    """
    digest = hashlib.sha256(document_bytes(document)).hexdigest()[:12]
    suite = document.get("suite", "suite")
    return Path(results_dir) / f"bench_{suite}_{digest}.json"


def load_document(path: Union[str, Path]) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: bench document must be a JSON object")
    schema = document.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    return document


# -- comparison / regression detection ---------------------------------

def parse_tolerance(text: Union[str, float, None]) -> Optional[float]:
    """Parse a tolerance flag: ``"20%"`` or ``"0.2"`` -> 0.2; ``"none"``
    (or ``"inf"``) -> ``None``, meaning the dimension is not gated."""
    if text is None:
        return None
    if isinstance(text, float):
        return text
    cleaned = text.strip().lower()
    if cleaned in ("none", "inf", "infinity", "off"):
        return None
    if cleaned.endswith("%"):
        value = float(cleaned[:-1]) / 100.0
    else:
        value = float(cleaned)
    if value < 0:
        raise ValueError(f"tolerance must be >= 0, got {text!r}")
    return value


@dataclass
class ComparisonResult:
    """Outcome of :func:`compare_documents`: report lines + verdict."""

    lines: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        return "\n".join(self.lines)


def _section(document: Dict[str, object], key: str) -> Dict[str, Dict[str, object]]:
    value = document.get(key, {})
    if not isinstance(value, dict):
        raise ValueError(f"bench document section {key!r} must be an object")
    return {str(k): dict(v) for k, v in value.items()}


def compare_documents(
    old: Dict[str, object],
    new: Dict[str, object],
    *,
    tol_time: Optional[float] = 0.2,
    tol_work: Optional[float] = 0.0,
) -> ComparisonResult:
    """Compare two bench documents; regressions populate ``regressions``.

    Timing fails only on slowdowns beyond ``tol_time`` (faster is never
    a regression).  Work counters fail on *any* relative drift beyond
    ``tol_work`` -- in either direction, because at the default exact
    tolerance a counter change is an algorithmic change that must be
    acknowledged by re-recording the baseline.  A ``None`` tolerance
    skips that dimension entirely.
    """
    result = ComparisonResult()
    old_work = _section(old, "work")
    new_work = _section(new, "work")
    old_timing = _section(old, "timing")
    new_timing = _section(new, "timing")

    removed = sorted(set(old_work) - set(new_work))
    added = sorted(set(new_work) - set(old_work))
    for name in removed:
        result.regressions.append(f"{name}: workload missing from new document")
    for name in added:
        result.lines.append(f"{name}: new workload (no baseline) -- skipped")

    for name in sorted(set(old_work) & set(new_work)):
        before = {k: int(v) for k, v in old_work[name].items()}  # type: ignore[arg-type]
        after = {k: int(v) for k, v in new_work[name].items()}  # type: ignore[arg-type]
        drifted: List[str] = []
        for counter in sorted(set(before) | set(after)):
            b = before.get(counter, 0)
            a = after.get(counter, 0)
            if b == a:
                continue
            delta = a - b
            rel = abs(delta) / b if b else float("inf")
            note = f"{counter}: {b} -> {a} ({delta:+d})"
            if tol_work is not None and rel > tol_work:
                drifted.append(note)
            else:
                result.lines.append(f"{name}: work {note} (within tolerance)")
        if drifted:
            result.regressions.append(
                f"{name}: work counters drifted -- " + "; ".join(drifted)
            )
        else:
            result.lines.append(f"{name}: work counters match")

        old_t = old_timing.get(name, {}).get("best_time_s")
        new_t = new_timing.get(name, {}).get("best_time_s")
        if isinstance(old_t, (int, float)) and isinstance(new_t, (int, float)):
            ratio = new_t / old_t if old_t else float("inf")
            line = (
                f"{name}: time {old_t * 1e3:.2f} ms -> {new_t * 1e3:.2f} ms "
                f"({(ratio - 1.0) * 100:+.1f}%)"
            )
            if tol_time is not None and ratio > 1.0 + tol_time:
                result.regressions.append(
                    line + f" exceeds +{tol_time * 100:.0f}% budget"
                )
            else:
                result.lines.append(line)

    old_env = old.get("environment")
    new_env = new.get("environment")
    if isinstance(old_env, dict) and isinstance(new_env, dict):
        for key in sorted(set(old_env) | set(new_env)):
            if old_env.get(key) != new_env.get(key):
                result.lines.append(
                    f"environment.{key}: {old_env.get(key)!r} -> "
                    f"{new_env.get(key)!r} (informational)"
                )
    for regression in result.regressions:
        result.lines.append(f"REGRESSION {regression}")
    return result
