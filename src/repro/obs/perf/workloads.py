"""Seed-pinned bench workloads behind a registry.

A *workload* is one deterministic unit of measurable FLOC work: it owns
its data generation (pinned seeds, no ambient entropy), runs with a
caller-supplied :class:`~repro.obs.perf.counters.WorkCounters`, and
returns a small dict of deterministic result details.  The bench
harness (:mod:`repro.obs.perf.bench`) times workloads and packages
counters + details + environment fingerprint into schema-versioned
documents; workloads themselves never read a clock (lint rule DCL008)
so their output is bit-identical across runs and machines.

The built-in workloads are grouped into *suites*:

``smoke``
    Seconds-scale runs of both gain modes plus a pooled mining
    session -- the CI perf gate (`.github/workflows/ci.yml` compares
    their counters against ``benchmarks/baselines/BENCH_smoke.json``).
``scaling``
    Cells of the Tables 2/3 response-time sweep, sharing
    :func:`scaling_cell_config` with ``benchmarks/bench_table2_3_scaling.py``
    so the pytest bench and the harness measure the same configuration.
``table23``
    The same Tables 2/3 cells in the *default* (exact) gain mode -- the
    batched-gain-engine acceptance suite.  CI compares it against
    ``benchmarks/baselines/BENCH_table23.json`` so the engine's exact-mode
    speedup is gated alongside smoke.
``primitives``
    Fixed-repetition loops over the core per-operation primitives,
    sharing :func:`make_primitives_payload` with
    ``benchmarks/bench_primitives.py``.

Third parties (including the ``benchmarks/bench_*.py`` files) register
additional workloads with :func:`register_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from .counters import WorkCounters

if TYPE_CHECKING:  # runtime imports stay lazy: core imports this package
    from ...core.floc import _State
    from ...eval.experiment import ExperimentConfig

__all__ = [
    "Workload",
    "get_workload",
    "iter_workloads",
    "make_primitives_payload",
    "register_workload",
    "scaling_cell_config",
    "suite_names",
    "workload_names",
]

#: A runner receives the counter object to count into and returns a
#: dict of deterministic result details (no wall-clock values).
Runner = Callable[[WorkCounters], Dict[str, object]]


@dataclass(frozen=True)
class Workload:
    """One registered bench workload (see module docstring)."""

    name: str
    description: str
    suites: Tuple[str, ...]
    runner: Runner

    def run(self, work: WorkCounters) -> Dict[str, object]:
        return self.runner(work)


_REGISTRY: Dict[str, Workload] = {}


def register_workload(
    name: str,
    description: str,
    suites: Tuple[str, ...],
    runner: Runner,
) -> Workload:
    """Register a workload; re-registering a name replaces it."""
    if not name:
        raise ValueError("workload name must be non-empty")
    if not suites:
        raise ValueError(f"workload {name!r} must belong to >= 1 suite")
    workload = Workload(
        name=name, description=description, suites=tuple(suites), runner=runner
    )
    _REGISTRY[name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown workload {name!r}; registered: {known}") from None


def iter_workloads(suite: Optional[str] = None) -> Iterator[Workload]:
    """Registered workloads in name order, optionally one suite's."""
    for name in sorted(_REGISTRY):
        workload = _REGISTRY[name]
        if suite is None or suite in workload.suites:
            yield workload


def workload_names(suite: Optional[str] = None) -> List[str]:
    return [w.name for w in iter_workloads(suite)]


def suite_names() -> List[str]:
    names = {suite for w in _REGISTRY.values() for suite in w.suites}
    return sorted(names)


# -- shared payload / config builders ----------------------------------
# These are the single source of truth for the configurations that the
# pytest benches under benchmarks/ measure, so `repro bench` and the
# pytest path exercise identical work.

def make_primitives_payload(
    work: Optional[WorkCounters] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, "_State"]:
    """The 600x80 primitives payload (10% missing, 16 bernoulli seeds).

    Returns ``(values, row_member, col_member, state)`` -- exactly the
    fixture of ``benchmarks/bench_primitives.py``, with the state
    counting into ``work`` when given.
    """
    from ...core.floc import _State
    from ...core.seeding import bernoulli_seeds

    rng = np.random.default_rng(0)
    values = rng.normal(size=(600, 80))
    values[rng.random((600, 80)) < 0.1] = np.nan
    mask = ~np.isnan(values)
    seeds = bernoulli_seeds(600, 80, 16, 0.15, rng)
    state = _State(values, mask, seeds, fast=True, work=work)
    row_member = np.zeros(600, dtype=bool)
    row_member[:120] = True
    col_member = np.zeros(80, dtype=bool)
    col_member[:16] = True
    return values, row_member, col_member, state


def scaling_cell_config(n_rows: int, n_cols: int, k: int) -> "ExperimentConfig":
    """The Tables 2/3 sweep-cell config (one cell of the paper's grid).

    Shared with ``benchmarks/bench_table2_3_scaling.py`` so the scaling
    bench and the ``scaling`` suite measure the same configuration.
    """
    from ...core.constraints import Constraints
    from ...eval.experiment import ExperimentConfig

    return ExperimentConfig(
        n_rows=n_rows,
        n_cols=n_cols,
        n_embedded=12,
        embedded_mean_volume=0.004 * n_rows * n_cols,
        embedded_aspect=1.5,
        noise=3.0,
        k=k,
        p=(0.05 + 0.2) / 2,  # paper: 0.05*N rows, 0.2*M cols
        ordering="weighted",
        gain_mode="fast",
        residue_target_factor=2.0,
        constraints=Constraints(min_rows=3, min_cols=3),
        max_iterations=40,
    )


# -- built-in workloads ------------------------------------------------

def _smoke_floc(gain_mode: str) -> Runner:
    def run(work: WorkCounters) -> Dict[str, object]:
        from ...core.floc import floc
        from ...data.synthetic import generate_embedded

        dataset = generate_embedded(
            90, 18, 2, cluster_shape=(14, 7), noise=1.0, rng=0
        )
        result = floc(
            dataset.matrix, 4,
            gain_mode=gain_mode,
            residue_target=2.0,
            max_iterations=12,
            rng=7,
            work=work,
        )
        return {
            "gain_mode": gain_mode,
            "n_iterations": result.n_iterations,
            "n_actions": result.n_actions,
            "converged": result.converged,
            "average_residue": round(result.average_residue, 12),
            "total_volume": result.clustering.total_volume(),
        }

    return run


def _smoke_mining(work: WorkCounters) -> Dict[str, object]:
    from ...core.mining import pool_mining_results, run_restart
    from ...data.synthetic import generate_embedded

    dataset = generate_embedded(
        100, 20, 3, cluster_shape=(15, 8), noise=1.0, rng=1
    )
    runs = [
        run_restart(
            dataset.matrix, restart,
            residue_target=2.0,
            root_seed=11,
            k=4,
            reseed_rounds=2,
            max_iterations=10,
            work=work,
        )
        for restart in range(3)
    ]
    pooled = pool_mining_results(
        dataset.matrix, runs, residue_target=2.0, min_volume=16
    )
    return {
        "n_restarts": len(runs),
        "n_pooled": pooled.n_pooled,
        "n_clusters": len(pooled.clustering.clusters),
        "total_volume": pooled.clustering.total_volume(),
    }


def _scaling_cell(
    n_rows: int, n_cols: int, k: int, gain_mode: Optional[str] = None
) -> Runner:
    def run(work: WorkCounters) -> Dict[str, object]:
        from ...eval.experiment import run_trial

        config = scaling_cell_config(n_rows, n_cols, k)
        if gain_mode is not None:
            config = config.with_overrides(gain_mode=gain_mode)
        trial = run_trial(config, rng=1, work=work)
        return {
            "size": f"{n_rows}x{n_cols}",
            "k": k,
            "gain_mode": config.gain_mode,
            "n_iterations": trial.n_iterations,
            "recall": round(trial.recall, 12),
            "precision": round(trial.precision, 12),
            "total_volume": trial.total_volume,
        }

    return run


def _primitives_residue_scan(work: WorkCounters) -> Dict[str, object]:
    _, _, _, state = make_primitives_payload(work=work)
    reps = 50
    for _ in range(reps):
        state.refresh_cluster(0)
    return {"reps": reps, "volume": int(state.volumes[0])}


def _primitives_fast_batch(work: WorkCounters) -> Dict[str, object]:
    _, _, _, state = make_primitives_payload(work=work)
    reps = 200
    checksum = 0.0
    for _ in range(reps):
        new_res, _, _, _, _ = state.candidate_parts_batch("row", 400)
        checksum += float(new_res.sum())
    return {"reps": reps, "checksum": round(checksum, 9)}


def _primitives_exact_lane(work: WorkCounters) -> Dict[str, object]:
    from ...core.gain_engine import ResidueBackend

    _, _, _, state = make_primitives_payload(work=work)
    backend = ResidueBackend()
    reps = 50
    checksum = 0.0
    for _ in range(reps):
        lane = backend.exact_lane(state, "row", 0)
        checksum += float(lane.new_residues.sum())
    return {"reps": reps, "width": 600, "checksum": round(checksum, 9)}


def _primitives_exact_lane_block(work: WorkCounters) -> Dict[str, object]:
    from ...core.gain_engine import _BLOCK, ResidueBackend

    _, _, _, state = make_primitives_payload(work=work)
    backend = ResidueBackend()
    reps = 50
    checksum = 0.0
    for rep in range(reps):
        # One context amortized over the sweep's block rebuilds -- the
        # shape _resync_block drives during a real Phase 2 iteration.
        ctx = backend.exact_context(state, "row", 0)
        for start in range(0, 600, _BLOCK):
            sel = np.arange(start, min(start + _BLOCK, 600), dtype=np.intp)
            lane = backend.exact_lane(state, "row", 0, sel=sel, ctx=ctx)
            checksum += float(lane.new_residues.sum())
    return {"reps": reps, "block": _BLOCK, "checksum": round(checksum, 9)}


def _primitives_estimate_lane(work: WorkCounters) -> Dict[str, object]:
    from ...core.gain_engine import ResidueBackend

    _, _, _, state = make_primitives_payload(work=work)
    backend = ResidueBackend()
    reps = 200
    checksum = 0.0
    for _ in range(reps):
        lane = backend.estimate_lane(state, "row", 0)
        checksum += float(lane.new_residues.sum())
    return {"reps": reps, "checksum": round(checksum, 9)}


register_workload(
    "smoke_floc_exact",
    "Single FLOC run, exact gain mode, 90x18 embedded workload",
    ("smoke",),
    _smoke_floc("exact"),
)
register_workload(
    "smoke_floc_fast",
    "Single FLOC run, fast gain mode, 90x18 embedded workload",
    ("smoke",),
    _smoke_floc("fast"),
)
register_workload(
    "smoke_mining",
    "3-restart mining session with pooling, 100x20 embedded workload",
    ("smoke",),
    _smoke_mining,
)
register_workload(
    "scaling_100x20_k6",
    "Tables 2/3 sweep cell: 100x20 matrix, k=6",
    ("scaling",),
    _scaling_cell(100, 20, 6),
)
register_workload(
    "scaling_250x30_k12",
    "Tables 2/3 sweep cell: 250x30 matrix, k=12",
    ("scaling",),
    _scaling_cell(250, 30, 12),
)
register_workload(
    "table23_100x20_k6_exact",
    "Tables 2/3 cell in default (exact) gain mode: 100x20 matrix, k=6",
    ("table23",),
    _scaling_cell(100, 20, 6, gain_mode="exact"),
)
register_workload(
    "table23_250x30_k12_exact",
    "Tables 2/3 cell in default (exact) gain mode: 250x30 matrix, k=12",
    ("table23",),
    _scaling_cell(250, 30, 12, gain_mode="exact"),
)
register_workload(
    "table23_500x40_k12_exact",
    "Tables 2/3 cell in default (exact) gain mode: 500x40 matrix, k=12",
    ("table23",),
    _scaling_cell(500, 40, 12, gain_mode="exact"),
)
register_workload(
    "table23_750x50_k10_exact",
    "Tables 2/3 cell in default (exact) gain mode: 750x50 matrix, k=10",
    ("table23",),
    _scaling_cell(750, 50, 10, gain_mode="exact"),
)
register_workload(
    "primitives_residue_scan",
    "50 repetitions of the exact cluster residue refresh (600x80 state)",
    ("primitives",),
    _primitives_residue_scan,
)
register_workload(
    "primitives_fast_batch",
    "200 repetitions of the 16-cluster vectorized fast-gain batch",
    ("primitives",),
    _primitives_fast_batch,
)
register_workload(
    "primitives_exact_lane",
    "50 full exact-lane builds (600 row toggles batched per call)",
    ("primitives",),
    _primitives_exact_lane,
)
register_workload(
    "primitives_exact_lane_block",
    "50 sweeps of context-shared 128-slot block exact-lane builds",
    ("primitives",),
    _primitives_exact_lane_block,
)
register_workload(
    "primitives_estimate_lane",
    "200 frozen-bases estimate-lane builds (fast-mode engine path)",
    ("primitives",),
    _primitives_estimate_lane,
)
