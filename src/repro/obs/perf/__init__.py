"""Performance observability: work counters, bench harness, baselines.

Three layers, bottom up:

* :mod:`~repro.obs.perf.counters` -- the deterministic work-counter
  cost model (:class:`WorkCounters`) the core algorithm counts into;
* :mod:`~repro.obs.perf.workloads` -- seed-pinned bench workloads
  behind a registry, grouped into suites;
* :mod:`~repro.obs.perf.bench` -- the harness that times workloads,
  emits schema-versioned ``BENCH_<suite>.json`` documents, and compares
  them for regressions (``repro bench run/list/compare``).

The whole package is wall-clock-free by construction: lint rule DCL008
bans ``time.*`` calls here, and the one timing need (the harness's
best-of-N wall time) goes through the tracer's injectable clock seam.

``workloads`` and ``bench`` import the core lazily and are therefore
not re-exported here -- import them as submodules
(``from repro.obs.perf import bench``); the dependency-free counter and
fingerprint primitives are re-exported for convenience.
"""

from .counters import WORK_COUNTER_FIELDS, WorkCounters
from .fingerprint import environment_fingerprint, git_revision

__all__ = [
    "WORK_COUNTER_FIELDS",
    "WorkCounters",
    "environment_fingerprint",
    "git_revision",
]
