"""Trace analytics: typed aggregates over recorded FLOC event streams.

PR 1 taught FLOC to *emit* structured traces (``SeedEvent`` /
``ActionEvent`` / ``IterationEvent`` streams, see
:mod:`repro.obs.events`); this module is the consumption side.  It
parses a recorded trace -- a list of flat record dicts, typically from
:func:`repro.obs.sinks.read_jsonl` -- into typed aggregates:

* per **sweep** (one Phase-2 iteration): action counts split by
  kind/direction, gain sums, membership churn (admissions vs
  evictions), residue/score/volume straight off the ``iteration``
  event, and a wall-time breakdown by span name when the trace was
  recorded with ``emit_spans=True``;
* per **cluster**: seed/reseed counts, action totals, gain sums, and
  the last residue/volume the stream reported;
* per **slot** ``(kind, cluster)``: the gain distribution of every
  action that hit the slot, with a shared-edge histogram so slots are
  comparable -- the input the ROADMAP's adaptive-ordering work needs;
* per **session** (one ``restart``/``trial`` context): the residue
  trajectory and sweep list, so one multi-restart JSONL file analyzes
  into separable runs.

Everything here is pure and deterministic: the same trace produces the
same :meth:`TraceAnalysis.to_dict` -- byte-identical once serialized
with ``json.dumps(..., sort_keys=True)`` -- because no wall clock, RNG,
or environment is consulted.  Consistency between the action stream and
the ``iteration`` events (``n_actions`` must equal the actions observed
in the sweep) is *checked*, not assumed; mismatches (e.g. a ring-buffer
capture that dropped old records) surface in ``warnings``.

:func:`diff_traces` aligns the ``iteration`` events of two twinned
sessions -- same seed, same workload, one knob changed (canonically
``gain_mode="exact"`` vs ``"fast"``) -- and quantifies where they
diverge: per-iteration residue/score/volume deltas plus summary
statistics.  This is the exact-vs-frozen-bases gain audit the ROADMAP
calls for.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .events import EVENT_TYPES
from .sinks import read_jsonl

__all__ = [
    "DEFAULT_STRAGGLER_FACTOR",
    "GainHistogram",
    "SlotStats",
    "ClusterStats",
    "SweepStats",
    "SessionAnalysis",
    "TaskRun",
    "WaveStats",
    "ProcessStats",
    "ResourceStats",
    "TraceAnalysis",
    "IterationDelta",
    "TraceDiff",
    "analyze_records",
    "analyze_trace",
    "diff_traces",
]

Record = Dict[str, object]

#: Context keys outer layers push onto the tracer; together they
#: identify one FLOC run inside a shared multi-run trace.  ``attempt``
#: joins for merged session traces: a retried restart's attempts are
#: distinct executions and must analyze as separate sessions (their
#: sweep streams would otherwise interleave into nonsense).
_SESSION_KEYS: Tuple[str, ...] = ("trial", "restart", "attempt")

#: Default straggler threshold: a completed task is flagged when its
#: elapsed time exceeds this multiple of its wave's median.
DEFAULT_STRAGGLER_FACTOR = 2.0

#: Number of buckets in the shared-edge gain histograms.
_GAIN_BINS = 8


def _as_float(value: object, default: float = 0.0) -> float:
    if isinstance(value, bool):
        return default
    if isinstance(value, (int, float)):
        return float(value)
    return default


def _as_int(value: object, default: int = 0) -> int:
    if isinstance(value, bool):
        return default
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    return default


@dataclass
class GainHistogram:
    """Bucketed gain counts; ``edges`` has ``len(counts) + 1`` entries."""

    edges: List[float]
    counts: List[int]

    def to_dict(self) -> Dict[str, object]:
        return {"edges": list(self.edges), "counts": list(self.counts)}


def _histogram(values: Sequence[float], lo: float, hi: float) -> GainHistogram:
    """Fixed-edge histogram over ``[lo, hi]`` with ``_GAIN_BINS`` buckets.

    Pure-python binning (no numpy) so the result is platform-stable and
    trivially deterministic.  Degenerate ranges collapse to one bucket.
    """
    if not values or hi <= lo:
        edges = [lo, hi if hi > lo else lo]
        return GainHistogram(edges=edges, counts=[len(values)])
    width = (hi - lo) / _GAIN_BINS
    counts = [0] * _GAIN_BINS
    for value in values:
        index = int((value - lo) / width)
        if index >= _GAIN_BINS:
            index = _GAIN_BINS - 1
        elif index < 0:
            index = 0
        counts[index] += 1
    edges = [lo + i * width for i in range(_GAIN_BINS)] + [hi]
    return GainHistogram(edges=edges, counts=counts)


@dataclass
class SlotStats:
    """Gain telemetry for one ``(kind, cluster)`` action slot."""

    kind: str
    cluster: int
    actions: int = 0
    admissions: int = 0
    evictions: int = 0
    gain_sum: float = 0.0
    gain_min: float = 0.0
    gain_max: float = 0.0
    histogram: Optional[GainHistogram] = None

    @property
    def gain_mean(self) -> float:
        return self.gain_sum / self.actions if self.actions else 0.0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "cluster": self.cluster,
            "actions": self.actions,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "gain_sum": self.gain_sum,
            "gain_mean": self.gain_mean,
            "gain_min": self.gain_min,
            "gain_max": self.gain_max,
        }
        if self.histogram is not None:
            out["histogram"] = self.histogram.to_dict()
        return out


@dataclass
class ClusterStats:
    """Lifetime view of one cluster slot across the whole trace."""

    cluster: int
    seeds: int = 0
    reseeds: int = 0
    actions: int = 0
    admissions: int = 0
    evictions: int = 0
    gain_sum: float = 0.0
    last_residue: Optional[float] = None
    last_volume: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "cluster": self.cluster,
            "seeds": self.seeds,
            "reseeds": self.reseeds,
            "actions": self.actions,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "gain_sum": self.gain_sum,
            "last_residue": self.last_residue,
            "last_volume": self.last_volume,
        }


@dataclass
class SweepStats:
    """One Phase-2 sweep: the ``iteration`` event plus its action stream.

    The event-sourced fields (``residue`` ... ``elapsed_s``) are copied
    verbatim from the ``iteration`` record; the derived fields are
    recomputed from the ``action`` records observed since the previous
    sweep.  ``actions_observed`` equalling ``n_actions`` is the
    stream-consistency contract :func:`analyze_records` checks.
    """

    index: int
    residue: float
    score: float
    total_volume: int
    n_actions: int
    improved: bool
    elapsed_s: float
    actions_observed: int = 0
    admissions: int = 0
    evictions: int = 0
    row_actions: int = 0
    col_actions: int = 0
    gain_sum: float = 0.0
    clusters_touched: int = 0
    span_s: Dict[str, float] = field(default_factory=dict)

    @property
    def churn(self) -> int:
        """Membership toggles this sweep (admissions + evictions)."""
        return self.admissions + self.evictions

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "index": self.index,
            "residue": self.residue,
            "score": self.score,
            "total_volume": self.total_volume,
            "n_actions": self.n_actions,
            "improved": self.improved,
            "elapsed_s": self.elapsed_s,
            "actions_observed": self.actions_observed,
            "admissions": self.admissions,
            "evictions": self.evictions,
            "row_actions": self.row_actions,
            "col_actions": self.col_actions,
            "gain_sum": self.gain_sum,
            "clusters_touched": self.clusters_touched,
        }
        if self.span_s:
            out["span_s"] = dict(self.span_s)
        return out


@dataclass
class SessionAnalysis:
    """One run's slice of the trace (one ``restart``/``trial`` context)."""

    key: Dict[str, object]
    sweeps: List[SweepStats] = field(default_factory=list)
    dangling_actions: int = 0

    @property
    def residue_trajectory(self) -> List[float]:
        return [sweep.residue for sweep in self.sweeps]

    @property
    def n_actions(self) -> int:
        return sum(sweep.actions_observed for sweep in self.sweeps)

    @property
    def improved_sweeps(self) -> int:
        return sum(1 for sweep in self.sweeps if sweep.improved)

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": dict(self.key),
            "sweeps": [sweep.to_dict() for sweep in self.sweeps],
            "residue_trajectory": self.residue_trajectory,
            "n_actions": self.n_actions,
            "improved_sweeps": self.improved_sweeps,
            "dangling_actions": self.dangling_actions,
        }


@dataclass
class TaskRun:
    """One terminal supervised-task attempt (completed or failed)."""

    restart: int
    attempt: int
    wave: int
    status: str
    elapsed_s: float
    error: Optional[str] = None
    is_straggler: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "restart": self.restart,
            "attempt": self.attempt,
            "wave": self.wave,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
            "is_straggler": self.is_straggler,
        }


@dataclass
class WaveStats:
    """Timeline entry for one supervisor wave."""

    index: int
    completed: int = 0
    failed: int = 0
    retries: int = 0
    faults: int = 0
    median_elapsed_s: float = 0.0
    max_elapsed_s: float = 0.0
    stragglers: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "faults": self.faults,
            "median_elapsed_s": self.median_elapsed_s,
            "max_elapsed_s": self.max_elapsed_s,
            "stragglers": self.stragglers,
        }


@dataclass
class ProcessStats:
    """Per-process aggregate of a merged session trace.

    Only populated when records carry a ``process`` key (i.e. the trace
    came through :func:`repro.obs.session.collect_session`); plain
    single-process traces leave the list empty.
    """

    name: str
    n_records: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    span_s: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n_records": self.n_records,
            "event_counts": dict(self.event_counts),
            "span_s": dict(self.span_s),
        }


@dataclass
class ResourceStats:
    """One worker's rusage report (``resource`` event)."""

    restart: int
    attempt: int
    max_rss_kb: float
    user_cpu_s: float
    sys_cpu_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "restart": self.restart,
            "attempt": self.attempt,
            "max_rss_kb": self.max_rss_kb,
            "user_cpu_s": self.user_cpu_s,
            "sys_cpu_s": self.sys_cpu_s,
        }


@dataclass
class TraceAnalysis:
    """The full typed aggregate of one trace; see the module docstring."""

    n_records: int
    event_counts: Dict[str, int]
    sessions: List[SessionAnalysis]
    clusters: List[ClusterStats]
    slots: List[SlotStats]
    spans: Dict[str, Dict[str, float]]
    warnings: List[str]
    tasks: List[TaskRun] = field(default_factory=list)
    waves: List[WaveStats] = field(default_factory=list)
    resources: List[ResourceStats] = field(default_factory=list)
    processes: List[ProcessStats] = field(default_factory=list)

    @property
    def n_sweeps(self) -> int:
        return sum(len(session.sweeps) for session in self.sessions)

    @property
    def n_actions(self) -> int:
        return self.event_counts.get("action", 0)

    @property
    def stragglers(self) -> List[TaskRun]:
        """Completed tasks that overshot their wave's straggler bound."""
        return [task for task in self.tasks if task.is_straggler]

    def to_dict(self) -> Dict[str, object]:
        """Plain nested dict; serialize with ``sort_keys=True`` for a
        byte-stable artifact (same trace -> same bytes)."""
        return {
            "schema": 1,
            "n_records": self.n_records,
            "event_counts": dict(self.event_counts),
            "sessions": [session.to_dict() for session in self.sessions],
            "clusters": [cluster.to_dict() for cluster in self.clusters],
            "slots": [slot.to_dict() for slot in self.slots],
            "spans": {name: dict(agg) for name, agg in self.spans.items()},
            "warnings": list(self.warnings),
            "tasks": [task.to_dict() for task in self.tasks],
            "waves": [wave.to_dict() for wave in self.waves],
            "stragglers": [task.to_dict() for task in self.stragglers],
            "resources": [res.to_dict() for res in self.resources],
            "processes": [proc.to_dict() for proc in self.processes],
        }


def _session_key(record: Record) -> Tuple[object, ...]:
    return tuple(record.get(key) for key in _SESSION_KEYS)


def _key_dict(key: Tuple[object, ...]) -> Dict[str, object]:
    return {
        name: value
        for name, value in zip(_SESSION_KEYS, key)
        if value is not None
    }


def _sort_token(value: object) -> Tuple[int, float, str]:
    """Total order over heterogeneous session-key components."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def analyze_records(
    records: Sequence[Record],
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> TraceAnalysis:
    """Aggregate an in-memory record stream into a :class:`TraceAnalysis`.

    The stream is consumed in order: ``action`` (and emitted ``span``)
    records accumulate per session until the session's next
    ``iteration`` record closes the sweep.  Actions after the final
    ``iteration`` of a session (an interrupted run) are reported as
    ``dangling_actions`` rather than dropped silently.

    Supervised-runtime streams additionally aggregate into a wave
    timeline (:class:`WaveStats`), terminal task attempts
    (:class:`TaskRun`) with straggler flagging -- a completed task whose
    elapsed time exceeds ``straggler_factor`` times its wave's median,
    over waves with at least two completions -- worker resource reports
    (:class:`ResourceStats`), and, for merged session traces, per-process
    record/span aggregates (:class:`ProcessStats`).
    """
    known_types = set(EVENT_TYPES) | {"span", "trace_meta", "session_meta"}
    event_counts: Dict[str, int] = {}
    sessions: Dict[Tuple[object, ...], SessionAnalysis] = {}
    pending_actions: Dict[Tuple[object, ...], List[Record]] = {}
    pending_spans: Dict[Tuple[object, ...], Dict[str, float]] = {}
    clusters: Dict[int, ClusterStats] = {}
    slots: Dict[Tuple[str, int], SlotStats] = {}
    slot_gains: Dict[Tuple[str, int], List[float]] = {}
    span_agg: Dict[str, Dict[str, float]] = {}
    warnings: List[str] = []
    tasks: List[TaskRun] = []
    wave_retries: Dict[int, int] = {}
    wave_faults: Dict[int, int] = {}
    resources: List[ResourceStats] = []
    process_stats: Dict[str, ProcessStats] = {}

    def session(key: Tuple[object, ...]) -> SessionAnalysis:
        found = sessions.get(key)
        if found is None:
            found = sessions[key] = SessionAnalysis(key=_key_dict(key))
        return found

    for record in records:
        kind = record.get("type")
        if not isinstance(kind, str):
            warnings.append(f"record without a string 'type' key: {record!r}")
            continue
        event_counts[kind] = event_counts.get(kind, 0) + 1
        process = record.get("process")
        if isinstance(process, str):
            proc = process_stats.get(process)
            if proc is None:
                proc = process_stats[process] = ProcessStats(name=process)
            proc.n_records += 1
            proc.event_counts[kind] = proc.event_counts.get(kind, 0) + 1
            if kind == "span":
                span_name = str(record.get("name", ""))
                proc.span_s[span_name] = (
                    proc.span_s.get(span_name, 0.0)
                    + _as_float(record.get("elapsed_s"))
                )
        key = _session_key(record)
        session(key)

        if kind == "action":
            pending_actions.setdefault(key, []).append(record)
            cluster_id = _as_int(record.get("cluster"))
            gain = _as_float(record.get("gain"))
            action_kind = str(record.get("kind", "row"))
            is_removal = bool(record.get("is_removal", False))

            cluster = clusters.get(cluster_id)
            if cluster is None:
                cluster = clusters[cluster_id] = ClusterStats(cluster=cluster_id)
            cluster.actions += 1
            cluster.gain_sum += gain
            if is_removal:
                cluster.evictions += 1
            else:
                cluster.admissions += 1
            cluster.last_residue = _as_float(record.get("residue"))
            cluster.last_volume = _as_int(record.get("volume"))

            slot_key = (action_kind, cluster_id)
            slot = slots.get(slot_key)
            if slot is None:
                slot = slots[slot_key] = SlotStats(
                    kind=action_kind, cluster=cluster_id
                )
                slot_gains[slot_key] = []
            slot.actions += 1
            slot.gain_sum += gain
            if is_removal:
                slot.evictions += 1
            else:
                slot.admissions += 1
            gains = slot_gains[slot_key]
            if not gains:
                slot.gain_min = gain
                slot.gain_max = gain
            else:
                slot.gain_min = min(slot.gain_min, gain)
                slot.gain_max = max(slot.gain_max, gain)
            gains.append(gain)

        elif kind == "seed":
            cluster_id = _as_int(record.get("cluster"))
            cluster = clusters.get(cluster_id)
            if cluster is None:
                cluster = clusters[cluster_id] = ClusterStats(cluster=cluster_id)
            if record.get("origin") == "reseed":
                cluster.reseeds += 1
            else:
                cluster.seeds += 1
            residue = record.get("residue")
            if residue is not None:
                cluster.last_residue = _as_float(residue)
            volume = record.get("volume")
            if volume is not None:
                cluster.last_volume = _as_int(volume)

        elif kind == "span":
            name = str(record.get("name", ""))
            elapsed = _as_float(record.get("elapsed_s"))
            agg = span_agg.get(name)
            if agg is None:
                span_agg[name] = {"count": 1.0, "total_s": elapsed}
            else:
                agg["count"] += 1.0
                agg["total_s"] += elapsed
            pending = pending_spans.setdefault(key, {})
            pending[name] = pending.get(name, 0.0) + elapsed

        elif kind == "iteration":
            actions = pending_actions.pop(key, [])
            sweep = SweepStats(
                index=_as_int(record.get("index")),
                residue=_as_float(record.get("residue")),
                score=_as_float(record.get("score")),
                total_volume=_as_int(record.get("total_volume")),
                n_actions=_as_int(record.get("n_actions")),
                improved=bool(record.get("improved", False)),
                elapsed_s=_as_float(record.get("elapsed_s")),
                span_s=pending_spans.pop(key, {}),
            )
            touched = set()
            for action in actions:
                sweep.actions_observed += 1
                sweep.gain_sum += _as_float(action.get("gain"))
                touched.add(_as_int(action.get("cluster")))
                if bool(action.get("is_removal", False)):
                    sweep.evictions += 1
                else:
                    sweep.admissions += 1
                if str(action.get("kind", "row")) == "row":
                    sweep.row_actions += 1
                else:
                    sweep.col_actions += 1
            sweep.clusters_touched = len(touched)
            if sweep.actions_observed != sweep.n_actions:
                warnings.append(
                    f"sweep {sweep.index} ({_key_dict(key) or 'no context'}): "
                    f"iteration event reports n_actions={sweep.n_actions} but "
                    f"{sweep.actions_observed} action record(s) observed "
                    "(truncated or partial capture?)"
                )
            session(key).sweeps.append(sweep)

        elif kind == "task":
            status = str(record.get("status", ""))
            if status in ("completed", "failed"):
                error = record.get("error")
                tasks.append(TaskRun(
                    restart=_as_int(record.get("restart")),
                    attempt=_as_int(record.get("attempt")),
                    wave=_as_int(record.get("wave"), default=-1),
                    status=status,
                    elapsed_s=_as_float(record.get("elapsed_s")),
                    error=None if error is None else str(error),
                ))

        elif kind == "retry":
            wave = _as_int(record.get("wave"), default=-1)
            wave_retries[wave] = wave_retries.get(wave, 0) + 1

        elif kind == "fault":
            wave = _as_int(record.get("wave"), default=-1)
            wave_faults[wave] = wave_faults.get(wave, 0) + 1

        elif kind == "resource":
            resources.append(ResourceStats(
                restart=_as_int(record.get("restart")),
                attempt=_as_int(record.get("attempt")),
                max_rss_kb=_as_float(record.get("max_rss_kb")),
                user_cpu_s=_as_float(record.get("user_cpu_s")),
                sys_cpu_s=_as_float(record.get("sys_cpu_s")),
            ))

        elif kind not in known_types:
            # Unknown event types are counted but otherwise ignored, so
            # traces from newer emitters still analyze.
            pass

    for key, actions in sorted(
        pending_actions.items(),
        key=lambda item: tuple(_sort_token(part) for part in item[0]),
    ):
        if actions:
            session(key).dangling_actions = len(actions)
            warnings.append(
                f"{len(actions)} action record(s) after the last iteration "
                f"event ({_key_dict(key) or 'no context'}): interrupted run?"
            )

    # Shared-edge histograms across every slot so they are comparable.
    all_gains = [gain for gains in slot_gains.values() for gain in gains]
    if all_gains:
        lo, hi = min(all_gains), max(all_gains)
        for slot_key, slot in slots.items():
            slot.histogram = _histogram(slot_gains[slot_key], lo, hi)

    ordered_sessions = [
        sessions[key]
        for key in sorted(
            sessions,
            key=lambda k: tuple(_sort_token(part) for part in k),
        )
    ]
    ordered_clusters = [clusters[c] for c in sorted(clusters)]
    ordered_slots = [slots[k] for k in sorted(slots)]

    # Wave timeline + straggler flags from the terminal task attempts.
    tasks.sort(key=lambda t: (t.wave, t.restart, t.attempt))
    waves: List[WaveStats] = []
    wave_indices = sorted(
        {task.wave for task in tasks} | set(wave_retries) | set(wave_faults)
    )
    for index in wave_indices:
        wave_tasks = [t for t in tasks if t.wave == index]
        done = [t for t in wave_tasks if t.status == "completed"]
        elapsed = [t.elapsed_s for t in done]
        median = statistics.median(elapsed) if elapsed else 0.0
        if len(done) >= 2 and median > 0.0:
            for task in done:
                if task.elapsed_s > straggler_factor * median:
                    task.is_straggler = True
        waves.append(WaveStats(
            index=index,
            completed=len(done),
            failed=sum(1 for t in wave_tasks if t.status == "failed"),
            retries=wave_retries.get(index, 0),
            faults=wave_faults.get(index, 0),
            median_elapsed_s=median,
            max_elapsed_s=max(elapsed, default=0.0),
            stragglers=sum(1 for t in done if t.is_straggler),
        ))

    resources.sort(key=lambda r: (r.restart, r.attempt))
    return TraceAnalysis(
        n_records=len(records),
        event_counts=event_counts,
        sessions=ordered_sessions,
        clusters=ordered_clusters,
        slots=ordered_slots,
        spans={name: span_agg[name] for name in sorted(span_agg)},
        warnings=warnings,
        tasks=tasks,
        waves=waves,
        resources=resources,
        processes=[
            process_stats[name] for name in sorted(process_stats)
        ],
    )


def analyze_trace(
    path: Union[str, Path],
    strict: bool = False,
    straggler_factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> TraceAnalysis:
    """Load a JSONL trace file and aggregate it.

    ``strict=False`` (the default) tolerates corrupt lines -- a
    truncated final line from a run interrupted mid-write, or damaged
    interior records -- and reports every skipped line number in
    ``warnings``; see :func:`repro.obs.sinks.read_jsonl`.  Works on
    single-process traces and merged session traces alike;
    ``straggler_factor`` tunes the wave-median multiple past which a
    completed task is flagged as a straggler.
    """
    skipped: List[int] = []
    records = read_jsonl(str(path), strict=strict, skipped=skipped)
    analysis = analyze_records(records, straggler_factor=straggler_factor)
    if skipped:
        shown = ", ".join(str(line) for line in skipped[:5])
        if len(skipped) > 5:
            shown += ", ..."
        analysis.warnings.append(
            f"{len(skipped)} corrupt line(s) skipped while reading the "
            f"trace (line {shown}): damaged or interrupted recording?"
        )
    return analysis


# ----------------------------------------------------------------------
# Twinned-run diffing (exact-vs-fast gain audits)
# ----------------------------------------------------------------------
@dataclass
class IterationDelta:
    """One aligned ``iteration`` pair from two twinned traces."""

    key: Dict[str, object]
    index: int
    residue_a: float
    residue_b: float
    volume_a: int
    volume_b: int
    actions_a: int
    actions_b: int

    @property
    def residue_delta(self) -> float:
        """``b - a``: positive when B converged to a worse residue."""
        return self.residue_b - self.residue_a

    @property
    def volume_delta(self) -> int:
        return self.volume_b - self.volume_a

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": dict(self.key),
            "index": self.index,
            "residue_a": self.residue_a,
            "residue_b": self.residue_b,
            "residue_delta": self.residue_delta,
            "volume_a": self.volume_a,
            "volume_b": self.volume_b,
            "volume_delta": self.volume_delta,
            "actions_a": self.actions_a,
            "actions_b": self.actions_b,
        }


@dataclass
class TraceDiff:
    """Aligned comparison of two traces' ``iteration`` streams."""

    deltas: List[IterationDelta]
    n_only_a: int
    n_only_b: int

    @property
    def max_abs_residue_delta(self) -> float:
        return max((abs(d.residue_delta) for d in self.deltas), default=0.0)

    @property
    def mean_abs_residue_delta(self) -> float:
        if not self.deltas:
            return 0.0
        return sum(abs(d.residue_delta) for d in self.deltas) / len(self.deltas)

    @property
    def final_residue_delta(self) -> float:
        return self.deltas[-1].residue_delta if self.deltas else 0.0

    def first_divergence(self, tol: float = 0.0) -> Optional[IterationDelta]:
        """First aligned iteration where |residue delta| exceeds ``tol``."""
        for delta in self.deltas:
            if abs(delta.residue_delta) > tol:
                return delta
        return None

    def to_dict(self, tol: float = 0.0) -> Dict[str, object]:
        first = self.first_divergence(tol)
        return {
            "schema": 1,
            "deltas": [delta.to_dict() for delta in self.deltas],
            "n_aligned": len(self.deltas),
            "n_only_a": self.n_only_a,
            "n_only_b": self.n_only_b,
            "max_abs_residue_delta": self.max_abs_residue_delta,
            "mean_abs_residue_delta": self.mean_abs_residue_delta,
            "final_residue_delta": self.final_residue_delta,
            "first_divergence_index": None if first is None else first.index,
        }


def _iteration_index(
    records: Sequence[Record],
) -> Dict[Tuple[Tuple[object, ...], int], Record]:
    """``(session key, iteration index) -> iteration record`` map."""
    out: Dict[Tuple[Tuple[object, ...], int], Record] = {}
    for record in records:
        if record.get("type") != "iteration":
            continue
        out[(_session_key(record), _as_int(record.get("index")))] = record
    return out


def diff_traces(
    records_a: Sequence[Record],
    records_b: Sequence[Record],
) -> TraceDiff:
    """Align two traces' ``iteration`` events and quantify divergence.

    Alignment is by ``(trial, restart, iteration index)``.  Iterations
    present in only one trace (one run converged earlier, or performed
    extra reseed rounds) are counted, not paired.  The canonical use is
    the frozen-bases gain audit: run twinned sessions with
    ``gain_mode="exact"`` and ``"fast"`` on the same seed and diff the
    traces to see where (and by how much) the estimate steers the search
    off the exact objective's path.
    """
    index_a = _iteration_index(records_a)
    index_b = _iteration_index(records_b)
    shared = sorted(
        set(index_a) & set(index_b),
        key=lambda pair: (
            tuple(_sort_token(part) for part in pair[0]),
            pair[1],
        ),
    )
    deltas: List[IterationDelta] = []
    for key, index in shared:
        a = index_a[(key, index)]
        b = index_b[(key, index)]
        deltas.append(IterationDelta(
            key=_key_dict(key),
            index=index,
            residue_a=_as_float(a.get("residue")),
            residue_b=_as_float(b.get("residue")),
            volume_a=_as_int(a.get("total_volume")),
            volume_b=_as_int(b.get("total_volume")),
            actions_a=_as_int(a.get("n_actions")),
            actions_b=_as_int(b.get("n_actions")),
        ))
    return TraceDiff(
        deltas=deltas,
        n_only_a=len(set(index_a) - set(index_b)),
        n_only_b=len(set(index_b) - set(index_a)),
    )
