"""Render merged session traces for external trace viewers.

Two targets:

* :func:`chrome_trace` / :func:`export_chrome` -- the Chrome
  trace-event JSON format (the ``traceEvents`` array of ``ph``-typed
  events), loadable in Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Processes become tracks, with waves and tasks
  on the supervisor track and per-restart sweeps nested under each
  worker track.
* :func:`export_otlp` -- replay records through
  :class:`~repro.obs.sinks.OtlpJsonSink` into one OTLP/JSON ``LogsData``
  document for OTel collectors.

Everything here is a pure function of the input records -- no wall
clock, no randomness -- so exporting the same merged trace twice is
byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, List, Tuple, Union

from .sinks import OtlpJsonSink

__all__ = ["chrome_trace", "export_chrome", "export_otlp"]

#: Record types that never become trace events.
_SKIP_TYPES = ("trace_meta", "session_meta")

#: Thread ids within a process track (Chrome nests by pid then tid).
_TID_WAVES = 1
_TID_TASKS = 2
_TID_SWEEPS = 1
_TID_EVENTS = 2
_TID_META = 3


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _as_float(value: object, default: float = 0.0) -> float:
    if _is_number(value):
        return float(value)  # type: ignore[arg-type]
    return default


def _is_supervisor(process: str) -> bool:
    return process == "main" or process.startswith("supervisor")


def chrome_trace(records: List[Dict[str, object]]) -> Dict[str, object]:
    """Chrome trace-event JSON document for a list of trace records.

    Works on merged session traces (records carry ``process``/``ts``
    from :func:`~repro.obs.session.collect_session`) and degrades
    gracefully on single-process traces (everything lands on one
    ``main`` track; unstamped records are counted, not rendered).

    Timestamps are microseconds relative to the earliest stamped record
    (Chrome's ``ts`` unit); durations come from each record's
    ``elapsed_s``.  Per-action records are deliberately skipped (a run
    emits thousands; they would swamp the viewer) and accounted for in
    ``otherData``.
    """
    pids: Dict[str, int] = {}
    events: List[Dict[str, object]] = []
    dispatch_ts: Dict[Tuple[object, object], float] = {}
    wave_extent: Dict[int, List[float]] = {}
    wave_pid = 0
    n_actions = 0
    n_unstamped = 0
    session = ""

    stamped = [
        r
        for r in records
        if r.get("type") not in _SKIP_TYPES and _is_number(r.get("ts"))
    ]
    t0 = min((_as_float(r.get("ts")) for r in stamped), default=0.0)

    def us(ts: float) -> float:
        return round((ts - t0) * 1e6, 3)

    def pid_for(record: Dict[str, object]) -> int:
        name = str(record.get("process", "main"))
        if name not in pids:
            pids[name] = len(pids) + 1
        return pids[name]

    for record in records:
        kind = record.get("type")
        if kind in _SKIP_TYPES:
            if kind == "session_meta" and not session:
                session = str(record.get("session", ""))
            continue
        if kind == "action":
            n_actions += 1
            continue
        if not _is_number(record.get("ts")):
            n_unstamped += 1
            continue
        ts = _as_float(record.get("ts"))
        pid = pid_for(record)
        process = str(record.get("process", "main"))
        supervisor = _is_supervisor(process)
        if supervisor:
            wave_pid = pid
        wave = record.get("wave")
        if supervisor and isinstance(wave, int) and not isinstance(wave, bool):
            extent = wave_extent.setdefault(wave, [ts, ts])
            extent[0] = min(extent[0], ts)
            extent[1] = max(extent[1], ts)
        if kind == "task":
            _append_task(events, record, ts, pid, dispatch_ts, us)
        elif kind == "iteration":
            elapsed = _as_float(record.get("elapsed_s"))
            events.append({
                "name": f"iter {record.get('index', '?')}",
                "cat": "sweep",
                "ph": "X",
                "ts": us(ts - elapsed),
                "dur": round(max(elapsed, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": _TID_SWEEPS,
                "args": {
                    "residue": record.get("residue"),
                    "total_volume": record.get("total_volume"),
                    "n_actions": record.get("n_actions"),
                    "improved": record.get("improved"),
                },
            })
        elif kind == "span":
            elapsed = _as_float(record.get("elapsed_s"))
            events.append({
                "name": str(record.get("name", "span")),
                "cat": "span",
                "ph": "X",
                "ts": us(ts - elapsed),
                "dur": round(max(elapsed, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": _TID_SWEEPS if not supervisor else _TID_TASKS,
                "args": {},
            })
        else:
            name = {
                "seed": f"seed c{record.get('cluster', '?')}",
                "resource": "resource",
                "retry": f"retry r{record.get('restart', '?')}",
                "fault": (
                    f"fault {record.get('site', '?')}"
                    f"/{record.get('kind', '?')}"
                ),
            }.get(str(kind), str(kind))
            args = {
                key: value
                for key, value in record.items()
                if key not in ("type", "ts", "seq", "process")
            }
            events.append({
                "name": name,
                "cat": str(kind),
                "ph": "i",
                "ts": us(ts),
                "pid": pid,
                "tid": _TID_TASKS if supervisor else _TID_EVENTS,
                "s": "t",
                "args": args,
            })

    for wave, (start, end) in sorted(wave_extent.items()):
        events.append({
            "name": f"wave {wave}",
            "cat": "wave",
            "ph": "X",
            "ts": us(start),
            "dur": round(max(end - start, 0.0) * 1e6, 3),
            "pid": wave_pid if wave_pid else 1,
            "tid": _TID_WAVES,
            "args": {"wave": wave},
        })

    events.sort(
        key=lambda e: (
            _as_float(e.get("ts")),
            e.get("pid", 0),
            e.get("tid", 0),
            str(e.get("name", "")),
        )
    )
    return {
        "traceEvents": _metadata_events(pids) + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "session": session,
            "n_records": len(records),
            "n_actions_skipped": n_actions,
            "n_unstamped_skipped": n_unstamped,
        },
    }


def _append_task(
    events: List[Dict[str, object]],
    record: Dict[str, object],
    ts: float,
    pid: int,
    dispatch_ts: Dict[Tuple[object, object], float],
    us: Callable[[float], float],
) -> None:
    """Pair dispatched/terminal task events into one complete event."""
    status = record.get("status")
    key = (record.get("restart"), record.get("attempt"))
    if status == "dispatched":
        dispatch_ts[key] = ts
        return
    if status in ("completed", "failed"):
        elapsed = _as_float(record.get("elapsed_s"))
        start = dispatch_ts.pop(key, ts - elapsed)
        events.append({
            "name": f"restart {record.get('restart', '?')}",
            "cat": "task",
            "ph": "X",
            "ts": us(start),
            "dur": round(max(ts - start, 0.0) * 1e6, 3),
            "pid": pid,
            "tid": _TID_TASKS,
            "args": {
                "status": status,
                "attempt": record.get("attempt"),
                "error": record.get("error"),
                "elapsed_s": record.get("elapsed_s"),
            },
        })
        return
    events.append({
        "name": f"restart {record.get('restart', '?')} {status}",
        "cat": "task",
        "ph": "i",
        "ts": us(ts),
        "pid": pid,
        "tid": _TID_TASKS,
        "s": "t",
        "args": {"status": status, "attempt": record.get("attempt")},
    })


def _metadata_events(pids: Dict[str, int]) -> List[Dict[str, object]]:
    """Process/thread naming metadata (``ph: "M"``) for every track."""
    out: List[Dict[str, object]] = []
    for name, pid in sorted(pids.items(), key=lambda item: item[1]):
        supervisor = _is_supervisor(name)
        out.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": name},
        })
        out.append({
            "name": "process_sort_index",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"sort_index": 0 if supervisor else pid},
        })
        threads = (
            ((_TID_WAVES, "waves"), (_TID_TASKS, "tasks"))
            if supervisor
            else ((_TID_SWEEPS, "sweeps"), (_TID_EVENTS, "events"))
        )
        for tid, label in threads:
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            })
    return out


def export_chrome(
    records: List[Dict[str, object]], path: Union[str, Path]
) -> Path:
    """Write :func:`chrome_trace` as deterministic (sorted-key) JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(chrome_trace(records), sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return out


def export_otlp(
    records: List[Dict[str, object]],
    path: Union[str, Path],
    service_name: str = "repro-floc",
) -> Path:
    """Replay records through an OTLP/JSON sink into one LogsData file."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    sink = OtlpJsonSink(out, service_name=service_name)
    try:
        for record in records:
            if record.get("type") in _SKIP_TYPES:
                continue
            sink.write(record)
    finally:
        sink.close()
    return out
