"""Trace sinks: where emitted records go.

A sink is anything with ``write(record: dict)`` (and optionally
``close()``).  Three implementations cover the common needs:

* :class:`RingBufferSink` -- bounded in-memory buffer for tests and
  programmatic inspection;
* :class:`JsonlSink` -- one JSON object per line, the machine-readable
  trace format (:func:`read_jsonl` loads it back);
* :class:`ConsoleProgressSink` -- human-readable one-line-per-iteration
  progress reporting for long interactive runs.

Records are flat dicts produced by the tracer (typed events merged with
the tracer context); sinks must not mutate them.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

__all__ = [
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "ConsoleProgressSink",
    "read_jsonl",
]


class Sink:
    """Interface: override :meth:`write`; :meth:`close` is optional."""

    def write(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the newest ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque = deque(maxlen=capacity)

    def write(self, record: Dict[str, object]) -> None:
        self._buffer.append(record)

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._buffer)

    def by_type(self, kind: str) -> List[Dict[str, object]]:
        """All buffered records whose ``type`` equals ``kind``."""
        return [r for r in self._buffer if r.get("type") == kind]

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


def _jsonable(value: object) -> object:
    """Coerce numpy scalars/arrays so ``json.dumps`` never chokes."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, AttributeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


class JsonlSink(Sink):
    """Append records to a file as JSON Lines.

    Accepts a path (opened for writing, truncating) or an already-open
    text stream (left open on :meth:`close` unless owned).
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._stream: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._stream = self.path.open("w", encoding="utf-8")
            self._owns = True
        self.n_written = 0

    def write(self, record: Dict[str, object]) -> None:
        if self._stream is None:
            raise ValueError("JsonlSink is closed")
        self._stream.write(json.dumps(record, default=_jsonable) + "\n")
        self.n_written += 1

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns:
            self._stream.close()
            self._stream = None


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a JSONL trace back into a list of record dicts."""
    records: List[Dict[str, object]] = []
    with Path(path).open("r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSONL record: {exc}"
                ) from exc
    return records


class ConsoleProgressSink(Sink):
    """Human-readable progress lines on a text stream (stderr default).

    Prints one line per iteration event, plus compact notices for seeds
    and restarts.  Action events are counted, not printed (a run can
    perform thousands).
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._n_actions = 0
        self._n_seeds = 0
        self._last_restart: Optional[object] = None

    def _print(self, text: str) -> None:
        self._stream.write(text + "\n")
        self._stream.flush()

    def write(self, record: Dict[str, object]) -> None:
        kind = record.get("type")
        restart = record.get("restart")
        if restart is not None and restart != self._last_restart:
            self._last_restart = restart
            self._print(f"-- restart {restart} --")
        if kind == "action":
            self._n_actions += 1
        elif kind == "seed":
            self._n_seeds += 1
            origin = record.get("origin", "phase1")
            if origin != "phase1":
                self._print(
                    f"  reseed cluster {record.get('cluster')}: "
                    f"{record.get('n_rows')}x{record.get('n_cols')}"
                )
        elif kind == "iteration":
            improved = "+" if record.get("improved") else "="
            self._print(
                f"  iter {record.get('index'):>3} [{improved}] "
                f"residue {record.get('residue'):.6g}  "
                f"volume {record.get('total_volume')}  "
                f"actions {record.get('n_actions')}  "
                f"({record.get('elapsed_s', 0.0):.3f}s)"
            )

    def close(self) -> None:
        self._print(
            f"trace: {self._n_seeds} seeds, {self._n_actions} actions total"
        )
