"""Trace sinks: where emitted records go.

A sink is anything with ``write(record: dict)`` (and optionally
``close()``).  Five implementations cover the common needs:

* :class:`RingBufferSink` -- bounded in-memory buffer for tests and
  programmatic inspection;
* :class:`JsonlSink` -- one JSON object per line, the machine-readable
  trace format (:func:`read_jsonl` loads it back);
* :class:`ConsoleProgressSink` -- human-readable one-line-per-iteration
  progress reporting for long interactive runs;
* :class:`StatsdSink` -- statsd line-protocol UDP export (stdlib socket
  only, injectable transport) for running FLOC as a service;
* :class:`OtlpJsonSink` -- OpenTelemetry-compatible OTLP/JSON file
  export for ingestion by OTel collectors.

Records are flat dicts produced by the tracer (typed events merged with
the tracer context); sinks must not mutate them.
"""

from __future__ import annotations

import json
import math
import os
import re
import socket
import sys
from collections import deque
from pathlib import Path
from typing import Dict, IO, List, Optional, Protocol, Tuple, Union

__all__ = [
    "Sink",
    "RingBufferSink",
    "JsonlSink",
    "ConsoleProgressSink",
    "StatsdSink",
    "OtlpJsonSink",
    "DatagramTransport",
    "read_jsonl",
]


class Sink:
    """Interface: override :meth:`write`; :meth:`close` is optional."""

    def write(self, record: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the newest ``capacity`` records in memory."""

    def __init__(self, capacity: int = 10000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._buffer: deque = deque(maxlen=capacity)

    def write(self, record: Dict[str, object]) -> None:
        self._buffer.append(record)

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._buffer)

    def by_type(self, kind: str) -> List[Dict[str, object]]:
        """All buffered records whose ``type`` equals ``kind``."""
        return [r for r in self._buffer if r.get("type") == kind]

    def clear(self) -> None:
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)


def _jsonable(value: object) -> object:
    """Coerce numpy scalars/arrays so ``json.dumps`` never chokes."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, AttributeError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


class JsonlSink(Sink):
    """Append records to a file as JSON Lines.

    Accepts a path (opened for writing, truncating) or an already-open
    text stream (left open on :meth:`close` unless owned).

    ``flush_every=N`` flushes the stream every ``N`` records so long
    mining sessions produce tailable traces (``tail -f trace.jsonl``);
    the default (``None``) keeps the original buffer-until-close
    behaviour.

    :meth:`close` is checkpoint-safe: when the sink owns the file it
    flushes *and fsyncs* before closing, so a trace that reached
    ``close()`` is durable -- a machine crash immediately after a
    completed run cannot silently truncate it.
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        flush_every: Optional[int] = None,
    ) -> None:
        if flush_every is not None and flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if hasattr(target, "write"):
            self._stream: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._stream = self.path.open("w", encoding="utf-8")
            self._owns = True
        self.flush_every = flush_every
        self.n_written = 0

    def write(self, record: Dict[str, object]) -> None:
        if self._stream is None:
            raise ValueError("JsonlSink is closed")
        self._stream.write(json.dumps(record, default=_jsonable) + "\n")
        self.n_written += 1
        if self.flush_every is not None and self.n_written % self.flush_every == 0:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns:
            # The sink opened this path itself, so the stream is a real
            # file: make the bytes durable before releasing the handle.
            os.fsync(self._stream.fileno())
            self._stream.close()
            self._stream = None


def read_jsonl(
    path: Union[str, Path],
    strict: bool = False,
    skipped: Optional[List[int]] = None,
) -> List[Dict[str, object]]:
    """Load a JSONL trace back into a list of record dicts.

    Crash tolerance, by default: any line that is not valid JSON is
    *skipped* -- a run killed mid-write leaves a truncated final line,
    and a crashed disk/fault-injected writer can corrupt an interior
    line -- so damaged traces stay analyzable.  Pass a list as
    ``skipped`` to receive the 1-based line numbers of every skipped
    line; callers should surface a non-empty list to the user rather
    than pretend the trace was whole.  ``strict=True`` raises
    ``ValueError`` on the first bad line for pipelines that must notice
    partial traces.
    """
    records: List[Dict[str, object]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            records.append(json.loads(stripped))
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(
                    f"{path}:{index + 1}: invalid JSONL record: {exc}"
                ) from exc
            if skipped is not None:
                skipped.append(index + 1)
    return records


class ConsoleProgressSink(Sink):
    """Human-readable progress lines on a text stream (stderr default).

    Prints one line per iteration event, plus compact notices for seeds
    and restarts.  Action events are counted, not printed (a run can
    perform thousands).

    Supervised-runtime events get the same treatment, so long
    ``repro mine --workers N --progress`` sessions narrate their
    wave/task/retry lifecycle instead of going silent: each wave-context
    change prints a ``-- wave N --`` banner, ``task`` events print per
    status (dispatch, completion with elapsed time, failure with the
    error kind, resume skips), and ``retry`` / ``fault`` events print
    the backoff schedule and injected-fault attribution.
    """

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._n_actions = 0
        self._n_seeds = 0
        self._n_tasks_done = 0
        self._n_retries = 0
        self._last_restart: Optional[object] = None
        self._last_wave: Optional[object] = None

    def _print(self, text: str) -> None:
        self._stream.write(text + "\n")
        self._stream.flush()

    def write(self, record: Dict[str, object]) -> None:
        kind = record.get("type")
        wave = record.get("wave")
        if wave is not None and wave != self._last_wave:
            self._last_wave = wave
            self._print(f"-- wave {wave} --")
        restart = record.get("restart")
        if (
            kind not in ("task", "retry", "fault")
            and restart is not None
            and restart != self._last_restart
        ):
            self._last_restart = restart
            self._print(f"-- restart {restart} --")
        if kind == "action":
            self._n_actions += 1
        elif kind == "seed":
            self._n_seeds += 1
            origin = record.get("origin", "phase1")
            if origin != "phase1":
                self._print(
                    f"  reseed cluster {record.get('cluster')}: "
                    f"{record.get('n_rows')}x{record.get('n_cols')}"
                )
        elif kind == "iteration":
            improved = "+" if record.get("improved") else "="
            self._print(
                f"  iter {record.get('index'):>3} [{improved}] "
                f"residue {record.get('residue'):.6g}  "
                f"volume {record.get('total_volume')}  "
                f"actions {record.get('n_actions')}  "
                f"({record.get('elapsed_s', 0.0):.3f}s)"
            )
        elif kind == "task":
            self._write_task(record)
        elif kind == "retry":
            self._n_retries += 1
            self._print(
                f"  retry restart {record.get('restart')} "
                f"(attempt {record.get('attempt')} failed: "
                f"{record.get('error')}; backoff "
                f"{record.get('backoff_s', 0.0):.2f}s, "
                f"{record.get('remaining')} retr(ies) left)"
            )
        elif kind == "fault":
            self._print(
                f"  fault injected at {record.get('site')} "
                f"[{record.get('kind')}] restart {record.get('restart')} "
                f"attempt {record.get('attempt')}"
            )

    def _write_task(self, record: Dict[str, object]) -> None:
        restart = record.get("restart")
        status = record.get("status")
        attempt = record.get("attempt")
        if status == "dispatched":
            self._print(f"  task restart {restart} dispatched "
                        f"(attempt {attempt})")
        elif status == "completed":
            self._n_tasks_done += 1
            elapsed = record.get("elapsed_s")
            suffix = (
                f" in {float(elapsed):.2f}s"
                if isinstance(elapsed, (int, float))
                and not isinstance(elapsed, bool) else ""
            )
            self._print(f"  task restart {restart} completed{suffix}")
        elif status == "failed":
            self._print(
                f"  task restart {restart} FAILED "
                f"(attempt {attempt}: {record.get('error')})"
            )
        elif status == "skipped":
            self._print(
                f"  task restart {restart} skipped (already checkpointed)"
            )
        else:  # pragma: no cover - future statuses degrade gracefully
            self._print(f"  task restart {restart} {status}")

    def close(self) -> None:
        summary = f"trace: {self._n_seeds} seeds, {self._n_actions} actions"
        if self._n_tasks_done or self._n_retries:
            summary += (
                f", {self._n_tasks_done} task(s) completed, "
                f"{self._n_retries} retr(ies)"
            )
        self._print(summary + " total")


class DatagramTransport(Protocol):
    """What :class:`StatsdSink` needs from its UDP socket (injectable)."""

    def sendto(self, data: bytes, address: Tuple[str, int]) -> int:
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        ...  # pragma: no cover - protocol definition


#: Characters that corrupt a statsd line-protocol packet when they leak
#: into a metric *name*: ``:`` separates name from value, ``|`` starts
#: the type (and sample-rate/tag) sections, and newlines split packets
#: into multiple metrics.  ``@``/``#`` guard the sample-rate and
#: dogstatsd-tag extensions; whitespace is folded for hygiene.
_STATSD_UNSAFE = re.compile(r"[:|@#,\s]+")


def _statsd_name(text: str) -> str:
    """A record-derived name component, made line-protocol safe.

    Every delimiter of the statsd wire format is collapsed to ``_`` so
    a hostile or merely unlucky name (``"a:b|c"``, an origin with a
    newline) cannot terminate the value early, inject a second metric,
    or smuggle a type/sample-rate section.  Empty input maps to ``_``
    rather than producing a nameless metric.
    """
    cleaned = _STATSD_UNSAFE.sub("_", text)
    return cleaned if cleaned else "_"


def _statsd_value(value: object) -> Optional[str]:
    """Format a numeric value for the wire, or ``None`` to drop it.

    Non-finite floats serialize as ``nan``/``inf`` under ``%g`` --
    tokens statsd servers reject or, worse, mis-parse -- so they are
    filtered here rather than corrupting the packet.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    number = float(value)
    if not math.isfinite(number):
        return None
    return f"{number:g}"


class StatsdSink(Sink):
    """Export trace records as statsd line-protocol UDP metrics.

    No dependency beyond the stdlib: metrics are formatted as
    ``<prefix>.<name>:<value>|<type>`` lines and sent as individual UDP
    datagrams (fire-and-forget; UDP to a dead endpoint neither blocks
    nor raises, matching statsd client convention).  Pass ``transport``
    (anything with ``sendto(data, address)``) to capture the lines in
    tests or to reuse an existing socket; an injected transport is never
    closed by the sink.

    The mapping:

    * ``action``    -> ``actions:1|c``, ``admissions/evictions:1|c``,
      ``action_gain:<gain>|h``
    * ``iteration`` -> ``iterations:1|c``, ``residue:<r>|g``,
      ``total_volume:<v>|g``, ``sweep_ms:<t>|ms``,
      ``sweep_actions:<n>|h``
    * ``seed``      -> ``seeds.<origin>:1|c``
    * ``span``      -> ``span.<name>:<t>|ms``
    * anything else -> ``events.<type>:1|c``

    Record-derived name components (event types, seed origins, span
    names) and the prefix itself are sanitized against the line
    protocol's delimiters (``:``, ``|``, newlines, ...) and non-finite
    values are dropped, so no record content can corrupt a packet --
    see :func:`_statsd_name` / :func:`_statsd_value`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8125,
        prefix: str = "floc",
        transport: Optional[DatagramTransport] = None,
    ) -> None:
        self.address = (host, port)
        self.prefix = _statsd_name(prefix)
        if transport is None:
            self._transport: Optional[DatagramTransport] = socket.socket(
                socket.AF_INET, socket.SOCK_DGRAM
            )
            self._owns = True
        else:
            self._transport = transport
            self._owns = False
        self.n_sent = 0

    def format_record(self, record: Dict[str, object]) -> List[str]:
        """The statsd lines one record maps to (no I/O; unit-testable)."""
        p = self.prefix
        kind = record.get("type", "event")
        lines: List[str] = []
        if kind == "action":
            lines.append(f"{p}.actions:1|c")
            direction = (
                "evictions" if record.get("is_removal") else "admissions"
            )
            lines.append(f"{p}.{direction}:1|c")
            gain = _statsd_value(record.get("gain"))
            if gain is not None:
                lines.append(f"{p}.action_gain:{gain}|h")
        elif kind == "iteration":
            lines.append(f"{p}.iterations:1|c")
            for name, key, suffix in (
                ("residue", "residue", "g"),
                ("total_volume", "total_volume", "g"),
                ("sweep_actions", "n_actions", "h"),
            ):
                value = _statsd_value(record.get(key))
                if value is not None:
                    lines.append(f"{p}.{name}:{value}|{suffix}")
            elapsed = record.get("elapsed_s")
            if isinstance(elapsed, (int, float)) and not isinstance(elapsed, bool):
                sweep_ms = _statsd_value(float(elapsed) * 1e3)
                if sweep_ms is not None:
                    lines.append(f"{p}.sweep_ms:{sweep_ms}|ms")
        elif kind == "seed":
            origin = _statsd_name(str(record.get("origin", "phase1")))
            lines.append(f"{p}.seeds.{origin}:1|c")
        elif kind == "span":
            name = _statsd_name(str(record.get("name", "unnamed")))
            elapsed_s = record.get("elapsed_s")
            if isinstance(elapsed_s, (int, float)) and not isinstance(
                elapsed_s, bool
            ):
                span_ms = _statsd_value(float(elapsed_s) * 1e3)
                if span_ms is not None:
                    lines.append(f"{p}.span.{name}:{span_ms}|ms")
        else:
            lines.append(f"{p}.events.{_statsd_name(str(kind))}:1|c")
        return lines

    def write(self, record: Dict[str, object]) -> None:
        if self._transport is None:
            raise ValueError("StatsdSink is closed")
        for line in self.format_record(record):
            self._transport.sendto(line.encode("utf-8"), self.address)
            self.n_sent += 1

    def close(self) -> None:
        if self._transport is None:
            return
        if self._owns:
            self._transport.close()
        self._transport = None


class OtlpJsonSink(Sink):
    """OpenTelemetry-compatible OTLP/JSON log export to a file.

    Buffers every record as an OTLP ``logRecord`` (body = event type,
    attributes = the record's remaining fields, mapped per the OTLP/JSON
    ``AnyValue`` encoding: ``intValue`` as a string, ``doubleValue``,
    ``boolValue``, ``stringValue``) and writes one ``LogsData`` JSON
    document on :meth:`close`.  The file can be replayed into any OTel
    collector with a JSON file receiver; there is no OTel SDK
    dependency.  Like :class:`JsonlSink`, accepts a path or an open
    text stream (the latter is left open).
    """

    def __init__(
        self,
        target: Union[str, Path, IO[str]],
        service_name: str = "repro-floc",
        scope: str = "repro.obs",
    ) -> None:
        if hasattr(target, "write"):
            self._stream: Optional[IO[str]] = target  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[Path] = None
        else:
            self.path = Path(target)
            self._stream = self.path.open("w", encoding="utf-8")
            self._owns = True
        self.service_name = service_name
        self.scope = scope
        self._records: List[Dict[str, object]] = []
        self._closed = False

    @staticmethod
    def _any_value(value: object) -> Dict[str, object]:
        """One value in OTLP/JSON ``AnyValue`` encoding."""
        if isinstance(value, bool):
            return {"boolValue": value}
        if isinstance(value, int):
            return {"intValue": str(value)}  # int64 is a string in OTLP/JSON
        if isinstance(value, float):
            return {"doubleValue": value}
        if isinstance(value, str):
            return {"stringValue": value}
        return {"stringValue": str(_jsonable(value))}

    def write(self, record: Dict[str, object]) -> None:
        if self._closed:
            raise ValueError("OtlpJsonSink is closed")
        self._records.append({
            "severityText": "INFO",
            "body": {"stringValue": str(record.get("type", "event"))},
            "attributes": [
                {"key": key, "value": self._any_value(value)}
                for key, value in record.items()
                if key != "type"
            ],
        })

    def to_payload(self) -> Dict[str, object]:
        """The full OTLP/JSON ``LogsData`` document (what close writes)."""
        return {
            "resourceLogs": [{
                "resource": {
                    "attributes": [{
                        "key": "service.name",
                        "value": {"stringValue": self.service_name},
                    }],
                },
                "scopeLogs": [{
                    "scope": {"name": self.scope},
                    "logRecords": list(self._records),
                }],
            }],
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        stream = self._stream
        if stream is None:  # pragma: no cover - defensive
            return
        json.dump(self.to_payload(), stream, default=_jsonable)
        stream.write("\n")
        stream.flush()
        if self._owns:
            stream.close()
        self._stream = None
