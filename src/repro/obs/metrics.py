"""Metrics registry: counters, gauges and histograms with dict snapshots.

A :class:`MetricsRegistry` is a flat namespace of named instruments.
Instruments are get-or-create (``registry.counter("actions_performed")``
returns the same object every call) so hot paths can cache them, and the
whole registry renders to a plain nested dict via :meth:`snapshot` --
the only export format; no external metrics stack is required.

Histograms keep exact running aggregates (count / total / min / max)
plus a bounded value sample for percentile estimates.  The sample is
decimated *deterministically* (every other element, doubling the stride)
rather than reservoir-sampled, so recording metrics never touches any
random number generator -- FLOC's RNG stream must be bit-identical with
and without instrumentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Running distribution of observed values.

    Aggregates (count, total, min, max) are exact; percentiles are
    estimated from a bounded sample kept by stride-doubling decimation
    (keep every element until ``sample_cap``, then every 2nd, 4th, ...).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_sample",
                 "_stride", "_skip", "sample_cap")

    def __init__(self, name: str, sample_cap: int = 4096) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.sample_cap = sample_cap
        self._sample: List[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._sample.append(value)
            if len(self._sample) >= self.sample_cap:
                self._sample = self._sample[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        rank = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named instruments with a plain-dict snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, sample_cap: int = 4096) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, sample_cap)
        return inst

    # -- convenience write paths ---------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Three-section plain dict: counters, gauges, histograms."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
