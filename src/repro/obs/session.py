"""Cross-process session traces for the supervised runtime.

The supervised runtime (:mod:`repro.runtime`) farms FLOC restarts out to
a process pool, which used to put a hard boundary through the trace: the
supervisor recorded task/retry/fault events while each worker's sweep
events evaporated inside the subprocess.  This module is the missing
layer -- every process writes its own durable JSONL *shard* into
``<run_dir>/traces/`` and a collector merges them into one totally
ordered session trace.

How the pieces fit together:

* The supervisor calls :meth:`SessionTrace.create` /
  :meth:`SessionTrace.attach`, which opens the supervisor shard
  (``trace_supervisor.jsonl``; resumed runs get generation-suffixed
  shards) and anchors *session time*: second 0 is the supervisor's
  monotonic clock reading at attach.
* Each dispatched task carries a :class:`TraceContext` -- session id,
  parent task span id, and the session-time anchor taken at dispatch.
  The worker entrypoint hands it to :func:`open_worker_tracer`, which
  opens the worker shard (``trace_worker_<restart>_<attempt>.jsonl``,
  ``flush_every=1`` so a killed worker leaves at worst a truncated final
  line) and records *both* clocks in the shard's leading ``trace_meta``
  record: its own monotonic reading (``clock_anchor_local``) and the
  dispatch-time session reading (``clock_anchor_session``).
* :func:`collect_session` aligns every shard onto the session clock
  with ``offset = clock_anchor_session - clock_anchor_local`` and sorts
  records by ``(aligned ts, process ordinal, seq)``.  The offsets come
  purely from recorded file contents, so merging the same shards twice
  is byte-identical -- :func:`merge_session` writes the result with
  sorted keys and CI ``cmp``s two merges to enforce it.

Alignment accuracy is bounded by the pool's dispatch-to-pickup latency
(the worker stamps its local anchor when it starts running, while the
session anchor was stamped at submit time), which is plenty for
wave/task/sweep timelines; ``seq`` breaks ties deterministically within
a process regardless.

All timing uses :attr:`~repro.obs.tracer.Tracer.clock` (monotonic);
session ids are content hashes of the run identity -- nothing here reads
the wall clock or draws randomness, so traced runs stay bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .sinks import JsonlSink, read_jsonl
from .tracer import Tracer

__all__ = [
    "SESSION_TRACE_FILENAME",
    "TRACES_DIRNAME",
    "TRACE_SCHEMA",
    "SessionTrace",
    "TraceContext",
    "collect_session",
    "merge_session",
    "open_worker_tracer",
    "session_id_for",
    "worker_shard_path",
]

#: Schema version stamped into ``trace_meta`` / ``session_meta`` records.
TRACE_SCHEMA = 1

#: Subdirectory of the run dir holding every per-process trace shard.
TRACES_DIRNAME = "traces"

#: Default filename (inside the traces dir) of the merged session trace.
SESSION_TRACE_FILENAME = "trace_session.jsonl"


def session_id_for(identity: Dict[str, object], run_dir: Union[str, Path]) -> str:
    """Deterministic session id: content hash of run identity + run dir.

    No wall clock, no randomness -- the same configuration in the same
    run dir always names the same session, which is exactly what resume
    wants (a resumed run's shards join the original session).
    """
    payload = json.dumps(
        {"identity": identity, "run_dir": str(run_dir)},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to join the session trace.

    ``anchor_session`` is the supervisor's session-time reading at
    dispatch; the worker pairs it with its own monotonic reading to let
    the collector compute this process's clock offset.
    """

    #: Session id (:func:`session_id_for`).
    session: str
    #: Span id of the supervising task, e.g. ``"task:3:0"``.
    parent_span: str
    #: Session time (seconds since attach) at dispatch.
    anchor_session: float

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form, safe to put in a pickled task payload."""
        return {
            "session": self.session,
            "parent_span": self.parent_span,
            "anchor_session": self.anchor_session,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceContext":
        """Inverse of :meth:`to_dict`; validates the anchor is numeric."""
        anchor = data.get("anchor_session", 0.0)
        if isinstance(anchor, bool) or not isinstance(anchor, (int, float)):
            raise ValueError(
                f"anchor_session must be numeric, got {anchor!r}"
            )
        return cls(
            session=str(data.get("session", "")),
            parent_span=str(data.get("parent_span", "")),
            anchor_session=float(anchor),
        )


def worker_shard_path(
    run_dir: Union[str, Path], restart: int, attempt: int
) -> Path:
    """Where the worker for ``(restart, attempt)`` writes its shard."""
    name = f"trace_worker_{restart:05d}_{attempt:02d}.jsonl"
    return Path(run_dir) / TRACES_DIRNAME / name


def open_worker_tracer(
    run_dir: Union[str, Path],
    context: Union[TraceContext, Dict[str, object]],
    restart: int,
    attempt: int,
) -> Tracer:
    """A stamping tracer backed by this worker's durable JSONL shard.

    The shard's first record is ``trace_meta`` carrying both clock
    anchors; ``flush_every=1`` keeps the shard valid-or-truncated even
    when the worker is killed mid-task (``os._exit`` skips ``close``).
    """
    ctx = (
        context
        if isinstance(context, TraceContext)
        else TraceContext.from_dict(context)
    )
    path = worker_shard_path(run_dir, restart, attempt)
    path.parent.mkdir(parents=True, exist_ok=True)
    sink = JsonlSink(path, flush_every=1)
    sink.write({
        "type": "trace_meta",
        "schema": TRACE_SCHEMA,
        "session": ctx.session,
        "process": f"worker:{restart:05d}:{attempt:02d}",
        "parent_span": ctx.parent_span,
        "clock_anchor_local": Tracer.clock(),
        "clock_anchor_session": ctx.anchor_session,
        "restart": restart,
        "attempt": attempt,
        "pid": os.getpid(),
    })
    tracer = Tracer(sinks=[sink], stamp=True)
    tracer.push_context(restart=restart, attempt=attempt)
    return tracer


class SessionTrace:
    """Supervisor-side handle for one cross-process trace session.

    Lifecycle: :meth:`create` -> :meth:`attach` (open the supervisor
    shard, anchor session time) -> :meth:`task_context` per dispatched
    task -> :meth:`detach` -> :meth:`merge`.
    """

    def __init__(self, run_dir: Path, session_id: str) -> None:
        self.run_dir = run_dir
        self.session_id = session_id
        #: Supervisor monotonic-clock reading defining session time 0.
        self.anchor: float = 0.0
        self._sink: Optional[JsonlSink] = None
        self._tracer: Optional[Tracer] = None
        self._owns_tracer = False
        self._prev_stamp = False

    @classmethod
    def create(
        cls, run_dir: Union[str, Path], identity: Dict[str, object]
    ) -> "SessionTrace":
        """New session for ``run_dir``; makes the traces dir."""
        run_path = Path(run_dir)
        (run_path / TRACES_DIRNAME).mkdir(parents=True, exist_ok=True)
        return cls(run_path, session_id_for(identity, run_path))

    def _next_supervisor_shard(self) -> Tuple[Path, int]:
        """First unused generation-suffixed supervisor shard path.

        Resumed runs must not overwrite the original supervisor shard:
        generation 0 is ``trace_supervisor.jsonl``, later generations
        ``trace_supervisor_<gen>.jsonl`` (lexicographically after it, so
        sorted-glob collection preserves generation order).
        """
        traces = self.run_dir / TRACES_DIRNAME
        generation = 0
        while True:
            name = (
                "trace_supervisor.jsonl"
                if generation == 0
                else f"trace_supervisor_{generation:02d}.jsonl"
            )
            path = traces / name
            if not path.exists():
                return path, generation
            generation += 1

    def attach(self, tracer: Tracer) -> Tracer:
        """Open the supervisor shard and route ``tracer`` through it.

        Returns the tracer the supervisor should use from now on: the
        given one (gaining the shard sink and record stamping) when it
        is enabled, or a fresh shard-only tracer when it is disabled --
        ``NULL_TRACER`` is shared and must never be mutated.
        """
        path, generation = self._next_supervisor_shard()
        sink = JsonlSink(path, flush_every=1)
        self.anchor = Tracer.clock()
        process = (
            "supervisor"
            if generation == 0
            else f"supervisor:{generation:02d}"
        )
        sink.write({
            "type": "trace_meta",
            "schema": TRACE_SCHEMA,
            "session": self.session_id,
            "process": process,
            "clock_anchor_local": self.anchor,
            "clock_anchor_session": 0.0,
            "pid": os.getpid(),
        })
        self._sink = sink
        if tracer.enabled:
            self._tracer = tracer
            self._owns_tracer = False
            self._prev_stamp = tracer.stamp
            tracer.sinks.append(sink)
            tracer.stamp = True
        else:
            self._tracer = Tracer(sinks=[sink], stamp=True)
            self._owns_tracer = True
        return self._tracer

    def task_context(self, restart: int, attempt: int) -> Dict[str, object]:
        """The :class:`TraceContext` dict to ship with one task payload."""
        return TraceContext(
            session=self.session_id,
            parent_span=f"task:{restart}:{attempt}",
            anchor_session=Tracer.clock() - self.anchor,
        ).to_dict()

    def detach(self) -> None:
        """Close the supervisor shard and undo any tracer mutation."""
        sink = self._sink
        tracer = self._tracer
        self._sink = None
        self._tracer = None
        if tracer is not None and not self._owns_tracer and sink is not None:
            if sink in tracer.sinks:
                tracer.sinks.remove(sink)
            tracer.stamp = self._prev_stamp
        if sink is not None:
            sink.close()

    def merge(self, out: Optional[Union[str, Path]] = None) -> Path:
        """Merge every shard in the run dir (:func:`merge_session`)."""
        return merge_session(self.run_dir, out)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def collect_session(
    run_dir: Union[str, Path],
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load and align every shard under ``run_dir`` into session order.

    Returns ``(session_meta, records)``.  Each returned record carries
    an aligned ``ts`` (session seconds), the owning ``process`` name,
    and a ``seq``; the list is sorted by ``(ts, process ordinal, seq)``
    so two collections of the same files are identical.

    Damage tolerance: shards whose leading ``trace_meta`` is missing or
    whose file cannot be read are listed in ``session_meta
    ["skipped_shards"]``; corrupt interior/truncated final lines (a
    killed worker) are skipped per :func:`~repro.obs.sinks.read_jsonl`
    and reported in ``session_meta["corrupt_lines"]``.
    """
    traces = Path(run_dir) / TRACES_DIRNAME
    shards = sorted(traces.glob("trace_supervisor*.jsonl")) + sorted(
        traces.glob("trace_worker_*.jsonl")
    )
    keyed: List[Tuple[float, int, int, Dict[str, object]]] = []
    processes: List[str] = []
    skipped_shards: List[str] = []
    corrupt_lines: Dict[str, List[int]] = {}
    session_id = ""
    for shard in shards:
        skipped: List[int] = []
        try:
            records = read_jsonl(shard, skipped=skipped)
        except OSError:
            skipped_shards.append(shard.name)
            continue
        if skipped:
            corrupt_lines[shard.name] = skipped
        if not records or records[0].get("type") != "trace_meta":
            skipped_shards.append(shard.name)
            continue
        meta = records[0]
        process = str(meta.get("process", shard.stem))
        if not session_id and "session" in meta:
            session_id = str(meta["session"])
        anchor_local = meta.get("clock_anchor_local")
        anchor_session = meta.get("clock_anchor_session")
        offset = 0.0
        base = 0.0
        if _is_number(anchor_local) and _is_number(anchor_session):
            offset = float(anchor_session) - float(anchor_local)  # type: ignore[arg-type]
            base = float(anchor_session)  # type: ignore[arg-type]
        ordinal = len(processes)
        processes.append(process)
        for index, record in enumerate(records[1:]):
            ts = record.get("ts")
            aligned = float(ts) + offset if _is_number(ts) else base  # type: ignore[arg-type]
            seq = record.get("seq")
            seq_key = seq if isinstance(seq, int) and not isinstance(seq, bool) else index
            merged = dict(record)
            merged["ts"] = aligned
            merged["seq"] = seq_key
            merged["process"] = process
            keyed.append((aligned, ordinal, seq_key, merged))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    session_meta: Dict[str, object] = {
        "type": "session_meta",
        "schema": TRACE_SCHEMA,
        "session": session_id,
        "processes": processes,
        "n_records": len(keyed),
        "skipped_shards": skipped_shards,
        "corrupt_lines": corrupt_lines,
    }
    return session_meta, [item[3] for item in keyed]


def merge_session(
    run_dir: Union[str, Path], out: Optional[Union[str, Path]] = None
) -> Path:
    """Write the merged session trace as JSONL; byte-deterministic.

    The first line is the ``session_meta`` record, followed by every
    aligned record in session order.  Keys are sorted, so merging the
    same shard files twice produces byte-identical output (CI enforces
    this with ``cmp``).
    """
    session_meta, records = collect_session(run_dir)
    out_path = (
        Path(out)
        if out is not None
        else Path(run_dir) / TRACES_DIRNAME / SESSION_TRACE_FILENAME
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(session_meta, sort_keys=True)]
    lines.extend(json.dumps(record, sort_keys=True) for record in records)
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out_path
