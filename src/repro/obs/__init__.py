"""Observability: structured tracing, metrics and profiling for FLOC.

The subsystem has four pieces, all optional and all zero-cost when not
requested:

* :mod:`repro.obs.tracer` -- the :class:`Tracer` handle threaded through
  :func:`repro.core.floc.floc` and friends (spans + typed events);
* :mod:`repro.obs.events` -- the typed event vocabulary
  (:class:`IterationEvent`, :class:`ActionEvent`, :class:`SeedEvent`,
  plus the runtime's :class:`TaskEvent` / :class:`RetryEvent` /
  :class:`FaultEvent`);
* :mod:`repro.obs.metrics` -- counters / gauges / histograms with a
  plain-dict snapshot;
* :mod:`repro.obs.sinks` -- ring buffer, JSONL writer, console
  progress reporter, and the statsd / OTLP-JSON exporter sinks;
* :mod:`repro.obs.analysis` -- trace analytics: typed per-sweep /
  per-cluster / per-slot aggregates over recorded traces, wave/task
  timelines with straggler detection for runtime traces, plus
  twinned-run diffing (``repro analyze-trace`` / ``repro diff-traces``);
* :mod:`repro.obs.session` -- cross-process session traces for the
  supervised runtime: per-process JSONL shards, clock alignment, and
  the byte-deterministic merge;
* :mod:`repro.obs.export` -- Chrome trace-event / OTLP renderings of
  merged session traces (``repro export-trace``);
* :mod:`repro.obs.profiling` -- the ``@profiled`` decorator on the core
  residue/action primitives plus a wall/CPU report;
* :mod:`repro.obs.perf` -- the deterministic work-counter cost model
  (:class:`~repro.obs.perf.counters.WorkCounters`), the environment
  fingerprint, and the ``repro bench`` harness with machine-readable
  baselines and regression comparison.

See ``docs/OBSERVABILITY.md`` for the event schema and recipes.
"""

from .analysis import (
    ClusterStats,
    GainHistogram,
    IterationDelta,
    ProcessStats,
    ResourceStats,
    SessionAnalysis,
    SlotStats,
    SweepStats,
    TaskRun,
    TraceAnalysis,
    TraceDiff,
    WaveStats,
    analyze_records,
    analyze_trace,
    diff_traces,
)
from .events import (
    EVENT_TYPES,
    ActionEvent,
    FaultEvent,
    IterationEvent,
    ResourceEvent,
    RetryEvent,
    SeedEvent,
    TaskEvent,
    TraceEvent,
    event_fields,
)
from .export import chrome_trace, export_chrome, export_otlp
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perf import (
    WORK_COUNTER_FIELDS,
    WorkCounters,
    environment_fingerprint,
    git_revision,
)
from .profiling import (
    disable_profiling,
    enable_profiling,
    profile_report,
    profile_snapshot,
    profiled,
    profiling_enabled,
    reset_profile,
)
from .session import (
    SessionTrace,
    TraceContext,
    collect_session,
    merge_session,
    open_worker_tracer,
    session_id_for,
    worker_shard_path,
)
from .sinks import (
    ConsoleProgressSink,
    DatagramTransport,
    JsonlSink,
    OtlpJsonSink,
    RingBufferSink,
    Sink,
    StatsdSink,
    read_jsonl,
)
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "ActionEvent",
    "ClusterStats",
    "ConsoleProgressSink",
    "Counter",
    "DatagramTransport",
    "EVENT_TYPES",
    "FaultEvent",
    "Gauge",
    "GainHistogram",
    "Histogram",
    "IterationDelta",
    "IterationEvent",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "OtlpJsonSink",
    "ProcessStats",
    "ResourceEvent",
    "ResourceStats",
    "RetryEvent",
    "RingBufferSink",
    "SeedEvent",
    "SessionAnalysis",
    "SessionTrace",
    "Sink",
    "SlotStats",
    "Span",
    "StatsdSink",
    "SweepStats",
    "TaskEvent",
    "TaskRun",
    "TraceAnalysis",
    "TraceContext",
    "TraceDiff",
    "TraceEvent",
    "Tracer",
    "WORK_COUNTER_FIELDS",
    "WaveStats",
    "WorkCounters",
    "analyze_records",
    "analyze_trace",
    "chrome_trace",
    "collect_session",
    "diff_traces",
    "disable_profiling",
    "enable_profiling",
    "environment_fingerprint",
    "event_fields",
    "export_chrome",
    "export_otlp",
    "git_revision",
    "merge_session",
    "open_worker_tracer",
    "profile_report",
    "profile_snapshot",
    "profiled",
    "profiling_enabled",
    "read_jsonl",
    "reset_profile",
    "session_id_for",
    "worker_shard_path",
]
