"""Observability: structured tracing, metrics and profiling for FLOC.

The subsystem has four pieces, all optional and all zero-cost when not
requested:

* :mod:`repro.obs.tracer` -- the :class:`Tracer` handle threaded through
  :func:`repro.core.floc.floc` and friends (spans + typed events);
* :mod:`repro.obs.events` -- the typed event vocabulary
  (:class:`IterationEvent`, :class:`ActionEvent`, :class:`SeedEvent`);
* :mod:`repro.obs.metrics` -- counters / gauges / histograms with a
  plain-dict snapshot;
* :mod:`repro.obs.sinks` -- ring buffer, JSONL writer and console
  progress reporter;
* :mod:`repro.obs.profiling` -- the ``@profiled`` decorator on the core
  residue/action primitives plus a wall/CPU report.

See ``docs/OBSERVABILITY.md`` for the event schema and recipes.
"""

from .events import ActionEvent, IterationEvent, SeedEvent, TraceEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiling import (
    disable_profiling,
    enable_profiling,
    profile_report,
    profile_snapshot,
    profiled,
    profiling_enabled,
    reset_profile,
)
from .sinks import ConsoleProgressSink, JsonlSink, RingBufferSink, Sink, read_jsonl
from .tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "ActionEvent",
    "ConsoleProgressSink",
    "Counter",
    "Gauge",
    "Histogram",
    "IterationEvent",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "RingBufferSink",
    "SeedEvent",
    "Sink",
    "Span",
    "Tracer",
    "TraceEvent",
    "disable_profiling",
    "enable_profiling",
    "profile_report",
    "profile_snapshot",
    "profiled",
    "profiling_enabled",
    "read_jsonl",
    "reset_profile",
]
