"""Sweep-level batched gain engine: vectorised action scoring for FLOC.

Phase 2 consults one gain per (slot, cluster) pair -- up to k * (M + N)
candidate toggles per sweep.  The historical implementation evaluated
each candidate with a scalar call (``exact_candidate``'s full-submatrix
rescan, or a per-slot ``candidate_parts_batch``), leaving nearly all
wall time in per-action Python loops.  This module replaces that with
*lanes*: one lane is the vector of scores of **every slot of one kind
against one cluster**, produced in a handful of NumPy passes.

Three layers (see DESIGN.md section "Batched gain engine"):

**Scoring backends** (:class:`ScoringBackend`)
    A backend knows how to score a lane under one coherence measure.
    :class:`ResidueBackend` -- the delta-cluster mean-absolute-residue
    measure -- is the first implementation; a lagged-coherence measure
    (Shaham et al., PAPERS.md) can be registered beside it without
    touching the engine.  Each backend offers an *estimate* lane
    (frozen-bases fold, numerically identical to
    :meth:`~repro.core.floc._State.candidate_parts_batch`) and an
    *exact* lane (true after-toggle residue derived from the
    incremental sufficient statistics -- no submatrix rescan).

**Vectorised policy** (:func:`gain_lane`, the blocking masks)
    Array forms of FLOC's ``_gain`` branch ladder and of the cheap
    (cluster-local) constraint checks, so a lane of raw scores becomes a
    lane of gains with blocked entries at ``-inf`` in O(S) vector work.

**The engine** (:class:`GainEngine`)
    Caches lanes per (kind, cluster) and invalidates them by comparing
    the state's per-cluster modification stamps -- a performed action
    dirties only the acted cluster's lanes, so a sweep costs a few lane
    builds instead of k * (M + N) scalar evaluations, while every
    consult still scores against the *current* state (sequential
    semantics are preserved bit for bit; the paranoia-mode test in
    ``tests/test_gain_engine.py`` rebuilds every lane at every consult
    and checks the full run is identical).

Cross-cluster constraints (Cons_o overlap, Cons_c coverage) and the
exact alpha-occupancy check depend on *other* clusters' state, so they
cannot live in a per-cluster lane cache: the engine applies them at
consult time, walking candidates in descending-gain order and verifying
only the few that could win.  At ordering time the state is frozen, so
they are applied as whole-lane vector masks instead.

The exact lane's core trick: with row means fixed under a row toggle,
the after-toggle deviation sum of a member column ``j`` is the sum of
absolute deviations of its centred residuals ``E_rj = d_rj - a_r``
about a candidate-specific pivot ``t'_j = b'_j - g'``.  Sorting each
column's residuals once per lane (with prefix sums) answers that for
every candidate via ``searchsorted`` in O(log n) -- the O(n*m) rescan
per candidate becomes O(n*m*log n) per *lane*.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Type,
)

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer
from .actions import BLOCKED_GAIN, COL, ROW, toggle_occupancy_ok
from .constraints import Constraints

if TYPE_CHECKING:  # circular at runtime: floc imports this module
    from .floc import _State

__all__ = [
    "ExactContext",
    "GainEngine",
    "LaneScores",
    "ResidueBackend",
    "ScoringBackend",
    "gain_lane",
    "get_scoring_backend",
]

try:  # Protocol is typing_extensions-free on every supported Python
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8 is unsupported
    Protocol = object  # type: ignore[assignment]

# No ``np.errstate`` anywhere on the hot paths: every division below
# (and in ``_State.candidate_parts_batch``) guards its denominator with
# ``np.maximum(..., 1)``, so none can raise divide/invalid -- the
# errstate context setup the scalar implementation paid per call is
# simply gone.


@dataclass
class LaneScores:
    """Scores of every slot of one kind against one cluster.

    All arrays have length S (= M for row lanes, N for column lanes).
    ``new_residues`` / ``new_volumes`` describe the cluster after the
    candidate toggle; ``line_residues`` is the toggled line's own
    frozen-bases residue (the r-residue admission test input);
    ``line_counts`` the number of specified entries the line has on the
    cluster; ``width`` the cluster's extent along the toggled line.
    """

    new_residues: np.ndarray
    new_volumes: np.ndarray
    line_residues: np.ndarray
    line_counts: np.ndarray
    width: int


class ScoringBackend(Protocol):
    """One coherence measure, scored lane-at-a-time.

    Implementations must be pure functions of the state's per-cluster
    sufficient statistics: two calls on identical state return
    bit-identical lanes (the engine's cache correctness depends on it).
    ``estimate_lane`` freezes the cluster's bases (cheap, used for
    action ordering and fast-mode moves); ``exact_lane`` computes the
    true after-toggle score (default-mode moves).
    """

    name: str

    def estimate_lane(self, state: "_State", kind: str, c: int) -> LaneScores:
        ...  # pragma: no cover - protocol

    def exact_lane(self, state: "_State", kind: str, c: int) -> LaneScores:
        ...  # pragma: no cover - protocol


class ResidueBackend:
    """Mean-absolute-residue scoring (the paper's delta-cluster measure)."""

    name = "residue"

    # -- estimate: frozen-bases fold ----------------------------------
    def estimate_lane(self, state: "_State", kind: str, c: int) -> LaneScores:
        """All-slots-one-cluster transpose of ``candidate_parts_batch``.

        Numerically identical, element for element, to the per-slot
        batch call (enforced by ``tests/test_gain_engine.py``), so the
        weighted ordering consumes the same gains -- and therefore the
        same RNG stream -- as the per-slot implementation it replaces.
        """
        if kind == ROW:
            filled, mask = state.filled, state.mask
            member = state.col_member[c]
            base_sums, base_counts = state.col_sums[c], state.col_counts[c]
            line_sums = state.row_sums[c]
            line_counts = state.row_counts[c]
            line_counts_f = state.row_counts_f[c]
            removing = state.row_member[c]
        else:
            filled, mask = state.filled_T, state.mask_T
            member = state.row_member[c]
            base_sums, base_counts = state.row_sums[c], state.row_counts[c]
            line_sums = state.col_sums[c]
            line_counts = state.col_counts[c]
            line_counts_f = state.col_counts_f[c]
            removing = state.col_member[c]

        volume = state.volumes_f[c]
        residue = state.residues[c]

        line_base = line_sums / np.maximum(line_counts_f, 1.0)
        cross_base = np.where(
            base_counts > 0,
            base_sums / np.maximum(base_counts, 1),
            0.0,
        )
        total = (base_sums * member).sum()
        count = (base_counts * member).sum()
        grand = np.where(count > 0, total / np.maximum(count, 1), 0.0)

        # In-place passes over the one (S, base) temporary; the op order
        # matches ``candidate_parts_batch`` exactly (bit-identity with
        # the per-slot batch is load-bearing: it fixes the RNG stream).
        deviations = filled - line_base[:, None]
        deviations -= cross_base[None, :]
        deviations += grand
        np.abs(deviations, out=deviations)
        relevant = member[None, :] & mask
        deviations *= relevant
        line_residues = deviations.sum(axis=1)
        line_residues = np.where(
            line_counts > 0, line_residues / np.maximum(line_counts_f, 1.0), 0.0
        )

        add_volumes = volume + line_counts_f
        remove_volumes = volume - line_counts_f
        add_residues = (
            volume * residue + line_counts_f * line_residues
        ) / np.maximum(add_volumes, 1.0)
        remove_residues = np.maximum(
            (volume * residue - line_counts_f * line_residues)
            / np.maximum(remove_volumes, 1.0),
            0.0,
        )
        new_volumes = np.where(removing, remove_volumes, add_volumes)
        new_residues = np.where(removing, remove_residues, add_residues)

        untouched = line_counts == 0
        new_volumes = np.where(untouched, volume, new_volumes)
        new_residues = np.where(untouched, residue, new_residues)
        emptied = removing & ~untouched & (remove_volumes <= 0)
        new_volumes = np.where(emptied, 0.0, new_volumes)
        new_residues = np.where(emptied, 0.0, new_residues)
        line_residues = np.where(untouched | emptied, 0.0, line_residues)

        w = state.work
        if w is not None:
            w.batch_evals += 1
            w.toggle_evals += line_counts.size
            w.cells_scanned += int(line_counts.sum())
        return LaneScores(
            new_residues=new_residues,
            new_volumes=new_volumes.astype(np.int64),
            line_residues=line_residues,
            line_counts=line_counts,
            width=int(member.sum()),
        )

    # -- exact: sorted-prefix SAD over centred residuals --------------
    def exact_lane(
        self,
        state: "_State",
        kind: str,
        c: int,
        sel: Optional[np.ndarray] = None,
        ctx: Optional["ExactContext"] = None,
    ) -> LaneScores:
        """True after-toggle residue of every slot, without rescans.

        Derivation (row lane; column lanes run the same code on the
        transposed state).  Toggling row ``i`` leaves every retained
        row's mean ``a_r`` unchanged; the member columns' means become
        ``b'_j = (S_j +- d_ij) / (n_j +- 1)`` and the grand mean
        ``g' = T' / V'`` -- all available from the cached sufficient
        statistics.  A retained cell's residual is then
        ``|E_rj - t'_j|`` with ``E_rj = d_rj - a_r`` and
        ``t'_j = b'_j - g'``: a sum of absolute deviations about a
        pivot, answered for all candidates at once from each column's
        sorted residuals + prefix sums.  The toggled row's own cells
        contribute ``+-sum_j |E_ij - t'_j|`` on top.

        The candidate-independent half (gathers, bases, sorted table)
        lives in :meth:`exact_context` and may be passed in via ``ctx``
        to amortise it across several builds of one cluster epoch.
        ``sel`` restricts the candidate block to a subset of slots (in
        ``sel`` order): every per-candidate value is bit-identical to
        the corresponding entry of the full lane, because all candidate
        arrays are C-contiguous row blocks and every per-candidate
        reduction runs over one contiguous length-``m`` row either way.
        """
        if ctx is None:
            ctx = self.exact_context(state, kind, c)
        volume = ctx.volume
        residue = ctx.residue
        m = ctx.m
        if sel is None:
            removing = ctx.cand_member
            line_sums = ctx.line_sums
            line_counts = ctx.line_counts
            line_counts_f = ctx.line_counts_f
        else:
            removing = ctx.cand_member[sel]
            line_sums = ctx.line_sums[sel]
            line_counts = ctx.line_counts[sel]
            line_counts_f = ctx.line_counts_f[sel]
        n_out = line_counts.size

        lcpos = line_counts > 0
        rem_volumes = volume - line_counts
        emptied = removing & lcpos & (rem_volumes <= 0)
        active = lcpos & ~emptied  # == ~(untouched | emptied)

        w = state.work
        if w is not None:
            w.batch_evals += 1
            w.lane_builds += 1
            w.toggle_evals += n_out
            w.cells_scanned += int(line_counts.sum())

        # One branch-free volume pass covers every inactive case too: an
        # untouched line has line_counts == 0 on both sides (volume
        # survives), and an emptied removal has rem_volumes == 0 (every
        # specified cell of the cluster sat on the toggled line).
        new_volumes = np.where(removing, rem_volumes, volume + line_counts)
        new_residues = np.where(emptied, 0.0, residue)
        if m == 0 or not active.any():
            return LaneScores(
                new_residues=new_residues,
                new_volumes=new_volumes,
                line_residues=np.zeros(n_out),
                line_counts=line_counts,
                width=m,
            )

        sign = np.where(removing, -1.0, 1.0)
        # C-contiguous gathers of the base-member columns, full or
        # ``sel``-restricted: either way each candidate occupies one
        # contiguous length-m row, so every per-candidate reduction
        # accumulates identically (bit for bit) in both shapes.
        jidx = ctx.jidx
        if sel is None:
            sub_filled = ctx.filled.take(jidx, axis=1)    # (n_out, m)
            sub_mask_f = ctx.mask.take(jidx, axis=1).astype(np.float64)
        else:
            cells = np.ix_(sel, jidx)
            sub_filled = ctx.filled[cells]
            sub_mask_f = ctx.mask[cells].astype(np.float64)
        base_counts_f = ctx.base_counts_f

        lden = np.maximum(line_counts_f, 1.0)
        line_base = line_sums / lden

        # Centred residuals of every line against its own mean.
        # ``filled`` is zero at unspecified cells, so masking happens
        # once, where each consumer needs it.
        centred = sub_filled - line_base[:, None]         # (n_out, m)

        # The toggled line's own frozen-bases residue (the r-residue
        # admission input -- same definition as the estimate lane).
        # In-place passes over one temporary, same op order.
        dev = centred - ctx.cross_base[None, :]
        dev += ctx.grand0
        np.abs(dev, out=dev)
        dev *= sub_mask_f
        line_residues = np.where(active, dev.sum(axis=1) / lden, 0.0)

        table = ctx.table
        prefix = ctx.prefix
        col_off = ctx.col_off
        n = table.shape[1]

        # Candidate-specific bases, all candidates at once.  The int
        # volumes convert exactly (far below 2**53), so the float view
        # is the same value the sign-fold arithmetic used to produce;
        # the +-1 membership folds are one sign-broadcast multiply each
        # (``x * -1.0 == -x`` bitwise), no bool/int broadcast casts.
        new_vol_f = new_volumes.astype(np.float64)        # (n_out,)
        denom_v = np.maximum(new_vol_f, 1.0)
        grand_new = (ctx.total + sign * line_sums) / denom_v
        sign_col = sign[:, None]
        base_new_counts = sign_col * sub_mask_f
        base_new_counts += base_counts_f
        base_new_sums = sign_col * sub_filled
        base_new_sums += ctx.base_sub_sums
        # ``base / max(count, 1)`` then a rare explicit zero where the
        # base line lost its last specified cell: the same values as the
        # branchless np.where form, without its full-size select pass.
        pivots = base_new_sums / np.maximum(base_new_counts, 1.0)
        dead = base_new_counts <= 0
        if dead.any():
            pivots[dead] = 0.0
        pivots -= grand_new[:, None]                      # (n_out, m)

        # Rank of each candidate's pivot in each base line's sorted
        # residuals (count of residuals strictly below the pivot).  Both
        # strategies produce the same integer ranks; the cost of each is
        # its Python-level dispatch count, so pick the shorter loop:
        # with fewer member lines than base lines (column lanes)
        # accumulate one whole-lane comparison per member line,
        # otherwise binary-search each base line's sorted row (m calls
        # of n_out queries -- m is small for row lanes).  The compare
        # operands are copied contiguous first: strided broadcast/needle
        # inner loops cost more than the copies.
        if n <= m:
            tab_rows = np.ascontiguousarray(table.T)      # (n, m)
            p = np.zeros((n_out, m), dtype=np.int64)
            for r in range(n):
                p += tab_rows[r] < pivots
        else:
            pivots_t = np.ascontiguousarray(pivots.T)     # (m, n_out)
            p = np.empty((n_out, m), dtype=np.intp)
            pt = p.T
            for j in range(m):
                pt[j] = table[j].searchsorted(pivots_t[j], side="left")
        # SAD of each base line's sorted residuals about each
        # candidate's pivot: sad_j = t*(2p - cnt) + total_j - 2*prefix[p],
        # accumulated in place (same op tree as the spelled-out form).
        pre = prefix.take(col_off + p)                    # (n_out, m)
        q = 2.0 * p
        q -= base_counts_f
        q *= pivots
        pre *= 2.0
        np.subtract(ctx.col_totals, pre, out=pre)
        q += pre
        sad = q.sum(axis=1)

        # The toggled line's own cells: added lines contribute them,
        # removed lines' contributions leave the member-line SAD.
        own = centred - pivots
        np.abs(own, out=own)
        own *= sub_mask_f
        own_sums = own.sum(axis=1)

        np.multiply(own_sums, sign, out=own_sums)
        own_sums += sad
        candidate_res = np.maximum(own_sums / denom_v, 0.0)
        new_residues = np.where(active, candidate_res, new_residues)
        return LaneScores(
            new_residues=new_residues,
            new_volumes=new_volumes,
            line_residues=line_residues,
            line_counts=line_counts,
            width=m,
        )

    # -- exact: one candidate, lane-identical arithmetic ---------------
    def exact_context(
        self, state: "_State", kind: str, c: int
    ) -> "ExactContext":
        """Candidate-independent half of a scalar exact evaluation.

        Everything here depends only on the cluster's current state, so
        the engine caches one context per (kind, cluster) modification
        epoch and amortises the O(V log n) table build over every
        :meth:`exact_one` of the epoch.
        """
        if kind == ROW:
            filled, mask = state.filled, state.mask
            cand_member = state.row_member[c]
            base_member = state.col_member[c]
            line_sums = state.row_sums[c]
            line_counts = state.row_counts[c]
            line_counts_f = state.row_counts_f[c]
            base_sums_all, base_counts_all = state.col_sums[c], state.col_counts[c]
        else:
            filled, mask = state.filled_T, state.mask_T
            cand_member = state.col_member[c]
            base_member = state.row_member[c]
            line_sums = state.col_sums[c]
            line_counts = state.col_counts[c]
            line_counts_f = state.col_counts_f[c]
            base_sums_all, base_counts_all = state.row_sums[c], state.row_counts[c]

        volume = int(state.volumes[c])
        residue = float(state.residues[c])
        jidx = np.flatnonzero(base_member)
        m = jidx.size

        w = state.work
        if w is not None:
            w.residue_evals += 1
            w.cells_scanned += volume

        ctx = ExactContext()
        ctx.filled = filled
        ctx.mask = mask
        ctx.cand_member = cand_member
        ctx.line_sums = line_sums
        ctx.line_counts = line_counts
        ctx.line_counts_f = line_counts_f
        ctx.volume = volume
        ctx.residue = residue
        ctx.jidx = jidx
        ctx.m = m
        if m == 0:
            return ctx

        base_sub_sums = base_sums_all[jidx]
        base_sub_counts = base_counts_all[jidx]
        base_counts_f = base_sub_counts.astype(np.float64)
        ctx.base_sub_sums = base_sub_sums
        ctx.base_counts_f = base_counts_f
        ctx.cross_base = np.where(
            base_sub_counts > 0,
            base_sub_sums / np.maximum(base_counts_f, 1.0),
            0.0,
        )
        # The cluster total is exactly the sum of its member base sums.
        total = float(base_sub_sums.sum())
        ctx.total = total
        ctx.grand0 = total / volume if volume else 0.0

        # Sorted residual table of the member lines, one (contiguous)
        # row per member of the base axis; +inf-padded so every base
        # line's specified residuals occupy its sorted prefix.  The inf
        # padding may leak into the prefix tail, but every read sits at
        # a rank <= the line's specified count, before the first inf.
        ridx = np.flatnonzero(cand_member)
        n = ridx.size
        cells = np.ix_(ridx, jidx)
        mem_filled = filled[cells]                        # (n, m)
        mem_mask = mask[cells]
        mem_base = line_sums[ridx] / np.maximum(line_counts_f[ridx], 1.0)
        mem_centred = mem_filled - mem_base[:, None]
        table = np.ascontiguousarray(
            np.where(mem_mask, mem_centred, np.inf).T
        )                                                 # (m, n)
        table.sort(axis=1)
        prefix = np.zeros((m, n + 1))
        np.cumsum(table, axis=1, out=prefix[:, 1:])
        col_n = base_sub_counts.astype(np.intp)
        col_off = np.arange(m) * (n + 1)
        ctx.table = table
        ctx.prefix = prefix
        ctx.col_off = col_off
        ctx.col_totals = prefix.take(col_off + col_n)
        return ctx

    def exact_one(
        self,
        state: "_State",
        kind: str,
        index: int,
        c: int,
        ctx: Optional["ExactContext"] = None,
    ) -> Tuple[float, int, float]:
        """Exact after-toggle score of a single candidate.

        Returns ``(new_residue, new_volume, line_residue)`` --
        **bit-identical** to the ``index`` entries of
        :meth:`exact_lane`'s output arrays.  Every expression mirrors
        the lane's op tree exactly (same sorted-prefix SAD formula, same
        reduction shapes and layouts), so the engine may serve a consult
        from either path interchangeably; the lazy-vs-eager run-identity
        test in ``tests/test_gain_engine.py`` depends on it.  With a
        cached ``ctx`` the cost is O(m) -- cheaper than the lane's O(S)
        candidate block whenever only a few of the S slots are consulted
        before the cluster changes again.
        """
        if ctx is None:
            ctx = self.exact_context(state, kind, c)
        volume = ctx.volume
        residue = ctx.residue
        line_count = int(ctx.line_counts[index])
        removing = bool(ctx.cand_member[index])
        rem_volume = volume - line_count
        emptied = removing and line_count > 0 and rem_volume <= 0
        active = line_count > 0 and not emptied
        new_volume = rem_volume if removing else volume + line_count

        w = state.work
        if w is not None:
            w.toggle_evals += 1
            w.cells_scanned += line_count

        m = ctx.m
        if m == 0 or not active:
            return (0.0 if emptied else residue), new_volume, 0.0

        jidx = ctx.jidx
        row_filled = ctx.filled[index].take(jidx)         # (m,) contiguous
        row_mask_f = ctx.mask[index].take(jidx).astype(np.float64)

        lden = max(float(ctx.line_counts_f[index]), 1.0)
        line_base = float(ctx.line_sums[index]) / lden
        centred = row_filled - line_base                  # (m,)
        dev = centred - ctx.cross_base
        dev += ctx.grand0
        np.abs(dev, out=dev)
        dev *= row_mask_f
        # The lane's per-candidate reductions run over one contiguous
        # length-m row each (ctx gathers are C-ordered), so the plain
        # 1-D pairwise sum here is the same accumulation, bit for bit.
        line_residue = float(dev.sum()) / lden

        sign = -1.0 if removing else 1.0
        denom_v = max(float(new_volume), 1.0)
        grand_new = (ctx.total + sign * float(ctx.line_sums[index])) / denom_v
        bnc = ctx.base_counts_f + sign * row_mask_f
        bns = ctx.base_sub_sums + sign * row_filled
        pivots = np.where(bnc > 0, bns / np.maximum(bnc, 1.0), 0.0)
        pivots -= grand_new                               # (m,)

        # Strict rank of the pivot per member line -- one broadcast
        # count (== the lane's accumulate/searchsorted ranks).
        p = (ctx.table < pivots[:, None]).sum(axis=1)
        pre = ctx.prefix.take(ctx.col_off + p)
        q = 2.0 * p
        q -= ctx.base_counts_f
        q *= pivots
        pre *= 2.0
        np.subtract(ctx.col_totals, pre, out=pre)
        q += pre
        sad = q.sum()

        own = centred - pivots
        np.abs(own, out=own)
        own *= row_mask_f
        own_sum = own.sum()
        own_sum = own_sum * sign
        own_sum += sad
        new_residue = float(np.maximum(own_sum / denom_v, 0.0))
        return new_residue, new_volume, line_residue


class ExactContext:
    """Cluster-epoch scratch of :meth:`ResidueBackend.exact_one`.

    Built by :meth:`ResidueBackend.exact_context`; valid until the
    cluster's modification stamp moves (the engine keys its cache on
    exactly that).  ``m == 0`` contexts carry only the header fields --
    every candidate of such a cluster takes the early-out path.
    """

    __slots__ = (
        "filled", "mask", "cand_member", "line_sums", "line_counts",
        "line_counts_f", "volume", "residue", "jidx", "m",
        "base_sub_sums", "base_counts_f", "cross_base", "total", "grand0",
        "table", "prefix", "col_off", "col_totals",
    )


#: Known scoring backends by name, immutable by design: ``repro.core``
#: holds no runtime-mutable module state (lint rule DCL006).  A new
#: measure (e.g. the fuzzy-lagged coherence of the ROADMAP) is either
#: added to this table in its PR or injected directly through
#: ``GainEngine(..., backend=...)`` -- the protocol, not the table, is
#: the extension point.
SCORING_BACKENDS: Mapping[str, Type] = MappingProxyType(
    {"residue": ResidueBackend}
)


def get_scoring_backend(name: str) -> Type:
    try:
        return SCORING_BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(SCORING_BACKENDS))
        raise KeyError(
            f"unknown scoring backend {name!r}; registered: {known}"
        ) from None


# -- vectorised policy -------------------------------------------------

def gain_lane(
    old_residue: float,
    old_volume: int,
    new_residues: np.ndarray,
    new_volumes: np.ndarray,
    residue_target: Optional[float],
    line_residues: np.ndarray,
    is_addition: np.ndarray,
) -> np.ndarray:
    """Vector form of :func:`repro.core.floc._gain` over one lane.

    Branch for branch the same ladder (property-tested against the
    scalar), collapsed to two ``np.where`` overlays: the misfit branch
    (highest priority) over the feasibility branch over the reduction
    default.  Every arithmetic expression is bit-equal to the scalar
    code's -- additions only commute, the +-1 adjustments fold to
    ``x + (+-1.0)``, and a bool addend contributes exactly ``1.0``.
    """
    if residue_target is None:
        return old_residue - new_residues
    scale = max(old_residue, residue_target)
    reduction = (old_residue - new_residues) / scale
    feasible = new_residues <= residue_target
    if old_residue > residue_target:
        f_val = 2.0 + reduction
    else:
        f_val = (new_volumes - old_volume) / (old_volume + 1.0)
        f_val += is_addition  # the +1.0 admission bonus for additions
    gains = np.where(feasible, f_val, reduction)
    misfit = line_residues > residue_target
    mis_val = reduction + np.where(is_addition, -1.0, 1.0)
    return np.where(misfit, mis_val, gains)


def _structural_bounds(
    constraints: Constraints, kind: str, n: int, m: int
) -> Tuple[bool, bool]:
    """Cluster-local blocking: structural floor + Cons_v volume bounds.

    These depend only on the acted cluster's shape, so the whole lane
    shares two scalar verdicts ``(removal_blocked, addition_blocked)``
    -- usually both false, letting the caller skip the mask entirely.
    """
    if kind == ROW:
        rem_rows, rem_cols = n - 1, m
        add_cells = (n + 1) * m
    else:
        rem_rows, rem_cols = n, m - 1
        add_cells = n * (m + 1)
    rem_cells = rem_rows * rem_cols
    removal_blocked = (
        rem_rows < constraints.min_rows or rem_cols < constraints.min_cols
    )
    if constraints.min_volume is not None and rem_cells < constraints.min_volume:
        removal_blocked = True
    addition_blocked = (
        constraints.max_volume is not None and add_cells > constraints.max_volume
    )
    return removal_blocked, addition_blocked


def _overlap_blocked(
    state: "_State", constraints: Constraints, kind: str, c: int
) -> np.ndarray:
    """Vector form of ``Constraints._overlap_worsens`` over one lane.

    Valid only while the *whole* state is frozen (ordering time): the
    verdict depends on every other cluster, so it cannot be cached in a
    per-cluster lane.
    """
    max_overlap = constraints.max_overlap
    assert max_overlap is not None
    row_c, col_c = state.row_member[c], state.col_member[c]
    n, m = int(row_c.sum()), int(col_c.sum())
    old_cells = n * m
    if kind == ROW:
        member = row_c
        new_extent = n + np.where(member, -1, 1)
        new_cells = new_extent * m
    else:
        member = col_c
        new_extent = m + np.where(member, -1, 1)
        new_cells = n * new_extent
    delta = np.where(member, -1, 1)
    blocked = np.zeros(member.size, dtype=bool)
    for other in range(state.k):
        if other == c:
            continue
        other_rows = state.row_member[other]
        other_cols = state.col_member[other]
        shared_rows = int((row_c & other_rows).sum())
        shared_cols = int((col_c & other_cols).sum())
        old_shared = shared_rows * shared_cols
        if kind == ROW:
            new_shared = np.where(
                other_rows, (shared_rows + delta) * shared_cols, old_shared
            )
        else:
            new_shared = np.where(
                other_cols, shared_rows * (shared_cols + delta), old_shared
            )
        other_cells = int(other_rows.sum()) * int(other_cols.sum())
        new_smaller = np.minimum(new_cells, other_cells)
        relevant = (new_shared > 0) & (new_smaller > 0)
        new_fraction = new_shared / np.maximum(new_smaller, 1)
        old_smaller = min(old_cells, other_cells)
        old_fraction = old_shared / old_smaller if old_smaller else 0.0
        blocked |= (
            relevant
            & (new_fraction > max_overlap)
            & (new_fraction > old_fraction + 1e-12)
        )
    return blocked


# -- the engine --------------------------------------------------------

#: Ski-rental threshold of the lazy exact path: after this many scalar
#: ``exact_one`` evaluations of one cluster within one modification
#: epoch, the engine stops renting and buys the full lane (a lane build
#: costs a handful of scalar evals; most epochs see far fewer consults).
_LAZY_PROMOTE = 7

#: Candidate-block width of windowed exact lane rebuilds.  When the
#: sweep's consult order is registered (:meth:`GainEngine.begin_sweep`),
#: a dirtied wide lane is rebuilt only for the next ``_BLOCK`` slots in
#: consult order -- the candidate block is the expensive half of a lane
#: build, and on action-dense sweeps only a handful of its S entries
#: are ever consulted before the cluster changes again.
_BLOCK = 128


class _LaneSet:
    """Per-kind cache of lanes: scores, gains, per-cluster versions."""

    __slots__ = (
        "scores", "raw", "proxy", "versions", "move",
        "best_gain", "rev_seen", "lazy", "ctx",
        "full", "win_start", "win_end", "win_floor",
    )

    def __init__(self, k: int, size: int) -> None:
        self.scores: List[Optional[LaneScores]] = [None] * k
        self.raw = np.full((k, size), BLOCKED_GAIN)
        self.proxy: Optional[np.ndarray] = None
        self.versions = np.full(k, -1, dtype=np.int64)
        self.move = self.raw
        self.best_gain: Optional[np.ndarray] = None
        #: Global state revision this set was last synced against -- an
        #: O(1) scalar check that skips the per-cluster stamp compare on
        #: the (common) consults where nothing changed.
        self.rev_seen = -1
        #: Clusters whose lane rebuild is deferred: cluster -> number of
        #: scalar ``exact_one`` evaluations served this epoch (their
        #: ``raw`` rows are BLOCKED_GAIN-filled; consults merge scalar
        #: evals in).  Only ever populated on exact move lanes of a
        #: minority kind -- see ``GainEngine._lazy_kinds``.
        self.lazy: Dict[int, int] = {}
        #: Cached ``ExactContext`` per deferred/windowed cluster,
        #: dropped with the epoch (same keying as ``versions``).
        self.ctx: Dict[int, "ExactContext"] = {}
        #: Block-window bookkeeping (consult-position space, see
        #: ``GainEngine.begin_sweep``): a cluster's lane entries are
        #: valid either everywhere (``full``) or on the half-open
        #: position window ``[win_start, win_end)`` of the registered
        #: sweep order.  ``win_floor`` is the smallest pending window
        #: end -- the O(1) "does any window expire by position t?"
        #: check of the block consult path.
        self.full = np.zeros(k, dtype=bool)
        self.win_start = np.zeros(k, dtype=np.intp)
        self.win_end = np.zeros(k, dtype=np.intp)
        self.win_floor = 0


class GainEngine:
    """Scores all candidate actions of a sweep from cached lanes.

    One engine serves one :func:`~repro.core.floc._phase2` call.  Lanes
    are rebuilt lazily when the state's per-cluster modification stamp
    moves past the cached version -- a performed action therefore costs
    two lane rebuilds (its cluster's row and column lanes) at the next
    consult instead of a full sweep rescore.
    """

    def __init__(
        self,
        state: "_State",
        constraints: Constraints,
        alpha: float,
        residue_target: Optional[float],
        gain_mode: str,
        tracer: Tracer = NULL_TRACER,
        backend: Optional[ScoringBackend] = None,
    ) -> None:
        self.state = state
        self.constraints = constraints
        self.alpha = alpha
        self.residue_target = residue_target
        self.fast_mode = gain_mode == "fast"
        self.tracer = tracer
        self.backend: ScoringBackend = (
            backend if backend is not None else ResidueBackend()
        )
        n_rows = state.row_member.shape[1]
        n_cols = state.col_member.shape[1]
        self._sizes = {ROW: n_rows, COL: n_cols}
        self._move = {ROW: _LaneSet(state.k, n_rows), COL: _LaneSet(state.k, n_cols)}
        if self.fast_mode:
            self._order = self._move
        else:
            self._order = {
                ROW: _LaneSet(state.k, n_rows),
                COL: _LaneSet(state.k, n_cols),
            }
        #: Cross-cluster / exact-occupancy checks that cannot be cached
        #: per lane; verified per consulted candidate instead.
        self._scalar_constraints = (
            constraints.max_overlap is not None
            or constraints.require_row_coverage
            or constraints.require_col_coverage
        )
        self._expensive = self._scalar_constraints or alpha > 0.0
        #: Memo of the "already violating alpha" healing rule, keyed by
        #: the cluster's modification stamp.
        self._alpha_memo: Dict[int, Tuple[int, bool]] = {}
        #: Kinds whose exact move lanes are rebuilt *lazily*: a stale
        #: cluster's slots are scored one-at-a-time by ``exact_one`` at
        #: consult time instead of eagerly all-S-at-once.  Worth it only
        #: for a *minority* kind (lane width <= 1/4 of all slots):
        #: consulted proportionally rarely, so a lane epoch often ends
        #: after a handful of consults and the eager build is wasted.
        #: Majority/wide kinds stay eager -- their epochs serve enough
        #: consults that per-consult scalar merging (and per-epoch
        #: :class:`ExactContext` sorted-table builds) costs more than
        #: the one amortised lane build.  Exact cheap-path mode only --
        #: fast mode's lanes fix the RNG stream (bit-identity), and the
        #: expensive path's ordered consult walk wants whole columns.
        has_scalar = hasattr(self.backend, "exact_one") and hasattr(
            self.backend, "exact_context"
        )
        self._ctx_capable = has_scalar
        if self.fast_mode or self._expensive or not has_scalar:
            self._lazy_kinds: frozenset = frozenset()
        else:
            total = n_rows + n_cols
            self._lazy_kinds = frozenset(
                kind for kind, size in self._sizes.items()
                if size * 4 <= total
            )
        #: Per-kind consult order of the current sweep (and its inverse,
        #: slot index -> consult position), registered by
        #: :meth:`begin_sweep`.  ``None`` disables block windows for the
        #: kind -- the safe default for direct ``best_action`` callers.
        self._seq: Dict[str, Optional[np.ndarray]] = {ROW: None, COL: None}
        self._pos: Dict[str, Optional[np.ndarray]] = {ROW: None, COL: None}
        from .floc import _gain  # deferred: floc imports this module
        self._scalar_gain = _gain

    # -- lane maintenance ----------------------------------------------
    def _member(self, kind: str, c: int) -> np.ndarray:
        return self.state.row_member[c] if kind == ROW else self.state.col_member[c]

    def _build_lane(
        self,
        lanes: _LaneSet,
        kind: str,
        c: int,
        exact: bool,
        sel: Optional[np.ndarray] = None,
        ctx: Optional["ExactContext"] = None,
    ) -> None:
        state = self.state
        if exact:
            scores = self.backend.exact_lane(state, kind, c, sel=sel, ctx=ctx)
        else:
            assert sel is None  # block windows are exact-mode only
            scores = self.backend.estimate_lane(state, kind, c)
        member = self._member(kind, c)
        # ``width`` already counts the base axis; only the toggled axis
        # needs a fresh popcount.
        if kind == ROW:
            n, m = int(member.sum()), scores.width
        else:
            n, m = scores.width, int(member.sum())
        removing = member if sel is None else member[sel]
        gains = gain_lane(
            float(state.residues[c]),
            int(state.volumes[c]),
            scores.new_residues,
            scores.new_volumes,
            self.residue_target,
            scores.line_residues,
            ~removing,
        )
        rb, ab = _structural_bounds(self.constraints, kind, n, m)
        if rb or ab:
            blocked = np.where(removing, rb, ab)
            gains = np.where(blocked, BLOCKED_GAIN, gains)
        if sel is None:
            lanes.scores[c] = scores
            lanes.raw[c] = gains
            lanes.full[c] = True
            lanes.win_start[c] = 0
            lanes.win_end[c] = lanes.raw.shape[1]
            if self.alpha > 0.0:
                if lanes.proxy is None:
                    lanes.proxy = np.zeros_like(lanes.raw, dtype=bool)
                # The cheap occupancy proxy: a joining line must itself
                # meet alpha on the cluster's current extent.
                lanes.proxy[c] = (
                    ~removing
                    & (scores.width > 0)
                    & (scores.line_counts < self.alpha * scores.width)
                )
        else:
            # Scatter the block into the cluster's full-size store; the
            # entries outside the window keep stale values that the
            # block consult path never reads.
            store = lanes.scores[c]
            assert store is not None  # first builds are always full
            store.new_residues[sel] = scores.new_residues
            store.new_volumes[sel] = scores.new_volumes
            lanes.raw[c][sel] = gains
        lanes.versions[c] = state.stamp[c]

    def _ensure(self, lanes: _LaneSet, kind: str, exact: bool) -> None:
        if lanes.rev_seen == self.state.rev:
            return
        lanes.rev_seen = self.state.rev
        stale = np.flatnonzero(lanes.versions != self.state.stamp)
        if stale.size == 0:
            return
        defer = exact and kind in self._lazy_kinds
        for c in stale:
            ci = int(c)
            if defer and lanes.versions[ci] != -1:
                # Rent before buying: blank the row and let consults
                # score this cluster's slots scalar-at-a-time (initial
                # builds stay eager -- every slot is about to be
                # consulted by the first sweeps).
                lanes.raw[ci].fill(BLOCKED_GAIN)
                lanes.scores[ci] = None
                lanes.versions[ci] = self.state.stamp[ci]
                lanes.lazy[ci] = 0
                lanes.ctx.pop(ci, None)
                continue
            self._build_lane(lanes, kind, ci, exact)
            lanes.lazy.pop(ci, None)
            lanes.ctx.pop(ci, None)
        if self.alpha > 0.0 and self.fast_mode and lanes.proxy is not None:
            lanes.move = np.where(lanes.proxy, BLOCKED_GAIN, lanes.raw)
        else:
            lanes.move = lanes.raw
        lanes.best_gain = None

    def invalidate_all(self) -> None:
        """Drop every cached lane (testing hook; normal invalidation is
        driven by the state's modification stamps)."""
        for lanes in self._move.values():
            lanes.versions.fill(-1)
            lanes.rev_seen = -1
            lanes.lazy.clear()
            lanes.ctx.clear()
            lanes.full.fill(False)
            lanes.win_end.fill(0)
            lanes.win_floor = 0
        for lanes in self._order.values():
            lanes.versions.fill(-1)
            lanes.rev_seen = -1
            lanes.lazy.clear()
            lanes.ctx.clear()

    def begin_sweep(self, order: Sequence[Tuple[str, int]]) -> None:
        """Register a sweep's consult order, enabling block windows.

        ``order`` must be the exact sequence of ``(kind, index)`` slots
        the caller will pass to :meth:`best_action`, each slot exactly
        once -- :func:`~repro.core.floc._phase2` consults the ordered
        slots front to back, so a dirtied wide lane needs scores only
        for the *next* ``_BLOCK`` consult positions, not all S slots.
        Applies to exact cheap-path move lanes of non-lazy kinds wide
        enough to amortise the window bookkeeping; every other path
        (fast mode, the expensive constraint walk, direct consults
        without a registered order) keeps full builds.  Scores are
        bit-identical either way (the block evaluator is an exact slice
        of the full lane), so enabling windows never changes results.
        """
        if self.fast_mode or self._expensive or not self._ctx_capable:
            return
        per_kind: Dict[str, List[int]] = {ROW: [], COL: []}
        for kind, index in order:
            per_kind[kind].append(index)
        for kind in (ROW, COL):
            size = self._sizes[kind]
            seq_list = per_kind[kind]
            if (
                kind in self._lazy_kinds
                or size < _BLOCK + _BLOCK // 2
                or len(seq_list) != size
            ):
                self._seq[kind] = None
                continue
            seq = np.asarray(seq_list, dtype=np.intp)
            pos = np.full(size, -1, dtype=np.intp)
            pos[seq] = np.arange(size, dtype=np.intp)
            if (pos < 0).any():  # not a permutation of every slot
                self._seq[kind] = None
                continue
            self._seq[kind] = seq
            self._pos[kind] = pos
            lanes = self._move[kind]
            # The new order voids every window (positions renumbered);
            # full lanes stay valid -- their entries cover any order.
            lanes.win_start.fill(0)
            lanes.win_end.fill(0)
            lanes.win_floor = 0

    # -- consult: best action for one slot -----------------------------
    def best_action(
        self, kind: str, index: int
    ) -> Optional[Tuple[int, float, int, float]]:
        """Highest-gain unblocked action of one slot, or ``None``.

        Same contract as the scalar ``_best_action`` it replaces:
        negative gains are eligible (the caller's ``mandatory_moves``
        policy decides whether they are performed), ties go to the
        lowest cluster index.
        """
        lanes = self._move[kind]
        if (
            not self.fast_mode
            and not self._expensive
            and self._seq[kind] is not None
        ):
            return self._best_action_block(lanes, kind, index)
        self._ensure(lanes, kind, exact=not self.fast_mode)
        if not self._expensive:
            if lanes.lazy:
                return self._best_action_lazy(lanes, kind, index)
            best_gain = lanes.best_gain
            if best_gain is None:
                # Elementwise max over the k lanes is a fast contiguous
                # reduce; the winning cluster index is only needed for
                # the one consulted slot, so a k-element argmax at
                # consult time (same lowest-index tie rule) beats a full
                # (k, S) argmax here.
                best_gain = lanes.best_gain = lanes.move.max(axis=0)
            gain = float(best_gain[index])
            if self.tracer.enabled:
                blocked = int((lanes.move[:, index] == BLOCKED_GAIN).sum())
                if blocked:
                    self.tracer.inc("actions_blocked_by_constraint", blocked)
            if gain == BLOCKED_GAIN:
                return None
            c = int(np.argmax(lanes.move[:, index]))
            scores = lanes.scores[c]
            assert scores is not None
            return (
                c,
                float(scores.new_residues[index]),
                int(scores.new_volumes[index]),
                gain,
            )
        column = lanes.move[:, index]
        if self.tracer.enabled:
            blocked = int((column == BLOCKED_GAIN).sum())
            if blocked:
                self.tracer.inc("actions_blocked_by_constraint", blocked)
        for c in np.argsort(-column, kind="stable"):
            gain = float(column[c])
            if gain == BLOCKED_GAIN:
                break
            if self._consult_blocked(kind, index, int(c)):
                if self.tracer.enabled:
                    self.tracer.inc("actions_blocked_by_constraint")
                continue
            scores = lanes.scores[int(c)]
            assert scores is not None
            return (
                int(c),
                float(scores.new_residues[index]),
                int(scores.new_volumes[index]),
                gain,
            )
        return None

    def _best_action_lazy(
        self, lanes: _LaneSet, kind: str, index: int
    ) -> Optional[Tuple[int, float, int, float]]:
        """Cheap-path consult with lazily-deferred clusters in the lane.

        Fresh clusters answer from the cached lane (their deferred
        peers' rows are BLOCKED_GAIN, so they never shadow); each
        deferred cluster is scored for this one slot by ``exact_one``
        with the identical arithmetic, so the merged column -- and
        therefore the chosen action -- is bit-for-bit what an eager
        rebuild would have produced.
        """
        state = self.state
        column = lanes.move[:, index].copy()
        details: Dict[int, Tuple[float, int]] = {}
        for c in sorted(lanes.lazy):
            count = lanes.lazy[c] + 1
            if count >= _LAZY_PROMOTE:
                # Consulted often this epoch: buy the lane after all.
                self._build_lane(lanes, kind, c, exact=True)
                del lanes.lazy[c]
                lanes.ctx.pop(c, None)
                lanes.best_gain = None
                column[c] = lanes.move[c, index]
                continue
            lanes.lazy[c] = count
            ctx = lanes.ctx.get(c)
            if ctx is None:
                ctx = lanes.ctx[c] = self.backend.exact_context(state, kind, c)
            new_res, new_vol, line_res = self.backend.exact_one(
                state, kind, index, c, ctx
            )
            details[c] = (new_res, new_vol)
            removing = bool(self._member(kind, c)[index])
            n = int(state.row_member[c].sum())
            m = int(state.col_member[c].sum())
            rb, ab = _structural_bounds(self.constraints, kind, n, m)
            if rb if removing else ab:
                column[c] = BLOCKED_GAIN
                continue
            column[c] = self._scalar_gain(
                float(state.residues[c]),
                int(state.volumes[c]),
                new_res,
                new_vol,
                self.residue_target,
                line_res,
                not removing,
            )
        if self.tracer.enabled:
            blocked = int((column == BLOCKED_GAIN).sum())
            if blocked:
                self.tracer.inc("actions_blocked_by_constraint", blocked)
        gain = float(column.max())
        if gain == BLOCKED_GAIN:
            return None
        c = int(np.argmax(column))
        if c in details:
            new_res, new_vol = details[c]
        else:
            scores = lanes.scores[c]
            assert scores is not None
            new_res = float(scores.new_residues[index])
            new_vol = int(scores.new_volumes[index])
        return c, new_res, new_vol, gain

    def _best_action_block(
        self, lanes: _LaneSet, kind: str, index: int
    ) -> Optional[Tuple[int, float, int, float]]:
        """Cheap-path consult against block-windowed lanes.

        Invariant: after :meth:`_resync_block`, every cluster's lane is
        valid at the consulted position (full, or inside its window),
        so the column read below is exactly what an eager full rebuild
        would have produced.  Positions only move forward within a
        sweep (the :meth:`begin_sweep` contract), so entries behind the
        current position are never read again.
        """
        state = self.state
        t = int(self._pos[kind][index])
        if lanes.rev_seen != state.rev or t >= lanes.win_floor:
            self._resync_block(lanes, kind, t)
        column = lanes.move[:, index]
        if self.tracer.enabled:
            blocked = int((column == BLOCKED_GAIN).sum())
            if blocked:
                self.tracer.inc("actions_blocked_by_constraint", blocked)
        gain = float(column.max())
        if gain == BLOCKED_GAIN:
            return None
        c = int(np.argmax(column))
        scores = lanes.scores[c]
        assert scores is not None
        return (
            c,
            float(scores.new_residues[index]),
            int(scores.new_volumes[index]),
            gain,
        )

    def _resync_block(self, lanes: _LaneSet, kind: str, t: int) -> None:
        """Make every cluster's lane valid at consult position ``t``.

        Stale clusters rebuild a fresh ``_BLOCK``-wide window starting
        at ``t`` (reusing the epoch's cached :class:`ExactContext` when
        only the window expired); initial builds stay full -- the first
        sweeps consult every slot.
        """
        state = self.state
        lanes.rev_seen = state.rev
        seq = self._seq[kind]
        assert seq is not None
        size = seq.size
        stamp = state.stamp
        floor = size + 1  # sentinel: no pending window expiry
        for c in range(state.k):
            if lanes.versions[c] == stamp[c]:
                if lanes.full[c]:
                    continue
                end = int(lanes.win_end[c])
                if t < end:
                    if end < floor:
                        floor = end
                    continue
            else:
                lanes.ctx.pop(c, None)
            if lanes.versions[c] == -1 or lanes.scores[c] is None:
                self._build_lane(lanes, kind, c, exact=True)
                continue
            ctx = lanes.ctx.get(c)
            if ctx is None:
                ctx = lanes.ctx[c] = self.backend.exact_context(
                    state, kind, c
                )
            end = min(t + _BLOCK, size)
            self._build_lane(
                lanes, kind, c, exact=True, sel=seq[t:end], ctx=ctx
            )
            lanes.full[c] = False
            lanes.win_start[c] = t
            lanes.win_end[c] = end
            if end < floor:
                floor = end
        lanes.win_floor = floor
        lanes.best_gain = None

    # -- consult-time (non-cacheable) blocking --------------------------
    def _consult_blocked(self, kind: str, index: int, c: int) -> bool:
        state = self.state
        is_removal = bool(self._member(kind, c)[index])
        if self._scalar_constraints:
            if self.constraints.blocks(
                state.row_member[c], state.col_member[c], kind, index,
                is_removal, c, state.row_member, state.col_member,
            ):
                return True
        if self.alpha > 0.0:
            if self.fast_mode and not is_removal:
                return False  # the cheap proxy already ran in the lane
            return self._alpha_blocked(kind, index, c)
        return False

    def _alpha_blocked(self, kind: str, index: int, c: int) -> bool:
        """Exact Definition-3.1 occupancy with the healing rule.

        A candidate violating alpha is blocked only when the cluster
        currently satisfies alpha -- an already-violating cluster (e.g.
        a fresh random seed) may keep moving until it heals.
        """
        state = self.state
        if toggle_occupancy_ok(
            state.mask, state.row_member[c], state.col_member[c],
            kind, index, self.alpha,
        ):
            return False
        memo = self._alpha_memo.get(c)
        stamp = int(state.stamp[c])
        if memo is not None and memo[0] == stamp:
            return memo[1]
        rows = np.flatnonzero(state.row_member[c])
        cols = np.flatnonzero(state.col_member[c])
        if rows.size == 0 or cols.size == 0:
            verdict = True
        else:
            sub_mask = state.mask[np.ix_(rows, cols)]
            row_frac = sub_mask.sum(axis=1) / cols.size
            col_frac = sub_mask.sum(axis=0) / rows.size
            verdict = bool(
                (row_frac >= self.alpha).all() and (col_frac >= self.alpha).all()
            )
        self._alpha_memo[c] = (stamp, verdict)
        return verdict

    # -- ordering: per-slot best-gain estimates -------------------------
    def ordering_gains(self, slots: Sequence[Tuple[str, int]]) -> List[float]:
        """Frozen-bases best gain of every slot, for the weighted/greedy
        schedulers.

        The state is frozen while an order is built, so the
        cross-cluster constraint masks are applied lane-wide here (the
        one place that is sound).  Estimates come from the estimate
        lanes regardless of gain mode -- ordering is only a heuristic,
        exactly as in the scalar implementation.
        """
        best: Dict[str, np.ndarray] = {}
        for kind in (ROW, COL):
            lanes = self._order[kind]
            self._ensure(lanes, kind, exact=False)
            gains = lanes.raw
            if self.alpha > 0.0 and lanes.proxy is not None:
                gains = np.where(lanes.proxy, BLOCKED_GAIN, gains)
            if self._scalar_constraints or self.alpha > 0.0:
                gains = gains.copy()
            state = self.state
            for c in range(state.k):
                member = self._member(kind, c)
                if self.constraints.max_overlap is not None:
                    overlap = _overlap_blocked(state, self.constraints, kind, c)
                    gains[c, overlap] = BLOCKED_GAIN
                if kind == ROW and self.constraints.require_row_coverage:
                    cover = state.row_member.sum(axis=0)
                    gains[c, member & (cover <= 1)] = BLOCKED_GAIN
                if kind == COL and self.constraints.require_col_coverage:
                    cover = state.col_member.sum(axis=0)
                    gains[c, member & (cover <= 1)] = BLOCKED_GAIN
                if self.alpha > 0.0:
                    # Removals get the exact occupancy check even at
                    # ordering time (removals can break alpha in ways
                    # the joining-line proxy cannot see).
                    for index in np.flatnonzero(member):
                        if gains[c, index] == BLOCKED_GAIN:
                            continue
                        if self._alpha_blocked(kind, int(index), c):
                            gains[c, index] = BLOCKED_GAIN
            best[kind] = gains.max(axis=0)
        return [float(best[kind][index]) for kind, index in slots]
