"""Data matrix substrate with first-class missing values.

The delta-cluster model (Yang et al., ICDE 2002, Section 3) operates on an
``M x N`` matrix ``D`` whose rows are objects and whose columns are
attributes.  Entries may be *unspecified* (a viewer who never rated a movie,
a gene never measured under a condition).  This module provides
:class:`DataMatrix`, a thin, validated wrapper around a float ``numpy``
array in which ``NaN`` marks a missing entry, plus the handful of
whole-matrix transforms the paper relies on (e.g. the logarithm transform
that turns amplification coherence into shifting coherence).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["DataMatrix"]


class DataMatrix:
    """An ``M x N`` real-valued matrix in which ``NaN`` means "unspecified".

    Parameters
    ----------
    values:
        Anything convertible to a 2-D ``float64`` array.  ``NaN`` entries
        are treated as missing.  The array is copied so later mutation of
        the caller's buffer cannot corrupt the matrix.
    row_labels, col_labels:
        Optional human-readable names (e.g. gene names, movie titles).
        Lengths must match the matrix shape when given.

    Examples
    --------
    >>> m = DataMatrix([[1.0, 2.0], [float("nan"), 4.0]])
    >>> m.shape
    (2, 2)
    >>> m.n_specified
    3
    """

    def __init__(
        self,
        values: Iterable,
        row_labels: Optional[Sequence[str]] = None,
        col_labels: Optional[Sequence[str]] = None,
    ) -> None:
        array = np.array(values, dtype=np.float64, copy=True)
        if array.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got ndim={array.ndim}")
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ValueError(f"matrix must be non-empty, got shape {array.shape}")
        if np.isinf(array).any():
            raise ValueError("matrix entries must be finite or NaN (missing)")
        self._values = array
        self._mask = ~np.isnan(array)
        self._row_labels = self._check_labels(row_labels, array.shape[0], "row")
        self._col_labels = self._check_labels(col_labels, array.shape[1], "col")

    @staticmethod
    def _check_labels(
        labels: Optional[Sequence[str]], expected: int, kind: str
    ) -> Optional[tuple]:
        if labels is None:
            return None
        labels = tuple(str(label) for label in labels)
        if len(labels) != expected:
            raise ValueError(
                f"{kind}_labels has {len(labels)} entries, expected {expected}"
            )
        return labels

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying ``float64`` array (``NaN`` = missing).

        The array is shared, not copied; callers must treat it as
        read-only.  Algorithms in this package index it heavily, so
        handing out a view keeps the hot paths allocation-free.
        """
        return self._values

    @property
    def mask(self) -> np.ndarray:
        """Boolean array, ``True`` where the entry is specified."""
        return self._mask

    @property
    def shape(self) -> tuple:
        return self._values.shape

    @property
    def n_rows(self) -> int:
        """Number of objects (``M`` in the paper)."""
        return self._values.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of attributes (``N`` in the paper)."""
        return self._values.shape[1]

    @property
    def n_specified(self) -> int:
        """Number of specified (non-missing) entries in the whole matrix."""
        return int(self._mask.sum())

    @property
    def density(self) -> float:
        """Fraction of entries that are specified, in ``[0, 1]``."""
        return self.n_specified / self._values.size

    @property
    def row_labels(self) -> Optional[tuple]:
        return self._row_labels

    @property
    def col_labels(self) -> Optional[tuple]:
        return self._col_labels

    # ------------------------------------------------------------------
    # Slicing / transforms
    # ------------------------------------------------------------------
    def submatrix(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Return a copy of the submatrix selected by ``rows`` x ``cols``.

        The result is a plain array (with ``NaN`` for missing entries);
        use it for inspection and tests, not for the hot algorithm paths
        which index :attr:`values` directly.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        return self._values[np.ix_(rows, cols)]

    def row_occupancy(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Per-row fraction of specified entries within ``rows`` x ``cols``.

        This is the quantity ``|J'_i| / |J|`` from Definition 3.1.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if len(cols) == 0:
            return np.ones(len(rows))
        sub_mask = self._mask[np.ix_(rows, cols)]
        return sub_mask.sum(axis=1) / len(cols)

    def col_occupancy(self, rows: Sequence[int], cols: Sequence[int]) -> np.ndarray:
        """Per-column fraction of specified entries within ``rows`` x ``cols``.

        This is the quantity ``|I'_j| / |I|`` from Definition 3.1.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if len(rows) == 0:
            return np.ones(len(cols))
        sub_mask = self._mask[np.ix_(rows, cols)]
        return sub_mask.sum(axis=0) / len(rows)

    def log_transform(self, offset: float = 0.0) -> "DataMatrix":
        """Return ``log(values + offset)`` as a new matrix.

        Section 3 of the paper: amplification (multiplicative) coherence
        reduces to shifting (additive) coherence after taking logarithms.
        All specified entries must be positive after the offset is added.
        """
        shifted = self._values + offset
        specified = shifted[self._mask]
        if (specified <= 0).any():
            raise ValueError(
                "log_transform requires all specified entries to be positive; "
                "pass a larger offset"
            )
        out = np.full_like(self._values, np.nan)
        out[self._mask] = np.log(specified)
        return DataMatrix(out, self._row_labels, self._col_labels)

    def with_mask(self, keep: np.ndarray) -> "DataMatrix":
        """Return a copy where entries with ``keep == False`` become missing."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self._values.shape:
            raise ValueError(
                f"keep mask shape {keep.shape} != matrix shape {self._values.shape}"
            )
        out = np.where(keep, self._values, np.nan)
        return DataMatrix(out, self._row_labels, self._col_labels)

    def drop_missing_rows(self, min_fraction: float) -> "DataMatrix":
        """Return a matrix keeping only rows specified on >= ``min_fraction``."""
        frac = self._mask.sum(axis=1) / self.n_cols
        keep = np.flatnonzero(frac >= min_fraction)
        if len(keep) == 0:
            raise ValueError("no rows survive the occupancy filter")
        labels = None
        if self._row_labels is not None:
            labels = [self._row_labels[i] for i in keep]
        return DataMatrix(self._values[keep], labels, self._col_labels)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"DataMatrix(shape={self.shape}, "
            f"specified={self.n_specified}/{self._values.size})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataMatrix):
            return NotImplemented
        if self.shape != other.shape:
            return False
        both_missing = ~self._mask & ~other._mask
        both_equal = np.isclose(self._values, other._values, equal_nan=True)
        return bool(np.all(both_missing | both_equal))

    def __hash__(self) -> int:  # matrices are mutable-ish: not hashable
        raise TypeError("DataMatrix is not hashable")
