"""Core delta-cluster model and the FLOC mining algorithm."""

from .actions import Action, evaluate_toggle, toggle_occupancy_ok
from .cluster import DeltaCluster
from .clustering import Clustering
from .constraints import Constraints
from .floc import FlocResult, floc
from .matrix import DataMatrix
from .mining import (
    MiningResult,
    mine_delta_clusters,
    pool_mining_results,
    restart_seed,
    run_restart,
)
from .ordering import (
    action_slots,
    fixed_order,
    greedy_order,
    make_order,
    random_order,
    weighted_order,
)
from .predict import impute, predict_entry, prediction_error
from .residue import (
    compute_bases,
    mean_abs_residue,
    mean_squared_residue,
    residue_matrix,
    submatrix_residue,
)
from .rng import RngLike, resolve_rng
from .seeding import (
    axis_seeds,
    bernoulli_seeds,
    mixed_seeds,
    seeds_from_clusters,
    volume_seeds,
)

__all__ = [
    "Action",
    "Clustering",
    "Constraints",
    "DataMatrix",
    "DeltaCluster",
    "FlocResult",
    "MiningResult",
    "RngLike",
    "action_slots",
    "axis_seeds",
    "bernoulli_seeds",
    "compute_bases",
    "evaluate_toggle",
    "fixed_order",
    "floc",
    "greedy_order",
    "impute",
    "make_order",
    "mine_delta_clusters",
    "predict_entry",
    "prediction_error",
    "mean_abs_residue",
    "mean_squared_residue",
    "mixed_seeds",
    "pool_mining_results",
    "random_order",
    "residue_matrix",
    "resolve_rng",
    "restart_seed",
    "run_restart",
    "seeds_from_clusters",
    "submatrix_residue",
    "toggle_occupancy_ok",
    "volume_seeds",
    "weighted_order",
]
