"""The delta-cluster model object (Definitions 3.1-3.5 of the paper).

A :class:`DeltaCluster` is an immutable pair ``(I, J)`` of row indices and
column indices of a :class:`~repro.core.matrix.DataMatrix`.  Its quality
statistics (volume, residue, occupancy, diameter) are computed on demand
against a matrix -- the cluster itself stores no values, which lets one
cluster description be evaluated against transformed variants of the same
matrix (e.g. before/after a log transform).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from .matrix import DataMatrix
from .residue import mean_abs_residue, residue_matrix

__all__ = ["DeltaCluster"]


def _normalize_indices(indices: Iterable[int], limit: int, kind: str) -> Tuple[int, ...]:
    out = sorted({int(i) for i in indices})
    if out and (out[0] < 0 or out[-1] >= limit):
        raise IndexError(f"{kind} index out of range [0, {limit}): {out[0]}..{out[-1]}")
    return tuple(out)


class DeltaCluster:
    """An immutable delta-cluster ``(I, J)``.

    Parameters
    ----------
    rows:
        Iterable of object (row) indices -- the set ``I``.
    cols:
        Iterable of attribute (column) indices -- the set ``J``.

    Duplicate indices are collapsed; order is normalized to ascending so
    equal clusters compare and hash equal.
    """

    __slots__ = ("_rows", "_cols")

    def __init__(self, rows: Iterable[int], cols: Iterable[int]) -> None:
        # Bounds are validated lazily against whichever matrix the cluster
        # is evaluated on; here we only require non-negative integers.
        self._rows = tuple(sorted({int(i) for i in rows}))
        self._cols = tuple(sorted({int(j) for j in cols}))
        if self._rows and self._rows[0] < 0:
            raise IndexError(f"negative row index: {self._rows[0]}")
        if self._cols and self._cols[0] < 0:
            raise IndexError(f"negative column index: {self._cols[0]}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def rows(self) -> Tuple[int, ...]:
        """The object index set ``I`` (sorted, duplicate-free)."""
        return self._rows

    @property
    def cols(self) -> Tuple[int, ...]:
        """The attribute index set ``J`` (sorted, duplicate-free)."""
        return self._cols

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    @property
    def n_cols(self) -> int:
        return len(self._cols)

    @property
    def is_empty(self) -> bool:
        return not self._rows or not self._cols

    def row_set(self) -> frozenset:
        return frozenset(self._rows)

    def col_set(self) -> frozenset:
        return frozenset(self._cols)

    # ------------------------------------------------------------------
    # Statistics against a matrix
    # ------------------------------------------------------------------
    def _check(self, matrix: DataMatrix) -> None:
        if self._rows and self._rows[-1] >= matrix.n_rows:
            raise IndexError(
                f"row index {self._rows[-1]} out of range for matrix "
                f"with {matrix.n_rows} rows"
            )
        if self._cols and self._cols[-1] >= matrix.n_cols:
            raise IndexError(
                f"column index {self._cols[-1]} out of range for matrix "
                f"with {matrix.n_cols} columns"
            )

    def submatrix(self, matrix: DataMatrix) -> np.ndarray:
        """The submatrix ``D[I x J]`` (``NaN`` for missing entries)."""
        self._check(matrix)
        if self.is_empty:
            return np.empty((self.n_rows, self.n_cols))
        return matrix.submatrix(self._rows, self._cols)

    def volume(self, matrix: DataMatrix) -> int:
        """Number of specified entries in the cluster (Definition 3.2)."""
        self._check(matrix)
        if self.is_empty:
            return 0
        sub_mask = matrix.mask[np.ix_(self._rows, self._cols)]
        return int(sub_mask.sum())

    def residue(self, matrix: DataMatrix) -> float:
        """Mean absolute residue of the cluster (Definition 3.5)."""
        if self.is_empty:
            return 0.0
        return mean_abs_residue(self.submatrix(matrix))

    def residues(self, matrix: DataMatrix) -> np.ndarray:
        """Per-entry residues of the cluster submatrix (Definition 3.4)."""
        return residue_matrix(self.submatrix(matrix))

    def occupancy_ok(self, matrix: DataMatrix, alpha: float) -> bool:
        """Check the alpha-occupancy condition of Definition 3.1.

        Every row must be specified on at least ``alpha`` of the cluster's
        columns and every column on at least ``alpha`` of the cluster's
        rows.  An empty cluster vacuously satisfies any threshold.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if self.is_empty:
            return True
        row_frac = matrix.row_occupancy(self._rows, self._cols)
        col_frac = matrix.col_occupancy(self._rows, self._cols)
        return bool((row_frac >= alpha).all() and (col_frac >= alpha).all())

    def diameter(self, matrix: DataMatrix) -> float:
        """Diameter of the minimum bounding box of the cluster's points.

        Each object restricted to the cluster's attributes is a point in
        ``|J|``-dimensional space; the diameter is the length of the
        diagonal of the axis-aligned bounding box of these points
        (Section 6.1.1, Table 1).  Missing coordinates are ignored per
        dimension; a dimension with fewer than two specified values
        contributes zero extent.
        """
        if self.is_empty:
            return 0.0
        sub = self.submatrix(matrix)
        mask = ~np.isnan(sub)
        lo = np.where(mask, sub, np.inf).min(axis=0)
        hi = np.where(mask, sub, -np.inf).max(axis=0)
        extent = np.where(mask.sum(axis=0) >= 2, hi - lo, 0.0)
        return float(np.sqrt(np.square(extent).sum()))

    # ------------------------------------------------------------------
    # Relations between clusters
    # ------------------------------------------------------------------
    def entry_count(self) -> int:
        """Number of matrix cells covered (ignoring missing-ness)."""
        return self.n_rows * self.n_cols

    def overlap_entries(self, other: "DeltaCluster") -> int:
        """Number of matrix cells covered by both clusters."""
        shared_rows = len(self.row_set() & other.row_set())
        shared_cols = len(self.col_set() & other.col_set())
        return shared_rows * shared_cols

    def overlap_fraction(self, other: "DeltaCluster") -> float:
        """Shared cells divided by the smaller cluster's cell count.

        This is the quantity bounded by the Cons_o constraint; 0.0 when
        either cluster is empty.
        """
        smaller = min(self.entry_count(), other.entry_count())
        if smaller == 0:
            return 0.0
        return self.overlap_entries(other) / smaller

    def contains(self, row: int, col: int) -> bool:
        return row in self.row_set() and col in self.col_set()

    # ------------------------------------------------------------------
    # Dunders
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeltaCluster):
            return NotImplemented
        return self._rows == other._rows and self._cols == other._cols

    def __hash__(self) -> int:
        return hash((self._rows, self._cols))

    def __repr__(self) -> str:
        return f"DeltaCluster(rows={self.n_rows}, cols={self.n_cols})"
