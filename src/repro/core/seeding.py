"""Phase-1 seeding: generating the k initial clusters (Sections 4.1, 5.1).

The basic scheme includes every row and every column of the matrix in a
seed independently with probability ``p``, so a seed is expected to span
``p * M`` rows and ``p * N`` columns.  Section 5.1 observes that seeds far
from the (unknown) optimal cluster size cost extra iterations, and proposes
*mixed* seeding -- a different ``p`` per seed -- so that both large and
small embedded clusters have a nearby starting point.  The experiments of
Figures 8-9 additionally need seeds whose *volumes* follow a prescribed
(Erlang) distribution; :func:`volume_seeds` provides that.

A seed is represented as a pair of boolean membership vectors
``(row_member, col_member)`` -- the exact form FLOC's inner loop uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer

__all__ = [
    "Seed",
    "axis_seeds",
    "bernoulli_seeds",
    "mixed_seeds",
    "volume_seeds",
    "seeds_from_clusters",
]

Seed = Tuple[np.ndarray, np.ndarray]


def _ensure_minimum(
    member: np.ndarray, minimum: int, rng: np.random.Generator
) -> None:
    """Force at least ``minimum`` members by drafting random non-members.

    A seed with fewer than two rows or columns has no measurable coherence
    (its residue is identically zero), so Phase 1 never emits one.
    """
    need = minimum - int(member.sum())
    if need <= 0:
        return
    candidates = np.flatnonzero(~member)
    if need > candidates.size:
        raise ValueError(
            f"cannot build a seed with {minimum} members out of "
            f"{member.size} positions"
        )
    # In-place by documented contract: callers hand over a freshly drawn
    # membership vector they own, and -> None makes the mutation explicit.
    member[rng.choice(candidates, size=need, replace=False)] = True  # dcl: disable=DCL012


def bernoulli_seeds(
    n_rows: int,
    n_cols: int,
    k: int,
    p: float,
    rng: np.random.Generator,
    min_rows: int = 2,
    min_cols: int = 2,
    tracer: Optional[Tracer] = None,
) -> List[Seed]:
    """The paper's basic Phase 1: each row/column joins with probability p."""
    return mixed_seeds(
        n_rows, n_cols, k, [p], rng, min_rows, min_cols, tracer=tracer
    )


def axis_seeds(
    n_rows: int,
    n_cols: int,
    k: int,
    p_rows: float,
    p_cols: float,
    rng: np.random.Generator,
    min_rows: int = 2,
    min_cols: int = 2,
) -> List[Seed]:
    """Seeds with different inclusion probabilities per axis.

    This is the paper's own Table 2/3 setup -- "the average initial
    volume of each cluster is 0.05 x N [rows] and 0.2 x M [columns]" --
    which a single ``p`` cannot express.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    for label, p in (("p_rows", p_rows), ("p_cols", p_cols)):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"{label} must be in (0, 1], got {p}")
    if min_rows > n_rows or min_cols > n_cols:
        raise ValueError(
            f"matrix {n_rows}x{n_cols} too small for {min_rows}x{min_cols} seeds"
        )
    seeds: List[Seed] = []
    for __ in range(k):
        row_member = rng.random(n_rows) < p_rows
        col_member = rng.random(n_cols) < p_cols
        _ensure_minimum(row_member, min_rows, rng)
        _ensure_minimum(col_member, min_cols, rng)
        seeds.append((row_member, col_member))
    return seeds


def mixed_seeds(
    n_rows: int,
    n_cols: int,
    k: int,
    p_values: Sequence[float],
    rng: np.random.Generator,
    min_rows: int = 2,
    min_cols: int = 2,
    tracer: Optional[Tracer] = None,
) -> List[Seed]:
    """Mixed-p seeding (Section 5.1): cycle through ``p_values`` per seed.

    ``tracer`` (any scheme) times the draw as a ``seed_draw`` span and
    counts ``seeds_generated``; it draws no random numbers itself.
    """
    if tracer is None:
        tracer = NULL_TRACER
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not p_values:
        raise ValueError("p_values must not be empty")
    for p in p_values:
        if not 0.0 < p <= 1.0:
            raise ValueError(f"inclusion probability must be in (0, 1], got {p}")
    if min_rows > n_rows or min_cols > n_cols:
        raise ValueError(
            f"matrix {n_rows}x{n_cols} too small for {min_rows}x{min_cols} seeds"
        )
    seeds: List[Seed] = []
    with tracer.span("seed_draw", scheme="mixed", k=k):
        for index in range(k):
            p = p_values[index % len(p_values)]
            row_member = rng.random(n_rows) < p
            col_member = rng.random(n_cols) < p
            _ensure_minimum(row_member, min_rows, rng)
            _ensure_minimum(col_member, min_cols, rng)
            seeds.append((row_member, col_member))
    tracer.inc("seeds_generated", k)
    return seeds


def volume_seeds(
    n_rows: int,
    n_cols: int,
    volumes: Sequence[float],
    rng: np.random.Generator,
    min_rows: int = 2,
    min_cols: int = 2,
    tracer: Optional[Tracer] = None,
) -> List[Seed]:
    """Seeds whose expected volumes match ``volumes`` (one seed per entry).

    Used by the Figure 8/9 experiments where seed volumes follow an Erlang
    distribution.  Each target volume ``v`` is split into a row count and a
    column count proportional to the matrix aspect ratio, then that many
    distinct random rows/columns are drawn.
    """
    if tracer is None:
        tracer = NULL_TRACER
    seeds: List[Seed] = []
    with tracer.span("seed_draw", scheme="volume", k=len(volumes)):
        for volume in volumes:
            if volume <= 0:
                raise ValueError(f"seed volume must be positive, got {volume}")
            aspect = n_rows / n_cols
            rows_target = int(round(np.sqrt(volume * aspect)))
            rows_target = min(max(rows_target, min_rows), n_rows)
            cols_target = int(round(volume / rows_target))
            cols_target = min(max(cols_target, min_cols), n_cols)
            row_member = np.zeros(n_rows, dtype=bool)
            col_member = np.zeros(n_cols, dtype=bool)
            row_member[rng.choice(n_rows, size=rows_target, replace=False)] = True
            col_member[rng.choice(n_cols, size=cols_target, replace=False)] = True
            seeds.append((row_member, col_member))
    tracer.inc("seeds_generated", len(volumes))
    return seeds


def seeds_from_clusters(
    n_rows: int,
    n_cols: int,
    clusters: Sequence,
) -> List[Seed]:
    """Turn explicit :class:`~repro.core.cluster.DeltaCluster`-like objects
    (anything with ``rows`` and ``cols`` index sequences) into seeds.

    Lets callers warm-start FLOC from a previous result or from domain
    knowledge.
    """
    seeds: List[Seed] = []
    for cluster in clusters:
        row_member = np.zeros(n_rows, dtype=bool)
        col_member = np.zeros(n_cols, dtype=bool)
        rows = np.asarray(list(cluster.rows), dtype=np.intp)
        cols = np.asarray(list(cluster.cols), dtype=np.intp)
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise IndexError("cluster row index out of matrix range")
        if cols.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise IndexError("cluster column index out of matrix range")
        row_member[rows] = True
        col_member[cols] = True
        seeds.append((row_member, col_member))
    return seeds
