"""A clustering: an ordered collection of delta-clusters over one matrix.

FLOC optimizes the *average residue* across the ``k`` clusters it maintains
(Section 4.1, footnote 5 of the paper).  :class:`Clustering` bundles the
clusters with the matrix they were mined from and exposes the aggregate
statistics the paper reports: average residue, total volume, coverage, and
per-cluster summaries (Table 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from .cluster import DeltaCluster
from .matrix import DataMatrix

__all__ = ["Clustering"]


class Clustering:
    """An immutable set of delta-clusters tied to the matrix they describe."""

    def __init__(self, matrix: DataMatrix, clusters: Iterable[DeltaCluster]) -> None:
        self._matrix = matrix
        self._clusters: Tuple[DeltaCluster, ...] = tuple(clusters)
        for cluster in self._clusters:
            cluster._check(matrix)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[DeltaCluster]:
        return iter(self._clusters)

    def __getitem__(self, index: int) -> DeltaCluster:
        return self._clusters[index]

    @property
    def matrix(self) -> DataMatrix:
        return self._matrix

    @property
    def clusters(self) -> Tuple[DeltaCluster, ...]:
        return self._clusters

    # ------------------------------------------------------------------
    # Aggregate statistics
    # ------------------------------------------------------------------
    def residues(self) -> List[float]:
        """Residue of each cluster, in order."""
        return [c.residue(self._matrix) for c in self._clusters]

    def average_residue(self) -> float:
        """The FLOC objective: arithmetic mean of the cluster residues.

        An empty clustering has average residue 0.
        """
        if not self._clusters:
            return 0.0
        return float(np.mean(self.residues()))

    def total_volume(self) -> int:
        """Sum of cluster volumes (the "aggregated volume" of Sec. 6.1.2)."""
        return sum(c.volume(self._matrix) for c in self._clusters)

    def coverage_matrix(self) -> np.ndarray:
        """Boolean ``M x N`` array: cell covered by at least one cluster."""
        covered = np.zeros(self._matrix.shape, dtype=bool)
        for cluster in self._clusters:
            if not cluster.is_empty:
                covered[np.ix_(cluster.rows, cluster.cols)] = True
        return covered

    def covered_rows(self) -> frozenset:
        """Set of row indices that belong to at least one cluster."""
        out: set = set()
        for cluster in self._clusters:
            out.update(cluster.rows)
        return frozenset(out)

    def covered_cols(self) -> frozenset:
        """Set of column indices that belong to at least one cluster."""
        out: set = set()
        for cluster in self._clusters:
            out.update(cluster.cols)
        return frozenset(out)

    def row_coverage(self) -> float:
        """Fraction of objects covered by some cluster (the Cons_c metric)."""
        return len(self.covered_rows()) / self._matrix.n_rows

    def col_coverage(self) -> float:
        """Fraction of attributes covered by some cluster."""
        return len(self.covered_cols()) / self._matrix.n_cols

    def max_pairwise_overlap(self) -> float:
        """Largest overlap fraction between any pair of clusters (Cons_o)."""
        best = 0.0
        for i, first in enumerate(self._clusters):
            for second in self._clusters[i + 1:]:
                best = max(best, first.overlap_fraction(second))
        return best

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> List[Dict[str, float]]:
        """Per-cluster statistics matching Table 1 of the paper.

        Keys: ``volume``, ``n_rows`` (viewers/genes), ``n_cols``
        (movies/conditions), ``residue``, ``diameter``.
        """
        rows = []
        for cluster in self._clusters:
            rows.append(
                {
                    "volume": cluster.volume(self._matrix),
                    "n_rows": cluster.n_rows,
                    "n_cols": cluster.n_cols,
                    "residue": cluster.residue(self._matrix),
                    "diameter": cluster.diameter(self._matrix),
                }
            )
        return rows

    def drop_empty(self) -> "Clustering":
        """Return a clustering without empty clusters."""
        return Clustering(
            self._matrix, (c for c in self._clusters if not c.is_empty)
        )

    def sorted_by_residue(self) -> "Clustering":
        """Return a clustering with clusters ordered best (lowest) first."""
        ordered = sorted(self._clusters, key=lambda c: c.residue(self._matrix))
        return Clustering(self._matrix, ordered)

    def __repr__(self) -> str:
        return (
            f"Clustering(k={len(self._clusters)}, "
            f"avg_residue={self.average_residue():.4f})"
        )
