"""User constraints on delta-clusterings (Sections 3 and 4.3 of the paper).

The paper lists three optional constraint families:

``Cons_o`` (overlap)
    The overlap between any pair of clusters may not exceed a threshold
    (e.g. fully non-overlapping clusters with a threshold of 0).
``Cons_c`` (coverage)
    Every object (and/or attribute) must remain covered by some cluster --
    e.g. every customer in a collaborative-filtering deployment.
``Cons_v`` (volume)
    Cluster volumes must stay inside given bounds, e.g. to guarantee
    statistical significance.

FLOC enforces constraints by *blocking* violating actions during an
iteration ("the gain is assigned to -inf", Section 4.3) and by requiring
Phase-1 seeds to comply.  :class:`Constraints` bundles the thresholds;
:meth:`Constraints.blocks` is the hot-path check FLOC calls per candidate
action.

Structural minimums (``min_rows``/``min_cols``, default 2x2) are part of
the same mechanism: a cluster with fewer than two rows or columns has
residue identically zero, so without the guard the average-residue
objective would collapse every cluster to a sliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .actions import COL, ROW

__all__ = ["Constraints"]


@dataclass(frozen=True)
class Constraints:
    """Thresholds for Cons_o / Cons_c / Cons_v plus structural minimums.

    Attributes
    ----------
    max_overlap:
        Maximum allowed pairwise overlap fraction (shared cells divided by
        the smaller cluster's cell count); ``None`` disables Cons_o.
    require_row_coverage / require_col_coverage:
        When ``True``, an action may not leave a row (column) uncovered by
        every cluster (Cons_c).  Only rows/columns covered at seeding time
        are protected -- FLOC cannot conjure coverage that never existed.
    min_volume / max_volume:
        Bounds on the number of *cells* (|I| x |J|) of each cluster
        (Cons_v); ``None`` disables a bound.  ``min_volume`` is only
        enforced against shrinking actions so growth toward the bound
        stays possible.  Beware: enforcing a volume *floor* during the
        search forbids the shrink-to-core cleanup FLOC relies on, so a
        seed that starts as junk stays junk-at-the-floor; prefer
        filtering small clusters from the *result* (e.g. via
        :func:`repro.core.mining.mine_delta_clusters`'s ``min_volume``)
        unless the floor genuinely must hold mid-search.
    min_rows / min_cols:
        Structural floor; actions shrinking a cluster below it are blocked.
    """

    max_overlap: Optional[float] = None
    require_row_coverage: bool = False
    require_col_coverage: bool = False
    min_volume: Optional[int] = None
    max_volume: Optional[int] = None
    min_rows: int = 2
    min_cols: int = 2

    def __post_init__(self) -> None:
        if self.max_overlap is not None and not 0.0 <= self.max_overlap <= 1.0:
            raise ValueError(
                f"max_overlap must be in [0, 1], got {self.max_overlap}"
            )
        if self.min_volume is not None and self.min_volume < 0:
            raise ValueError(f"min_volume must be >= 0, got {self.min_volume}")
        if self.max_volume is not None and self.max_volume <= 0:
            raise ValueError(f"max_volume must be > 0, got {self.max_volume}")
        if (
            self.min_volume is not None
            and self.max_volume is not None
            and self.min_volume > self.max_volume
        ):
            raise ValueError(
                f"min_volume {self.min_volume} > max_volume {self.max_volume}"
            )
        if self.min_rows < 1 or self.min_cols < 1:
            raise ValueError("min_rows and min_cols must be at least 1")

    # ------------------------------------------------------------------
    def blocks(
        self,
        row_member: np.ndarray,
        col_member: np.ndarray,
        kind: str,
        index: int,
        is_removal: bool,
        cluster: int,
        all_row_members: np.ndarray,
        all_col_members: np.ndarray,
    ) -> bool:
        """Return ``True`` when the action must be blocked.

        Parameters mirror FLOC's internal state: ``row_member`` /
        ``col_member`` are the acted cluster's membership vectors *before*
        the toggle, ``all_row_members`` / ``all_col_members`` are the
        ``k x M`` / ``k x N`` membership matrices of the whole clustering.
        """
        n_member_rows = int(row_member.sum())
        n_member_cols = int(col_member.sum())
        if kind == ROW:
            new_rows = n_member_rows + (-1 if is_removal else 1)
            new_cols = n_member_cols
        else:
            new_rows = n_member_rows
            new_cols = n_member_cols + (-1 if is_removal else 1)

        # Structural floor.
        if is_removal and (new_rows < self.min_rows or new_cols < self.min_cols):
            return True

        # Cons_v: cell-count bounds.
        new_cells = new_rows * new_cols
        if self.max_volume is not None and not is_removal:
            if new_cells > self.max_volume:
                return True
        if self.min_volume is not None and is_removal:
            if new_cells < self.min_volume:
                return True

        # Cons_c: coverage.  Removing x from its only cluster is blocked.
        if is_removal:
            if kind == ROW and self.require_row_coverage:
                if int(all_row_members[:, index].sum()) <= 1:
                    return True
            if kind == COL and self.require_col_coverage:
                if int(all_col_members[:, index].sum()) <= 1:
                    return True

        # Cons_o: pairwise overlap cap.  Additions can raise the shared
        # block; removals can raise the *fraction* by shrinking the
        # smaller cluster while the shared block stays, so both are
        # checked.  Only worsening moves are blocked -- an already
        # over-the-cap pair (e.g. from a fresh reseed) may keep moving as
        # long as it does not get worse, so it can heal.
        if self.max_overlap is not None:
            if self._overlap_worsens(
                row_member, col_member, kind, index, is_removal, cluster,
                all_row_members, all_col_members, new_cells,
            ):
                return True
        return False

    def _overlap_worsens(
        self,
        row_member: np.ndarray,
        col_member: np.ndarray,
        kind: str,
        index: int,
        is_removal: bool,
        cluster: int,
        all_row_members: np.ndarray,
        all_col_members: np.ndarray,
        new_cells: int,
    ) -> bool:
        """Would the toggle push some pairwise overlap past the cap AND
        beyond its current value?"""
        k = all_row_members.shape[0]
        old_cells = int(row_member.sum()) * int(col_member.sum())
        delta = -1 if is_removal else 1
        for other in range(k):
            if other == cluster:
                continue
            other_rows = all_row_members[other]
            other_cols = all_col_members[other]
            shared_rows = int((row_member & other_rows).sum())
            shared_cols = int((col_member & other_cols).sum())
            old_shared = shared_rows * shared_cols
            if kind == ROW and other_rows[index]:
                shared_rows += delta
            elif kind == COL and other_cols[index]:
                shared_cols += delta
            new_shared = shared_rows * shared_cols
            if new_shared == 0:
                continue
            other_cells = int(other_rows.sum()) * int(other_cols.sum())
            new_smaller = min(new_cells, other_cells)
            if new_smaller == 0:
                continue
            new_fraction = new_shared / new_smaller
            if new_fraction <= self.max_overlap:
                continue
            old_smaller = min(old_cells, other_cells)
            old_fraction = (
                old_shared / old_smaller if old_smaller else 0.0
            )
            if new_fraction > old_fraction + 1e-12:
                return True
        return False

    # ------------------------------------------------------------------
    def seed_ok(self, row_member: np.ndarray, col_member: np.ndarray) -> bool:
        """Cheap per-seed validity used when generating Phase-1 clusters.

        Initial clusters "are not required [to] have low residue"
        (Section 4.3, footnote) but must respect structural and volume
        bounds.
        """
        n_rows = int(row_member.sum())
        n_cols = int(col_member.sum())
        if n_rows < self.min_rows or n_cols < self.min_cols:
            return False
        cells = n_rows * n_cols
        if self.max_volume is not None and cells > self.max_volume:
            return False
        return True
