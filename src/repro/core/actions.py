"""Actions and gains: the moves FLOC performs (Section 4.1 of the paper).

An *action* ``Action(x, c)`` toggles the membership of row (or column) ``x``
with respect to cluster ``c``: if ``x`` is in ``c`` the action removes it,
otherwise it adds it.  The *gain* of an action is the reduction of ``c``'s
residue it causes -- ``gain = r(c) - r(c after the action)`` -- so positive
gains improve the cluster and negative gains degrade it (the paper performs
negative-gain best actions too, relying on per-action snapshots to recover).

This module provides the action record plus the *exact* evaluation path:
re-computing the candidate submatrix residue from scratch, which is the
O(n*m) approach the paper itself uses (Section 4.1).  The O(m) approximate
path lives in :mod:`repro.core.floc` next to the caches it needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..obs.profiling import profiled
from .residue import mean_abs_residue

__all__ = ["ROW", "COL", "Action", "evaluate_toggle", "toggle_occupancy_ok"]

ROW = "row"
COL = "col"

# Gain assigned to blocked actions ("the gain is assigned to -inf",
# Section 4.3).
BLOCKED_GAIN = float("-inf")


@dataclass(frozen=True)
class Action:
    """A membership toggle of one row/column with respect to one cluster.

    Attributes
    ----------
    kind:
        ``"row"`` or ``"col"``.
    index:
        The row or column index being toggled.
    cluster:
        Which of the ``k`` clusters the toggle applies to.
    is_removal:
        ``True`` if the row/column is currently a member (so the action
        removes it), ``False`` if the action adds it.
    gain:
        Residue reduction the action achieves; ``-inf`` when blocked.
    """

    kind: str
    index: int
    cluster: int
    is_removal: bool
    gain: float

    def __post_init__(self) -> None:
        if self.kind not in (ROW, COL):
            raise ValueError(f"kind must be 'row' or 'col', got {self.kind!r}")

    @property
    def is_blocked(self) -> bool:
        return self.gain == BLOCKED_GAIN


def _toggled(member: np.ndarray, index: int) -> np.ndarray:
    """Return a copy of the boolean membership vector with one bit flipped."""
    out = member.copy()
    out[index] = ~out[index]
    return out


@profiled
def evaluate_toggle(
    values: np.ndarray,
    row_member: np.ndarray,
    col_member: np.ndarray,
    kind: str,
    index: int,
) -> Tuple[float, int]:
    """Exactly evaluate the cluster after toggling one row/column.

    Parameters
    ----------
    values:
        Full data matrix (``NaN`` = missing).
    row_member, col_member:
        Boolean membership vectors of the cluster being modified.
    kind, index:
        Which row or column to toggle.

    Returns
    -------
    (new_residue, new_volume):
        Mean absolute residue and specified-entry count of the candidate
        cluster.  An empty candidate has residue 0 and volume 0.
    """
    if kind == ROW:
        rows = np.flatnonzero(_toggled(row_member, index))
        cols = np.flatnonzero(col_member)
    elif kind == COL:
        rows = np.flatnonzero(row_member)
        cols = np.flatnonzero(_toggled(col_member, index))
    else:
        raise ValueError(f"kind must be 'row' or 'col', got {kind!r}")
    if rows.size == 0 or cols.size == 0:
        return 0.0, 0
    sub = values[np.ix_(rows, cols)]
    volume = int((~np.isnan(sub)).sum())
    return mean_abs_residue(sub), volume


@profiled
def toggle_occupancy_ok(
    mask: np.ndarray,
    row_member: np.ndarray,
    col_member: np.ndarray,
    kind: str,
    index: int,
    alpha: float,
) -> bool:
    """Check Definition 3.1's alpha-occupancy for the toggled cluster.

    ``mask`` is the full specified-entry boolean matrix.  Returns ``True``
    when every row of the candidate cluster is specified on at least
    ``alpha`` of its columns and vice versa.  ``alpha == 0`` always passes
    (the cheap common case is short-circuited).
    """
    if alpha <= 0.0:
        return True
    if kind == ROW:
        rows = np.flatnonzero(_toggled(row_member, index))
        cols = np.flatnonzero(col_member)
    else:
        rows = np.flatnonzero(row_member)
        cols = np.flatnonzero(_toggled(col_member, index))
    if rows.size == 0 or cols.size == 0:
        return True
    sub_mask = mask[np.ix_(rows, cols)]
    row_frac = sub_mask.sum(axis=1) / cols.size
    col_frac = sub_mask.sum(axis=0) / rows.size
    return bool((row_frac >= alpha).all() and (col_frac >= alpha).all())
