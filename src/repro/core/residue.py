"""Bases and residues: the quality measure of the delta-cluster model.

Implements Definitions 3.3-3.5 of the paper.  For a cluster submatrix the
*base* of an object is its mean over the specified entries of the cluster's
attributes, the base of an attribute is the symmetric column mean, and the
cluster base is the grand mean.  The *residue* of a specified entry is

    r_ij = d_ij - d_iJ - d_Ij + d_IJ

and the residue of the cluster is the arithmetic mean of ``|r_ij|`` over
specified entries (the paper uses the arithmetic mean; the squared mean used
by Cheng & Church biclustering is also provided for the baseline).

All functions take a raw ``float64`` array with ``NaN`` marking missing
entries.  They are written count-aware (no ``nanmean`` warnings, no NaN
poisoning) because cluster submatrices routinely contain fully-missing rows
or columns while FLOC explores.

The public primitives are ``@profiled``: call
:func:`repro.obs.enable_profiling` and :func:`repro.obs.profile_report`
to get per-function wall/CPU accounting of a run (dormant otherwise).
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

import numpy as np

from ..obs.profiling import profiled

__all__ = [
    "SubmatrixBases",
    "compute_bases",
    "residue_matrix",
    "mean_abs_residue",
    "mean_squared_residue",
    "submatrix_residue",
    "row_residues",
    "col_residues",
]


class SubmatrixBases(NamedTuple):
    """Row, column and grand means of a cluster submatrix.

    Attributes
    ----------
    row:
        Object bases ``d_iJ``, one per submatrix row (0.0 for rows with no
        specified entry).
    col:
        Attribute bases ``d_Ij``, one per submatrix column.
    grand:
        Cluster base ``d_IJ``.
    row_counts, col_counts:
        Number of specified entries per row / column.
    volume:
        Total number of specified entries (Definition 3.2).
    """

    row: np.ndarray
    col: np.ndarray
    grand: float
    row_counts: np.ndarray
    col_counts: np.ndarray
    volume: int


@profiled
def compute_bases(sub: np.ndarray) -> SubmatrixBases:
    """Compute all bases of a submatrix in one pass (Definition 3.3)."""
    mask = ~np.isnan(sub)
    filled = np.where(mask, sub, 0.0)
    row_counts = mask.sum(axis=1)
    col_counts = mask.sum(axis=0)
    volume = int(row_counts.sum())
    row_sums = filled.sum(axis=1)
    col_sums = filled.sum(axis=0)
    with np.errstate(invalid="ignore"):
        row_base = np.where(row_counts > 0, row_sums / np.maximum(row_counts, 1), 0.0)
        col_base = np.where(col_counts > 0, col_sums / np.maximum(col_counts, 1), 0.0)
    grand = float(row_sums.sum() / volume) if volume else 0.0
    return SubmatrixBases(row_base, col_base, grand, row_counts, col_counts, volume)


@profiled
def residue_matrix(sub: np.ndarray) -> np.ndarray:
    """Per-entry residues of a submatrix (Definition 3.4).

    Unspecified entries get residue 0, exactly as the definition requires.
    """
    bases = compute_bases(sub)
    mask = ~np.isnan(sub)
    raw = sub - bases.row[:, None] - bases.col[None, :] + bases.grand
    return np.where(mask, raw, 0.0)


@profiled
def mean_abs_residue(sub: np.ndarray) -> float:
    """Cluster residue: arithmetic mean of |r_ij| (Definition 3.5).

    Returns 0.0 for an empty submatrix or one with no specified entries
    (a volume-0 cluster exhibits no incoherence).
    """
    if sub.size == 0:
        return 0.0
    bases = compute_bases(sub)
    if bases.volume == 0:
        return 0.0
    mask = ~np.isnan(sub)
    raw = sub - bases.row[:, None] - bases.col[None, :] + bases.grand
    return float(np.abs(np.where(mask, raw, 0.0)).sum() / bases.volume)


@profiled
def mean_squared_residue(sub: np.ndarray) -> float:
    """Mean *squared* residue (the Cheng & Church ``H`` score).

    The paper's Definition 3.5 notes the mean "can be in the form of either
    arithmetic, geometric, or square mean as in [3]"; the square form is
    what the biclustering baseline optimizes.
    """
    if sub.size == 0:
        return 0.0
    bases = compute_bases(sub)
    if bases.volume == 0:
        return 0.0
    mask = ~np.isnan(sub)
    raw = sub - bases.row[:, None] - bases.col[None, :] + bases.grand
    return float(np.square(np.where(mask, raw, 0.0)).sum() / bases.volume)


@profiled
def submatrix_residue(
    values: np.ndarray, rows: Sequence[int], cols: Sequence[int]
) -> float:
    """Mean absolute residue of ``values[rows x cols]``.

    Convenience entry point used by the model objects; ``rows``/``cols``
    are integer indices into the full matrix.
    """
    rows = np.asarray(rows, dtype=np.intp)
    cols = np.asarray(cols, dtype=np.intp)
    if rows.size == 0 or cols.size == 0:
        return 0.0
    return mean_abs_residue(values[np.ix_(rows, cols)])


def row_residues(sub: np.ndarray) -> np.ndarray:
    """Mean |r_ij| per row of the submatrix.

    Rows with no specified entries get 0.  Used by the FLOC fast gain mode
    and by the Cheng & Church node-deletion phases.
    """
    res = np.abs(residue_matrix(sub))
    mask = ~np.isnan(sub)
    counts = mask.sum(axis=1)
    return np.where(counts > 0, res.sum(axis=1) / np.maximum(counts, 1), 0.0)


def col_residues(sub: np.ndarray) -> np.ndarray:
    """Mean |r_ij| per column of the submatrix (see :func:`row_residues`)."""
    res = np.abs(residue_matrix(sub))
    mask = ~np.isnan(sub)
    counts = mask.sum(axis=0)
    return np.where(counts > 0, res.sum(axis=0) / np.maximum(counts, 1), 0.0)
