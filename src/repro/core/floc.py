"""FLOC: FLexible Overlapped Clustering (Sections 4-5 of the paper).

FLOC approximates the ``k`` delta-clusters with the lowest average residue
by move-based local search:

Phase 1
    Generate ``k`` random seed clusters (each row/column joins a seed with
    probability ``p``; optionally a different ``p`` per seed, or seeds with
    prescribed volumes).

Phase 2
    Iterate.  Every row and every column performs its best *action* -- the
    membership toggle ``Action(x, c)`` with the largest gain among the
    ``k`` clusters -- in an order produced by the ``fixed`` / ``random`` /
    ``weighted`` scheduler (or the ``greedy`` extension).  The score is
    recorded after every action, and the best intermediate clustering of
    the iteration becomes the starting point of the next one.  The search
    stops when an iteration fails to improve on the best clustering seen
    so far (optionally followed by reseed rounds that retry dead seeds).

Behavioural switches (all documented in :func:`floc` and ablated in the
benchmarks): ``residue_target`` selects the r-residue objective instead
of the degenerate bare average residue; ``mandatory_moves`` restores the
paper's perform-even-negative rule; ``reseed_rounds`` enables restarts.

Two gain-evaluation modes are provided:

``exact`` (default)
    The true after-toggle residue of every candidate -- the quantity the
    paper recomputes from scratch per action in Section 4.1.  It is now
    produced by the batched gain engine
    (:mod:`repro.core.gain_engine`), which derives all candidates of a
    (kind, cluster) *lane* at once from the incremental sufficient
    statistics, so no candidate submatrix is ever rescanned.
``fast``
    An O(m) (resp. O(n)) approximation that freezes the cluster's bases
    while estimating the residue contribution of the toggled row/column;
    the acted cluster's exact residue is recomputed once per *performed*
    action so the objective is always tracked exactly.  This trades a
    little per-move greediness accuracy for an additional speedup and is
    benchmarked as an ablation.

Both modes consult :class:`~repro.core.gain_engine.GainEngine`, which
caches lane scores per cluster and invalidates them through the state's
per-cluster modification stamps -- see that module's docstring for the
design and DESIGN.md for the derivation.

The run is observable end to end: pass a :class:`repro.obs.Tracer` to
stream per-seed / per-action / per-iteration events into sinks (JSONL,
ring buffer, console progress) and collect metrics -- see
``docs/OBSERVABILITY.md``.  All timing goes through the tracer clock;
instrumentation is inert (and free) without a tracer and never touches
the RNG stream, so traced and untraced runs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.events import ActionEvent, IterationEvent, SeedEvent
from ..obs.perf.counters import WorkCounters
from ..obs.tracer import NULL_TRACER, Tracer
from . import gain_engine
from .actions import ROW, evaluate_toggle
from .cluster import DeltaCluster
from .clustering import Clustering
from .constraints import Constraints
from .matrix import DataMatrix
from .ordering import ORDERINGS, action_slots, make_order
from .rng import RngLike, resolve_rng
from .seeding import Seed, bernoulli_seeds, mixed_seeds

__all__ = ["FlocResult", "floc", "GAIN_MODES"]

GAIN_MODES = ("exact", "fast")

_PerformedAction = Tuple[str, int, int]  # (kind, index, cluster)


@dataclass
class FlocResult:
    """Outcome of a FLOC run.

    Attributes
    ----------
    clustering:
        The best clustering found (``best_clustering`` in the paper).
    n_iterations:
        Number of Phase-2 iterations executed, including the final
        non-improving one that triggers termination.
    initial_residue:
        Average residue of the Phase-1 seed clustering.
    history:
        Average residue of ``best_clustering`` after each iteration
        (non-increasing; the last entry repeats when the final iteration
        brought no improvement).
    iteration_times:
        Wall-clock seconds of each Phase-2 iteration, index-aligned with
        ``history`` (``len(iteration_times) == len(history)``), measured
        with the tracer clock whether or not tracing is enabled.  Summing
        it gives the pure Phase-2 time; ``elapsed_seconds`` additionally
        includes seeding and bookkeeping.
    elapsed_seconds:
        Wall-clock time of the whole run.
    converged:
        ``True`` when the run stopped because an iteration failed to
        improve (as opposed to hitting ``max_iterations``).
    n_actions:
        Total number of actions performed across all iterations.
    metrics:
        :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of the
        tracer's registry at the end of the run, or ``None`` when the run
        was not traced with metrics.  Shared tracers (e.g. one handed to
        :func:`repro.core.mining.mine_delta_clusters`) accumulate across
        runs, so the snapshot is cumulative up to this run's end.
    trace_summary:
        :meth:`~repro.obs.tracer.Tracer.summary` (event counts, span
        aggregates), or ``None`` for untraced runs.  Cumulative under a
        shared tracer, like ``metrics``.
    work:
        The :class:`~repro.obs.perf.counters.WorkCounters` the run
        counted into, or ``None`` when counting was not requested.
        Deterministic: bit-identical across runs at a fixed seed,
        wall-clock free.  When one counter object is shared across runs
        (e.g. a mining session accumulator), this is that shared,
        cumulative object -- the same sharing semantics as ``metrics``.
    """

    clustering: Clustering
    n_iterations: int
    initial_residue: float
    history: List[float] = field(default_factory=list)
    iteration_times: List[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    converged: bool = True
    n_actions: int = 0
    metrics: Optional[Dict[str, object]] = None
    trace_summary: Optional[Dict[str, object]] = None
    work: Optional[WorkCounters] = None

    @property
    def average_residue(self) -> float:
        return self.clustering.average_residue()


class _State:
    """Mutable FLOC state: membership vectors plus per-cluster statistics.

    ``row_member`` is ``k x M`` boolean, ``col_member`` is ``k x N``.
    ``residues`` and ``volumes`` always reflect the current membership
    exactly.  When ``fast`` gain evaluation is active the state also keeps,
    per cluster ``c``:

    * ``row_sums[c, i]`` / ``row_counts[c, i]`` -- sum / count of the
      specified entries of row ``i`` over *c's member columns*, for every
      row of the matrix (so evaluating any row toggle is O(1) for the row
      base), and
    * ``col_sums[c, j]`` / ``col_counts[c, j]`` -- the symmetric statistics
      over *c's member rows* for every column.

    Row toggles leave ``row_sums`` invariant and update ``col_sums`` in
    O(N); column toggles do the reverse in O(M).

    Two kinds of derived state ride along:

    * float views of the integer statistics (``volumes_f``,
      ``row_counts_f``, ``col_counts_f``) so the hot paths never repeat
      an ``astype`` conversion, and transposed contiguous copies of the
      matrix (``filled_T``, ``mask_T``) so column lanes reduce over
      contiguous memory;
    * ``stamp`` -- a per-cluster modification counter, bumped by every
      operation that can change a cluster's statistics
      (:meth:`toggle`, :meth:`refresh_cluster`, :meth:`restore`).  The
      gain engine keys its lane caches on it; it never repeats a value,
      so a cached lane is valid iff its recorded stamp still matches.
    """

    def __init__(
        self,
        values: np.ndarray,
        mask: np.ndarray,
        seeds: Sequence[Seed],
        fast: bool,
        work: Optional[WorkCounters] = None,
    ) -> None:
        self.values = values
        self.mask = mask
        self.work = work
        self.filled = np.where(mask, values, 0.0)
        self.filled_T = np.ascontiguousarray(self.filled.T)
        self.mask_T = np.ascontiguousarray(mask.T)
        self.k = len(seeds)
        self.row_member = np.array([seed[0] for seed in seeds], dtype=bool)
        self.col_member = np.array([seed[1] for seed in seeds], dtype=bool)
        self.residues = np.zeros(self.k)
        self.volumes = np.zeros(self.k, dtype=np.int64)
        self.volumes_f = np.zeros(self.k)
        self.stamp = np.zeros(self.k, dtype=np.int64)
        #: Global modification counter (sum-free companion of ``stamp``):
        #: lets the gain engine answer "did anything change?" in O(1).
        self.rev = 0
        self.fast = fast
        if fast:
            n_rows, n_cols = values.shape
            self.row_sums = np.zeros((self.k, n_rows))
            self.row_counts = np.zeros((self.k, n_rows), dtype=np.int64)
            self.row_counts_f = np.zeros((self.k, n_rows))
            self.col_sums = np.zeros((self.k, n_cols))
            self.col_counts = np.zeros((self.k, n_cols), dtype=np.int64)
            self.col_counts_f = np.zeros((self.k, n_cols))
        for c in range(self.k):
            self.refresh_cluster(c)

    # -- bookkeeping ---------------------------------------------------
    def refresh_cluster(self, c: int) -> None:
        """Recompute cluster ``c``'s exact statistics (and fast caches)."""
        rows = np.flatnonzero(self.row_member[c])
        cols = np.flatnonzero(self.col_member[c])
        if rows.size == 0 or cols.size == 0:
            self.residues[c] = 0.0
            self.volumes[c] = 0
        else:
            sub = self.values[np.ix_(rows, cols)]
            sub_mask = ~np.isnan(sub)
            self.volumes[c] = int(sub_mask.sum())
            self.residues[c] = _masked_mean_abs_residue(sub, sub_mask)
            w = self.work
            if w is not None:
                w.residue_evals += 1
                w.cells_scanned += int(self.volumes[c])
        if self.fast:
            self.row_sums[c] = self.filled[:, cols].sum(axis=1)
            self.row_counts[c] = self.mask[:, cols].sum(axis=1)
            self.col_sums[c] = self.filled[rows, :].sum(axis=0)
            self.col_counts[c] = self.mask[rows, :].sum(axis=0)
            self.row_counts_f[c] = self.row_counts[c]
            self.col_counts_f[c] = self.col_counts[c]
        self.volumes_f[c] = self.volumes[c]
        self.stamp[c] += 1
        self.rev += 1

    def toggle(self, kind: str, index: int, c: int) -> None:
        """Flip one membership bit and update the fast caches incrementally."""
        if self.work is not None:
            self.work.toggles += 1
        if kind == ROW:
            joining = not self.row_member[c, index]
            self.row_member[c, index] = joining
            if self.fast:
                sign = 1.0 if joining else -1.0
                self.col_sums[c] += sign * self.filled[index]
                self.col_counts[c] += (1 if joining else -1) * self.mask[index]
                self.col_counts_f[c] += sign * self.mask[index]
        else:
            joining = not self.col_member[c, index]
            self.col_member[c, index] = joining
            if self.fast:
                sign = 1.0 if joining else -1.0
                self.row_sums[c] += sign * self.filled[:, index]
                self.row_counts[c] += (1 if joining else -1) * self.mask[:, index]
                self.row_counts_f[c] += sign * self.mask[:, index]
        self.stamp[c] += 1
        self.rev += 1

    def snapshot(self) -> dict:
        if self.work is not None:
            self.work.snapshots += 1
        state = {
            "row_member": self.row_member.copy(),
            "col_member": self.col_member.copy(),
            "residues": self.residues.copy(),
            "volumes": self.volumes.copy(),
        }
        if self.fast:
            state["row_sums"] = self.row_sums.copy()
            state["row_counts"] = self.row_counts.copy()
            state["col_sums"] = self.col_sums.copy()
            state["col_counts"] = self.col_counts.copy()
        return state

    def restore(self, state: dict) -> None:
        if self.work is not None:
            self.work.restores += 1
        self.row_member[...] = state["row_member"]
        self.col_member[...] = state["col_member"]
        self.residues[...] = state["residues"]
        self.volumes[...] = state["volumes"]
        if self.fast:
            self.row_sums[...] = state["row_sums"]
            self.row_counts[...] = state["row_counts"]
            self.col_sums[...] = state["col_sums"]
            self.col_counts[...] = state["col_counts"]
            self.row_counts_f[...] = self.row_counts
            self.col_counts_f[...] = self.col_counts
        self.volumes_f[...] = self.volumes
        # Every cluster may have changed; stamps only ever move forward
        # so no lane cached before the restore can masquerade as fresh.
        self.stamp += 1
        self.rev += 1

    # -- gain evaluation -----------------------------------------------
    def exact_candidate(self, kind: str, index: int, c: int) -> Tuple[float, int]:
        residue, volume = evaluate_toggle(
            self.values, self.row_member[c], self.col_member[c], kind, index
        )
        w = self.work
        if w is not None:
            w.residue_evals += 1
            w.toggle_evals += 1
            w.cells_scanned += volume
        return residue, volume

    def line_residue(self, kind: str, index: int, c: int) -> float:
        """Mean |residual| of one row/column against cluster ``c``'s bases.

        Measures how well the line fits the cluster's current shifting
        pattern -- the admission test of r-residue mode (a line worse than
        the target may not join, however little it would dilute the mean).
        Returns 0.0 for a line with no specified entries on the cluster.
        """
        _, _, line_res = self._candidate_parts(kind, index, c)
        return line_res

    def fast_candidate(self, kind: str, index: int, c: int) -> Tuple[float, int]:
        """O(m) / O(n) residue estimate after toggling ``index`` in ``c``.

        Freezes the cluster's bases and folds the toggled line's residue
        contribution in (addition) or out (removal) of the volume-weighted
        mean.
        """
        new_residue, new_volume, _ = self._candidate_parts(kind, index, c)
        return new_residue, new_volume

    def candidate_parts_batch(
        self, kind: str, index: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_candidate_parts` across ALL k clusters.

        One (k x N) / (k x M) pass instead of k separate O(m) calls --
        the hot path of fast-mode FLOC, where per-call numpy overhead
        would otherwise dominate.  Returns ``(new_residues, new_volumes,
        line_residues, line_counts, widths)`` arrays of length k; the
        first three are numerically identical to the per-cluster path,
        ``line_counts`` is the number of specified entries the toggled
        line has on each cluster, and ``widths`` the cluster's extent
        along the toggled line (member column count for a row toggle) --
        exposed for missingness-aware admission experiments (see
        :func:`_gain`'s docstring for the rejected variant).
        """
        if kind == ROW:
            member = self.col_member                     # (k, N)
            line_values = self.values[index]             # (N,)
            line_mask = self.mask[index]
            base_sums = self.col_sums                    # (k, N)
            base_counts = self.col_counts
            line_sums = self.row_sums[:, index]          # (k,)
            line_counts = self.row_counts[:, index]
            line_counts_f = self.row_counts_f[:, index]
            removing = self.row_member[:, index]
        else:
            member = self.row_member                     # (k, M)
            line_values = self.values[:, index]
            line_mask = self.mask[:, index]
            base_sums = self.row_sums
            base_counts = self.row_counts
            line_sums = self.col_sums[:, index]
            line_counts = self.col_counts[:, index]
            line_counts_f = self.col_counts_f[:, index]
            removing = self.col_member[:, index]

        # Cached float views: no astype conversions on the hot path.
        volumes = self.volumes_f
        residues = self.residues

        # All denominators are >= 1 by construction, so no errstate
        # context is needed anywhere on this path.
        line_base = line_sums / np.maximum(line_counts_f, 1.0)
        cross_base = np.where(
            base_counts > 0,
            base_sums / np.maximum(base_counts, 1),
            0.0,
        )
        totals = (base_sums * member).sum(axis=1)
        counts = (base_counts * member).sum(axis=1)
        grand = np.where(counts > 0, totals / np.maximum(counts, 1), 0.0)

        filled_line = np.where(line_mask, line_values, 0.0)
        deviations = np.abs(
            filled_line[None, :]
            - line_base[:, None]
            - cross_base
            + grand[:, None]
        )
        relevant = member & line_mask[None, :]
        line_residues = np.where(relevant, deviations, 0.0).sum(axis=1)
        line_residues = np.where(
            line_counts > 0, line_residues / np.maximum(line_counts_f, 1.0), 0.0
        )

        add_volumes = volumes + line_counts_f
        remove_volumes = volumes - line_counts_f
        add_residues = (
            volumes * residues + line_counts_f * line_residues
        ) / np.maximum(add_volumes, 1.0)
        remove_residues = np.maximum(
            (volumes * residues - line_counts_f * line_residues)
            / np.maximum(remove_volumes, 1.0),
            0.0,
        )
        new_volumes = np.where(removing, remove_volumes, add_volumes)
        new_residues = np.where(removing, remove_residues, add_residues)

        # Toggling a fully-missing line never changes anything.
        untouched = line_counts == 0
        new_volumes = np.where(untouched, volumes, new_volumes)
        new_residues = np.where(untouched, residues, new_residues)
        # Removing the whole volume empties the cluster.
        emptied = removing & ~untouched & (remove_volumes <= 0)
        new_volumes = np.where(emptied, 0.0, new_volumes)
        new_residues = np.where(emptied, 0.0, new_residues)
        line_residues = np.where(untouched | emptied, 0.0, line_residues)
        widths = member.sum(axis=1)
        w = self.work
        if w is not None:
            w.batch_evals += 1
            w.toggle_evals += self.k
            w.cells_scanned += int(line_counts.sum())
        return (
            new_residues,
            new_volumes.astype(np.int64),
            line_residues,
            line_counts,
            widths,
        )

    def _candidate_parts(
        self, kind: str, index: int, c: int
    ) -> Tuple[float, int, float]:
        """(new_residue, new_volume, line_residue) of one candidate toggle."""
        volume = int(self.volumes[c])
        residue = float(self.residues[c])
        w = self.work
        if w is not None:
            w.toggle_evals += 1
            w.cells_scanned += int(
                self.row_counts[c, index] if kind == ROW
                else self.col_counts[c, index]
            )
        if kind == ROW:
            member_axis = self.col_member[c]
            line_values = self.values[index, member_axis]
            base_sums = self.col_sums[c, member_axis]
            base_counts = self.col_counts[c, member_axis]
            line_sum = float(self.row_sums[c, index])
            line_count = int(self.row_counts[c, index])
            removing = bool(self.row_member[c, index])
        else:
            member_axis = self.row_member[c]
            line_values = self.values[member_axis, index]
            base_sums = self.row_sums[c, member_axis]
            base_counts = self.row_counts[c, member_axis]
            line_sum = float(self.col_sums[c, index])
            line_count = int(self.col_counts[c, index])
            removing = bool(self.col_member[c, index])

        if line_count == 0:
            # Toggling a fully-missing line never changes the residue.
            return residue, volume, 0.0
        if removing and volume - line_count <= 0:
            return 0.0, 0, 0.0

        line_mask = ~np.isnan(line_values)
        line_base = line_sum / line_count
        with np.errstate(invalid="ignore"):
            cross_base = np.where(
                base_counts > 0, base_sums / np.maximum(base_counts, 1), 0.0
            )
        total = float(base_sums.sum())
        count = int(base_counts.sum())
        grand = total / count if count else 0.0
        deviations = np.abs(line_values - line_base - cross_base + grand)
        line_residue = float(deviations[line_mask].sum()) / line_count
        if removing:
            new_volume = volume - line_count
            new_residue = max(
                (volume * residue - line_count * line_residue) / new_volume, 0.0
            )
        else:
            new_volume = volume + line_count
            new_residue = (volume * residue + line_count * line_residue) / new_volume
        return new_residue, new_volume, line_residue


def _masked_mean_abs_residue(sub: np.ndarray, sub_mask: np.ndarray) -> float:
    """Mean |r_ij| given a pre-computed specified-entry mask."""
    volume = int(sub_mask.sum())
    if volume == 0:
        return 0.0
    filled = np.where(sub_mask, sub, 0.0)
    row_counts = sub_mask.sum(axis=1)
    col_counts = sub_mask.sum(axis=0)
    row_base = np.where(
        row_counts > 0, filled.sum(axis=1) / np.maximum(row_counts, 1), 0.0
    )
    col_base = np.where(
        col_counts > 0, filled.sum(axis=0) / np.maximum(col_counts, 1), 0.0
    )
    grand = filled.sum() / volume
    raw = sub - row_base[:, None] - col_base[None, :] + grand
    return float(np.abs(np.where(sub_mask, raw, 0.0)).sum() / volume)


def _build_seeds(
    matrix: DataMatrix,
    k: int,
    p: Union[float, Sequence[float]],
    seeds: Optional[Sequence[Seed]],
    constraints: Constraints,
    rng: np.random.Generator,
    tracer: Tracer = NULL_TRACER,
) -> List[Seed]:
    if seeds is not None:
        seeds = list(seeds)
        if len(seeds) != k:
            raise ValueError(f"got {len(seeds)} seeds but k={k}")
        for row_member, col_member in seeds:
            if row_member.shape != (matrix.n_rows,) or col_member.shape != (
                matrix.n_cols,
            ):
                raise ValueError("seed membership vector shape mismatch")
        return seeds
    if np.isscalar(p):
        candidates = bernoulli_seeds(
            matrix.n_rows, matrix.n_cols, k, float(p), rng,
            constraints.min_rows, constraints.min_cols, tracer=tracer,
        )
    else:
        candidates = mixed_seeds(
            matrix.n_rows, matrix.n_cols, k, list(p), rng,
            constraints.min_rows, constraints.min_cols, tracer=tracer,
        )
    # Phase 1 must emit constraint-compliant seeds (Section 4.3); retry the
    # cheap structural checks a bounded number of times.
    for attempt in range(100):
        if all(constraints.seed_ok(r, c) for r, c in candidates):
            return candidates
        tracer.inc("seed_retries")
        candidates = [
            seed
            if constraints.seed_ok(*seed)
            else bernoulli_seeds(
                matrix.n_rows, matrix.n_cols, 1,
                float(p) if np.isscalar(p) else float(list(p)[0]),
                rng, constraints.min_rows, constraints.min_cols,
                tracer=tracer,
            )[0]
            for seed in candidates
        ]
    raise RuntimeError("could not generate constraint-compliant seeds")


def floc(
    matrix: DataMatrix,
    k: int,
    *,
    p: Union[float, Sequence[float]] = 0.3,
    alpha: float = 0.0,
    ordering: str = "weighted",
    gain_mode: str = "exact",
    residue_target: Optional[float] = None,
    mandatory_moves: bool = False,
    reseed_rounds: int = 0,
    constraints: Optional[Constraints] = None,
    seeds: Optional[Sequence[Seed]] = None,
    rng: RngLike = None,
    max_iterations: int = 100,
    tol: float = 1e-12,
    tracer: Optional[Tracer] = None,
    work: Optional[WorkCounters] = None,
) -> FlocResult:
    """Run FLOC and return the best clustering found.

    Parameters
    ----------
    matrix:
        The data matrix (missing entries as ``NaN``).
    k:
        Number of clusters to maintain.
    p:
        Seed inclusion probability; a sequence enables the mixed-p seeding
        of Section 5.1 (cycled across seeds).  Ignored when ``seeds`` is
        given.
    alpha:
        Occupancy threshold of Definition 3.1; actions producing a cluster
        that violates it are blocked.  0 disables the check (dense data).
    ordering:
        Action order per iteration: ``"fixed"``, ``"random"`` or
        ``"weighted"`` (Section 5.2; ``weighted`` is the paper's best),
        plus the ``"greedy"`` descending-gain extension (see
        :func:`repro.core.ordering.greedy_order`).
    gain_mode:
        ``"exact"`` or ``"fast"`` -- see the module docstring.
    residue_target:
        When ``None`` (the paper-literal default) the objective is the
        average residue and an action's gain is the residue reduction it
        causes.  When set, FLOC mines *r-residue delta-clusters* (the
        concept of Section 3): clusters must reach residue <= target, and
        among target-respecting candidates actions compete on **volume
        growth** instead.  This stabilizes the search -- the bare
        average-residue objective is degenerate (any 2x2 submatrix has
        near-zero residue, so unconstrained greedy shrinks every cluster
        to a sliver), which is also why the paper offers the Cons_v
        volume constraint and reports discovered residues roughly twice
        the embedded ones.  A good target is 1.5-3x the noise level one
        expects inside a genuine cluster.
    mandatory_moves:
        The paper performs every row/column's best action even at a
        negative gain ("such negative gain action(s) will still be
        performed", Section 4.1), relying on the per-action snapshots to
        discard degradations.  At reproduction scale the mandatory
        additions of rows that fit *no* cluster flood the snapshot signal
        (every row outside all clusters must join its least-bad one each
        iteration), so the default skips a slot whose best gain is not
        positive.  Pass ``True`` for the literal behaviour; the ablation
        bench compares both.
    reseed_rounds:
        r-residue mode only: after Phase 2 converges, replace clusters
        that died at the structural floor (or stayed above the target, or
        duplicate an already-locked cluster) with fresh random seeds and
        run Phase 2 again, up to this many extra rounds.  Locked clusters
        are never disturbed.  0 (default) is the paper-literal single
        Phase 2; 3-10 rounds substantially raise recall on workloads with
        many embedded clusters because each round gives unlucky seeds a
        fresh draw.
    constraints:
        Optional :class:`~repro.core.constraints.Constraints`; the default
        enforces only the structural 2x2 floor.
    seeds:
        Explicit Phase-1 seeds (e.g. from
        :func:`~repro.core.seeding.volume_seeds`); must have length ``k``.
    rng:
        ``None`` (fresh entropy), an ``int`` seed, or a ``Generator``.
    max_iterations:
        Safety cap on Phase-2 iterations.
    tol:
        Minimum average-residue improvement an iteration must achieve to
        continue.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When given, the run
        emits span timings (``phase1``, ``gain_eval``, ``perform_action``,
        ``reseed``) and typed events (:class:`~repro.obs.events.SeedEvent`,
        :class:`~repro.obs.events.ActionEvent`,
        :class:`~repro.obs.events.IterationEvent`) to the tracer's sinks,
        and updates its metrics registry (``actions_performed``,
        ``actions_blocked_by_constraint``, ``gain_eval_ns``,
        ``residue_after_iteration``, ...).  Tracing never draws random
        numbers and never changes the result: the clustering, history and
        RNG stream are bit-identical with and without it.  ``None`` (the
        default) uses the shared disabled tracer at zero cost.
    work:
        Optional :class:`~repro.obs.perf.counters.WorkCounters` the run
        accumulates its deterministic work counts into (residue
        evaluations, cells scanned, toggle evaluations, ...).  Counting
        obeys the same invariant as tracing -- it never draws random
        numbers and never changes the result -- and its contribution is
        additionally mirrored into the tracer's metrics registry as
        ``perf.*`` counters when both are given.  Pass the same object
        across runs to accumulate a session total.  ``None`` (the
        default) disables counting entirely.

    Returns
    -------
    FlocResult
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if ordering not in ORDERINGS:
        raise ValueError(f"ordering must be one of {ORDERINGS}, got {ordering!r}")
    if gain_mode not in GAIN_MODES:
        raise ValueError(f"gain_mode must be one of {GAIN_MODES}, got {gain_mode!r}")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
    generator = resolve_rng(rng)
    active = constraints if constraints is not None else Constraints()
    if tracer is None:
        tracer = NULL_TRACER
    # Snapshot so only THIS run's contribution is mirrored into perf.*
    # metrics, even when one counter object is shared across runs.
    work_before = work.as_dict() if work is not None else None

    started = tracer.clock()
    with tracer.span("phase1", k=k):
        seed_list = _build_seeds(matrix, k, p, seeds, active, generator, tracer)
        if alpha > 0.0:
            seed_list = [
                _trim_seed_to_alpha(
                    row_member, col_member, matrix.mask, alpha,
                    active.min_rows, active.min_cols,
                )
                for row_member, col_member in seed_list
            ]
        # The gain engine scores every candidate lane from the incremental
        # sufficient statistics, so the caches are always maintained (they
        # also power the weighted ordering's gain estimates).
        state = _State(
            matrix.values, matrix.mask, seed_list, fast=True, work=work
        )
    initial_residue = float(state.residues.mean())
    if tracer.enabled:
        for c in range(state.k):
            tracer.emit(SeedEvent(
                cluster=c,
                origin="phase1",
                n_rows=int(state.row_member[c].sum()),
                n_cols=int(state.col_member[c].sum()),
                residue=float(state.residues[c]),
                volume=int(state.volumes[c]),
            ))

    history: List[float] = []
    iteration_times: List[float] = []
    n_actions = 0
    n_iterations = 0
    converged = False
    rounds = reseed_rounds + 1 if residue_target is not None else 1
    for round_index in range(rounds):
        iters, acts, round_converged = _phase2(
            state, matrix, ordering, gain_mode, alpha, active,
            residue_target, mandatory_moves, generator,
            max_iterations, tol, tracer,
            history, iteration_times, n_iterations,
        )
        n_iterations += iters
        n_actions += acts
        converged = round_converged
        if round_index == rounds - 1:
            break
        with tracer.span("reseed", round=round_index):
            reseeded = _reseed_dead_slots(
                state, p, active, generator, residue_target, tracer
            )
        if not reseeded:
            break

    # Materialize best_clustering.
    clusters = []
    for c in range(k):
        rows = np.flatnonzero(state.row_member[c])
        cols = np.flatnonzero(state.col_member[c])
        clusters.append(DeltaCluster(rows, cols))
    clustering = Clustering(matrix, clusters)
    elapsed = tracer.clock() - started
    if (
        work is not None
        and work_before is not None
        and tracer.enabled
        and tracer.metrics is not None
    ):
        for name, value in work:
            delta = value - work_before[name]
            if delta:
                tracer.inc(f"perf.{name}", delta)
    return FlocResult(
        clustering=clustering,
        n_iterations=n_iterations,
        initial_residue=initial_residue,
        history=history,
        iteration_times=iteration_times,
        elapsed_seconds=elapsed,
        converged=converged,
        n_actions=n_actions,
        metrics=tracer.snapshot_metrics() if tracer.enabled else None,
        trace_summary=tracer.summary() if tracer.enabled else None,
        work=work,
    )


def _phase2(
    state: _State,
    matrix: DataMatrix,
    ordering: str,
    gain_mode: str,
    alpha: float,
    active: Constraints,
    residue_target: Optional[float],
    mandatory_moves: bool,
    generator: np.random.Generator,
    max_iterations: int,
    tol: float,
    tracer: Tracer,
    history: List[float],
    iteration_times: List[float],
    iteration_offset: int,
) -> Tuple[int, int, bool]:
    """Run Phase-2 iterations until convergence; leave ``state`` at the
    best clustering found.  Appends the best residue and wall time of
    every iteration to ``history`` / ``iteration_times`` (index-aligned;
    ``iteration_offset`` numbers the emitted events across reseed
    rounds).  Returns (iterations, actions, converged)."""
    best_score = _score(state, residue_target)
    best_state = state.snapshot()
    slots = action_slots(matrix.n_rows, matrix.n_cols)
    engine = gain_engine.GainEngine(
        state, active, alpha, residue_target, gain_mode, tracer
    )
    n_actions = 0
    n_iterations = 0
    converged = False

    for _ in range(max_iterations):
        n_iterations += 1
        if state.work is not None:
            state.work.sweeps += 1
        iteration_began = tracer.clock()
        # Deferred until the first performed action: an empty-action
        # sweep (the common terminal one) costs no snapshot deep copy.
        iteration_start: Optional[dict] = None
        with tracer.span("ordering", scheme=ordering):
            order = _ordered_slots(engine, slots, ordering, generator)
        # The sweep consults ``order`` front to back; registering it
        # lets the engine rebuild dirtied wide lanes for just the next
        # block of consult positions instead of every slot.
        engine.begin_sweep(order)
        performed: List[_PerformedAction] = []
        iter_best = np.inf
        iter_best_idx = -1
        for kind, index in order:
            with tracer.span("gain_eval") as gain_span:
                choice = engine.best_action(kind, index)
            tracer.observe("gain_eval_ns", gain_span.elapsed * 1e9)
            if choice is None:
                continue
            c, new_residue, new_volume, gain = choice
            if not mandatory_moves and gain <= 0.0:
                continue
            if iteration_start is None:
                iteration_start = state.snapshot()
            with tracer.span("perform_action"):
                state.toggle(kind, index, c)
                if engine.fast_mode:
                    # The estimate guided the choice; one refresh makes
                    # the ledger (and the caches) exact again.
                    state.refresh_cluster(c)
                else:
                    # The lane score IS the exact after-toggle residue,
                    # and the toggle kept the sufficient statistics
                    # current -- assigning the ledger directly avoids a
                    # full submatrix rescan per performed action.
                    state.residues[c] = new_residue
                    state.volumes[c] = new_volume
                    state.volumes_f[c] = new_volume
            performed.append((kind, index, c))
            if tracer.enabled:
                tracer.inc("actions_performed")
                tracer.emit(ActionEvent(
                    kind=kind,
                    index=index,
                    cluster=c,
                    is_removal=not (
                        state.row_member[c, index] if kind == ROW
                        else state.col_member[c, index]
                    ),
                    gain=float(gain),
                    residue=float(state.residues[c]),
                    volume=int(state.volumes[c]),
                ))
            score = _score(state, residue_target)
            if score < iter_best:
                iter_best = score
                iter_best_idx = len(performed) - 1
        n_actions += len(performed)

        if iter_best < best_score - tol:
            improved = True
            best_score = iter_best
            assert iteration_start is not None  # an action was performed
            state.restore(iteration_start)
            for kind, index, c in performed[: iter_best_idx + 1]:
                state.toggle(kind, index, c)
            touched = {c for _, _, c in performed[: iter_best_idx + 1]}
            for c in touched:
                state.refresh_cluster(c)
            best_state = state.snapshot()
            history.append(float(state.residues.mean()))
        else:
            improved = False
            if performed:
                # Only a sweep that actually moved needs rolling back;
                # the empty terminal sweep leaves the state untouched.
                state.restore(best_state)
            history.append(
                history[-1] if history else float(state.residues.mean())
            )
            converged = True
        iteration_times.append(tracer.clock() - iteration_began)
        if tracer.enabled:
            tracer.set_gauge("residue_after_iteration", history[-1])
            tracer.observe("iteration_seconds", iteration_times[-1])
            tracer.inc("iterations")
            tracer.emit(IterationEvent(
                index=iteration_offset + n_iterations - 1,
                residue=history[-1],
                score=float(best_score),
                total_volume=int(state.volumes.sum()),
                n_actions=len(performed),
                improved=improved,
                elapsed_s=iteration_times[-1],
            ))
        if converged:
            break
    if not converged:
        state.restore(best_state)
    return n_iterations, n_actions, converged


def _reseed_dead_slots(
    state: _State,
    p: Union[float, Sequence[float]],
    active: Constraints,
    generator: np.random.Generator,
    residue_target: Optional[float],
    tracer: Tracer = NULL_TRACER,
) -> bool:
    """Replace dead or duplicate clusters with fresh random seeds.

    A slot is *dead* when it sits at (or near) the structural floor --
    the search cannot recover it because nothing fits its junk core -- or
    when its residue still exceeds the target.  Of two locked clusters
    covering nearly the same cells, the smaller is reseeded too.  Returns
    ``True`` when at least one slot was reseeded.
    """
    n_rows = state.row_member.shape[1]
    n_cols = state.col_member.shape[1]
    floor_rows = active.min_rows + 1
    floor_cols = active.min_cols + 1
    dead = []
    locked = []
    for c in range(state.k):
        rows = int(state.row_member[c].sum())
        cols = int(state.col_member[c].sum())
        at_floor = rows <= floor_rows and cols <= floor_cols
        infeasible = (
            residue_target is not None and state.residues[c] > residue_target
        )
        if at_floor or infeasible:
            dead.append(c)
        else:
            locked.append(c)

    # Deduplicate locked clusters that converged onto the same submatrix.
    for i, first in enumerate(locked):
        for second in locked[i + 1:]:
            if second in dead:
                continue
            shared_rows = int(
                (state.row_member[first] & state.row_member[second]).sum()
            )
            shared_cols = int(
                (state.col_member[first] & state.col_member[second]).sum()
            )
            cells_first = int(state.row_member[first].sum()) * int(
                state.col_member[first].sum()
            )
            cells_second = int(state.row_member[second].sum()) * int(
                state.col_member[second].sum()
            )
            smaller = min(cells_first, cells_second)
            if smaller and shared_rows * shared_cols / smaller > 0.8:
                victim = first if cells_first < cells_second else second
                if victim not in dead:
                    dead.append(victim)

    if not dead:
        return False
    p_value = float(p) if np.isscalar(p) else float(list(p)[0])
    fresh = bernoulli_seeds(
        n_rows, n_cols, len(dead), p_value, generator,
        active.min_rows, active.min_cols, tracer=tracer,
    )
    for c, (row_member, col_member) in zip(dead, fresh):
        state.row_member[c] = row_member
        state.col_member[c] = col_member
        state.refresh_cluster(c)
        if tracer.enabled:
            tracer.inc("reseeds")
            tracer.emit(SeedEvent(
                cluster=c,
                origin="reseed",
                n_rows=int(row_member.sum()),
                n_cols=int(col_member.sum()),
                residue=float(state.residues[c]),
                volume=int(state.volumes[c]),
            ))
    return True


def _trim_seed_to_alpha(
    row_member: np.ndarray,
    col_member: np.ndarray,
    mask: np.ndarray,
    alpha: float,
    min_rows: int,
    min_cols: int,
) -> Seed:
    """Shrink a random seed until it satisfies the alpha occupancy rule.

    Iteratively removes the sparsest offending row or column.  Phase 1
    must emit constraint-compliant seeds (Section 4.3); combined with the
    no-new-violations action blocking this keeps every clustering FLOC
    ever holds alpha-valid.  If trimming hits the structural floor before
    reaching validity, the seed is returned as-is (the blocking rule then
    lets it keep moving until it heals).
    """
    row_member = row_member.copy()
    col_member = col_member.copy()
    while True:
        rows = np.flatnonzero(row_member)
        cols = np.flatnonzero(col_member)
        if rows.size <= min_rows or cols.size <= min_cols:
            return row_member, col_member
        sub_mask = mask[np.ix_(rows, cols)]
        row_frac = sub_mask.sum(axis=1) / cols.size
        col_frac = sub_mask.sum(axis=0) / rows.size
        worst_row = int(np.argmin(row_frac))
        worst_col = int(np.argmin(col_frac))
        if row_frac[worst_row] >= alpha and col_frac[worst_col] >= alpha:
            return row_member, col_member
        if row_frac[worst_row] <= col_frac[worst_col]:
            row_member[rows[worst_row]] = False
        else:
            col_member[cols[worst_col]] = False


def _score(state: _State, residue_target: Optional[float]) -> float:
    """Clustering score to minimize -- the snapshot/termination criterion.

    Paper-literal mode scores by average residue (footnote 5).  In
    r-residue mode a clustering is better when it has less residue excess
    above the target, then more total volume; the excess is weighted by
    the matrix cell count so feasibility always dominates volume.
    """
    if residue_target is None:
        return float(state.residues.mean())
    excess = (
        np.maximum(state.residues - residue_target, 0.0) / residue_target
    ).sum()
    # Any appreciable relative excess must outweigh any possible volume
    # difference (total volume is bounded by k * matrix size).
    weight = 1e6 * float(state.values.size)
    return float(excess * weight - state.volumes.sum())


def _gain(
    old_residue: float,
    old_volume: int,
    new_residue: float,
    new_volume: int,
    residue_target: Optional[float],
    line_residue: Optional[float] = None,
    is_addition: bool = False,
    line_count: Optional[int] = None,
    width: Optional[int] = None,
) -> float:
    """Gain of one candidate action.

    Paper-literal: the reduction of the cluster's residue.  r-residue
    mode: actions that leave the cluster within the target compete on
    relative volume growth (offset by +1 so any of them outranks every
    target-violating action); the rest compete on relative residue
    reduction, mapped into (-inf, 0].  An addition only counts as
    target-respecting when the joining line *itself* fits the cluster's
    pattern within the target -- without this admission test a large
    cluster's mean dilutes one junk line at a time below the target
    (the exact leak Cheng & Church's node addition guards against).

    ``line_count`` and ``width`` are accepted (and plumbed by the batch
    evaluator) for experimentation with missingness-aware admission; a
    sqrt(line_count / width) discount was tried and REJECTED -- loosening
    admission for sparse lines lets junk in faster than it rescues
    borderline members, and measured recall dropped at every missing
    fraction (see DESIGN.md section 4).  The plain test is used.
    """
    del line_count, width  # see docstring: discount rejected empirically
    if residue_target is None:
        return old_residue - new_residue
    scale = max(old_residue, residue_target)
    reduction = (old_residue - new_residue) / scale
    fits = line_residue is None or line_residue <= residue_target
    if is_addition and not fits:
        # A junk line is never a real improvement, however little it
        # dilutes a large cluster's mean.
        return reduction - 1.0
    if not is_addition and not fits:
        # Evicting a line that does not fit the cluster's pattern is
        # cleanup, even from a cluster already below the target --
        # otherwise stragglers inside a feasible cluster deadlock it
        # (they cannot leave, and they inflate every candidate line's
        # residue above the admission test).
        return 1.0 + reduction
    if new_residue <= residue_target:
        if old_residue > residue_target:
            # Crossing into feasibility is the most valuable move.
            return 2.0 + reduction
        if is_addition:
            # Growing a feasible cluster: the r-residue objective.
            return 1.0 + (new_volume - old_volume) / (old_volume + 1.0)
        # Shrinking an already-feasible cluster loses volume for nothing.
        return (new_volume - old_volume) / (old_volume + 1.0)
    # Still infeasible: plain cleanup progress (positive when the residue
    # drops, negative when it rises).
    return reduction


def _ordered_slots(
    engine: "gain_engine.GainEngine",
    slots: Sequence[Tuple[str, int]],
    ordering: str,
    rng: np.random.Generator,
) -> List[Tuple[str, int]]:
    """Build this iteration's action order.

    The weighted scheduler needs a gain estimate per slot *before* any
    action is performed; the engine's frozen-bases estimate lanes supply
    it regardless of the gain mode used for the actual moves (it is only
    an ordering heuristic).
    """
    if ordering == "fixed":
        return list(slots)
    if ordering == "random":
        return make_order("random", slots, [], rng)
    # "weighted" and "greedy" both need per-slot gain estimates.
    gains = engine.ordering_gains(slots)
    return make_order(ordering, slots, gains, rng)
