"""Prediction and imputation from delta-clusters.

The paper's opening example (Section 1): three viewers rate four movies
as shifted copies of each other; when two of them rate a *new* movie, the
third viewer's rating "follows the same coherence" and can be projected.
Inside a perfect delta-cluster every entry obeys

    d_ij = d_iJ + d_Ij - d_IJ

so the same identity -- computed from the *specified* entries only -- is
the natural predictor for an unspecified (or held-out) entry.  This
module turns that identity into a small API:

* :func:`predict_entry` -- project one (row, col) cell from one cluster;
* :func:`impute` -- fill every missing entry covered by a clustering
  (volume-weighted average across covering clusters);
* :func:`prediction_error` -- leave-one-out evaluation of a cluster's
  predictive quality, the collaborative-filtering figure of merit.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from .cluster import DeltaCluster
from .clustering import Clustering
from .matrix import DataMatrix
from .residue import compute_bases
from .rng import RngLike, resolve_rng

__all__ = ["predict_entry", "impute", "prediction_error"]


def predict_entry(
    matrix: DataMatrix,
    cluster: DeltaCluster,
    row: int,
    col: int,
    exclude_target: bool = True,
) -> float:
    """Predict ``d[row, col]`` from the cluster's bases.

    Parameters
    ----------
    matrix:
        The data matrix.
    cluster:
        A delta-cluster containing ``row`` and ``col``.
    row, col:
        The cell to predict.
    exclude_target:
        When ``True`` (default) the cell's own value -- if specified -- is
        held out of the base computation, making the result a genuine
        leave-one-out prediction instead of an echo.

    Returns
    -------
    The projected value ``d_iJ + d_Ij - d_IJ``.

    Raises
    ------
    ValueError
        If the cell is not covered by the cluster, or the cluster carries
        too little specified data to form the bases.
    """
    if not cluster.contains(row, col):
        raise ValueError(
            f"cell ({row}, {col}) is not covered by the cluster"
        )
    rows = list(cluster.rows)
    cols = list(cluster.cols)
    sub = matrix.submatrix(rows, cols)
    i = rows.index(row)
    j = cols.index(col)
    if exclude_target:
        sub = sub.copy()
        sub[i, j] = np.nan
    # The *cross* estimator: row i's mean over the other columns, column
    # j's mean over the other rows, minus the mean of the block excluding
    # both.  On a perfect shifting cluster this is exact --
    #   (b + r_i + C') + (b + c_j + R') - (b + R' + C') = b + r_i + c_j
    # -- whereas plugging the plain bases into d_iJ + d_Ij - d_IJ leaks a
    # bias of order 1/(n*m) through the grand mean.
    mask = ~np.isnan(sub)
    filled = np.where(mask, sub, 0.0)
    row_count = int(mask[i, :].sum()) - int(mask[i, j])
    col_count = int(mask[:, j].sum()) - int(mask[i, j])
    if row_count == 0 or col_count == 0:
        raise ValueError(
            f"cluster has no specified data to predict cell ({row}, {col})"
        )
    target = float(filled[i, j])
    row_mean = (float(filled[i, :].sum()) - target) / row_count
    col_mean = (float(filled[:, j].sum()) - target) / col_count
    rest_sum = float(filled.sum()) - float(filled[i, :].sum()) - (
        float(filled[:, j].sum()) - target
    )
    rest_count = int(mask.sum()) - int(mask[i, :].sum()) - (
        int(mask[:, j].sum()) - int(mask[i, j])
    )
    if rest_count == 0:
        raise ValueError(
            f"cluster has no cross data to predict cell ({row}, {col})"
        )
    return float(row_mean + col_mean - rest_sum / rest_count)


def impute(
    matrix: DataMatrix,
    clustering: Clustering,
    clip: Optional[Tuple[float, float]] = None,
) -> DataMatrix:
    """Fill missing entries covered by the clustering.

    Every missing cell covered by one or more clusters gets the
    volume-weighted average of the per-cluster projections; cells covered
    by no cluster stay missing.  ``clip`` optionally bounds the imputed
    values (e.g. ``(1, 10)`` for a rating scale).

    Returns a new matrix; the input is untouched.
    """
    values = matrix.values.copy()
    weight_sum = np.zeros(matrix.shape)
    prediction_sum = np.zeros(matrix.shape)
    for cluster in clustering:
        if cluster.is_empty:
            continue
        rows = np.asarray(cluster.rows, dtype=np.intp)
        cols = np.asarray(cluster.cols, dtype=np.intp)
        sub = matrix.values[np.ix_(rows, cols)]
        bases = compute_bases(sub)
        if bases.volume == 0:
            continue
        # Vectorized cross estimator (see predict_entry): for a missing
        # target the row/col sums already exclude it, and the cross block
        # excludes the whole of row i and column j.
        row_sums = np.where(bases.row_counts > 0, bases.row, 0.0) * bases.row_counts
        col_sums = np.where(bases.col_counts > 0, bases.col, 0.0) * bases.col_counts
        total = float(row_sums.sum())
        rest_sum = total - row_sums[:, None] - col_sums[None, :]
        rest_count = (
            bases.volume
            - bases.row_counts[:, None]
            - bases.col_counts[None, :]
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            projected = (
                bases.row[:, None]
                + bases.col[None, :]
                - rest_sum / np.maximum(rest_count, 1)
            )
        sub_missing = np.isnan(sub)
        # Only cells whose row, column AND cross block carry data project.
        valid = (
            sub_missing
            & (bases.row_counts[:, None] > 0)
            & (bases.col_counts[None, :] > 0)
            & (rest_count > 0)
        )
        weight = float(bases.volume)
        block = np.zeros_like(projected)
        block[valid] = projected[valid]
        prediction_sum[np.ix_(rows, cols)] += weight * block
        weight_block = np.zeros_like(projected)
        weight_block[valid] = weight
        weight_sum[np.ix_(rows, cols)] += weight_block
    fillable = np.isnan(values) & (weight_sum > 0)
    filled_values = prediction_sum[fillable] / weight_sum[fillable]
    if clip is not None:
        lo, hi = clip
        if hi <= lo:
            raise ValueError(f"clip range must be increasing, got {clip}")
        filled_values = np.clip(filled_values, lo, hi)
    values[fillable] = filled_values
    return DataMatrix(values, matrix.row_labels, matrix.col_labels)


def prediction_error(
    matrix: DataMatrix,
    cluster: DeltaCluster,
    sample: Optional[Iterable[Tuple[int, int]]] = None,
    rng: RngLike = None,
    max_cells: int = 200,
) -> float:
    """Leave-one-out mean absolute prediction error over cluster cells.

    Holds out each specified cell in turn (or a random ``max_cells``
    sample for large clusters) and predicts it from the rest.  For a
    coherent cluster this error approaches the noise floor; for a junk
    cluster it approaches the data's spread -- making it a useful
    significance check on discovered clusters.

    When ``rng`` is ``None`` the subsample for large clusters is drawn
    from a fixed seed, so repeated calls on the same cluster agree;
    pass a :class:`numpy.random.Generator` (or an integer seed) to draw
    it from an explicit stream instead.
    """
    if cluster.is_empty:
        raise ValueError("cannot evaluate an empty cluster")
    if sample is None:
        rows = np.asarray(cluster.rows, dtype=np.intp)
        cols = np.asarray(cluster.cols, dtype=np.intp)
        sub_mask = matrix.mask[np.ix_(rows, cols)]
        specified = [
            (int(rows[i]), int(cols[j]))
            for i, j in zip(*np.nonzero(sub_mask))
        ]
        if len(specified) > max_cells:
            generator = resolve_rng(rng, default_seed=0)
            picks = generator.choice(len(specified), size=max_cells, replace=False)
            specified = [specified[p] for p in picks]
        sample = specified
    errors = []
    for row, col in sample:
        if not matrix.mask[row, col]:
            continue
        try:
            predicted = predict_entry(matrix, cluster, row, col)
        except ValueError:
            continue
        errors.append(abs(predicted - float(matrix.values[row, col])))
    if not errors:
        raise ValueError("no predictable cells in the sample")
    return float(np.mean(errors))
