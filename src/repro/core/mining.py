"""High-level mining front end: restarts, pooling, deduplication.

FLOC is a randomized local search; any single run can leave some planted
structure undiscovered.  :func:`mine_delta_clusters` wraps the paper's
algorithm in the standard practitioner loop:

1. run FLOC ``n_restarts`` times with independent seeds,
2. pool the clusters that meet the residue target (and a minimum size),
3. deduplicate near-identical clusters across runs (keeping the larger),
4. return the best ``max_clusters`` by volume.

This is the entry point a downstream user actually wants; ``floc()``
itself remains the faithful single-run algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..obs.tracer import NULL_TRACER, Tracer
from .cluster import DeltaCluster
from .clustering import Clustering
from .constraints import Constraints
from .floc import FlocResult, floc
from .matrix import DataMatrix
from .rng import RngLike, resolve_rng

__all__ = ["MiningResult", "mine_delta_clusters"]


@dataclass
class MiningResult:
    """Pooled outcome of a multi-restart mining session.

    ``metrics`` / ``trace_summary`` are the tracer's end-of-session
    aggregates over *all* restarts (``None`` when the session was not
    traced); per-run convergence detail lives on each entry of ``runs``.
    """

    clustering: Clustering
    runs: List[FlocResult] = field(default_factory=list)
    n_pooled: int = 0
    n_deduplicated: int = 0
    metrics: Optional[dict] = None
    trace_summary: Optional[dict] = None

    @property
    def elapsed_seconds(self) -> float:
        return sum(run.elapsed_seconds for run in self.runs)


def mine_delta_clusters(
    matrix: Union[DataMatrix, np.ndarray],
    residue_target: float,
    *,
    k: int = 10,
    n_restarts: int = 3,
    max_clusters: Optional[int] = None,
    min_rows: int = 3,
    min_cols: int = 3,
    min_volume: int = 25,
    max_overlap: float = 0.5,
    alpha: float = 0.0,
    p: float = 0.2,
    reseed_rounds: int = 10,
    ordering: str = "greedy",
    gain_mode: str = "fast",
    rng: RngLike = None,
    tracer: Optional[Tracer] = None,
) -> MiningResult:
    """Mine r-residue delta-clusters with restarts and deduplication.

    Parameters
    ----------
    matrix:
        Data matrix (``NaN`` = missing).
    residue_target:
        The ``r`` of the r-residue delta-cluster: every returned cluster
        has mean absolute residue at most this.
    k, p, reseed_rounds, ordering, gain_mode, alpha:
        Forwarded to :func:`repro.core.floc.floc` per restart.
    n_restarts:
        Independent FLOC runs to pool.
    max_clusters:
        Keep at most this many clusters (largest volume first);
        ``None`` keeps all.
    min_rows, min_cols, min_volume:
        Discard clusters smaller than this (``min_volume`` counts
        *specified* entries).
    max_overlap:
        Pooled clusters overlapping a kept cluster by more than this
        fraction (of the smaller one's cells) are dropped as duplicates.
    tracer:
        Optional :class:`~repro.obs.Tracer` shared by every restart; each
        restart's events carry a ``restart`` context key so a single
        JSONL trace covers the whole session.  Tracing never changes the
        mining result.

    Returns
    -------
    MiningResult -- ``result.clustering`` holds the deduplicated
    clusters, largest first.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if residue_target <= 0:
        raise ValueError(f"residue_target must be positive, got {residue_target}")
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    if not 0.0 <= max_overlap <= 1.0:
        raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
    generator = resolve_rng(rng)
    constraints = Constraints(min_rows=min_rows, min_cols=min_cols)
    if tracer is None:
        tracer = NULL_TRACER

    runs: List[FlocResult] = []
    pooled: List[DeltaCluster] = []
    for restart in range(n_restarts):
        if tracer.enabled:
            tracer.push_context(restart=restart)
        try:
            with tracer.span("restart", index=restart):
                result = floc(
                    matrix, k,
                    p=p,
                    alpha=alpha,
                    ordering=ordering,
                    gain_mode=gain_mode,
                    residue_target=residue_target,
                    reseed_rounds=reseed_rounds,
                    constraints=constraints,
                    rng=generator,
                    tracer=tracer,
                )
        finally:
            if tracer.enabled:
                tracer.pop_context()
        runs.append(result)
        for cluster in result.clustering:
            if cluster.n_rows < min_rows or cluster.n_cols < min_cols:
                continue
            if cluster.volume(matrix) < min_volume:
                continue
            if cluster.residue(matrix) > residue_target:
                continue
            pooled.append(cluster)

    n_pooled = len(pooled)
    kept = _deduplicate(pooled, matrix, max_overlap)
    if max_clusters is not None:
        kept = kept[:max_clusters]
    return MiningResult(
        clustering=Clustering(matrix, kept),
        runs=runs,
        n_pooled=n_pooled,
        n_deduplicated=n_pooled - len(kept),
        metrics=tracer.snapshot_metrics() if tracer.enabled else None,
        trace_summary=tracer.summary() if tracer.enabled else None,
    )


def _deduplicate(
    pooled: List[DeltaCluster],
    matrix: DataMatrix,
    max_overlap: float,
) -> List[DeltaCluster]:
    """Greedy dedup: biggest volume first, drop heavy overlappers."""
    ordered = sorted(pooled, key=lambda c: -c.volume(matrix))
    kept: List[DeltaCluster] = []
    for candidate in ordered:
        duplicate = any(
            candidate.overlap_fraction(existing) > max_overlap
            for existing in kept
        )
        if not duplicate:
            kept.append(candidate)
    return kept
