"""High-level mining front end: restarts, pooling, deduplication.

FLOC is a randomized local search; any single run can leave some planted
structure undiscovered.  :func:`mine_delta_clusters` wraps the paper's
algorithm in the standard practitioner loop:

1. run FLOC ``n_restarts`` times with independent seeds,
2. pool the clusters that meet the residue target (and a minimum size),
3. deduplicate near-identical clusters across runs (keeping the larger),
4. return the best ``max_clusters`` by volume.

This is the entry point a downstream user actually wants; ``floc()``
itself remains the faithful single-run algorithm.

Task decomposition
------------------
A mining session is also available as independent, seed-addressable
tasks for the supervised runtime (:mod:`repro.runtime`):

* :func:`restart_seed` derives restart ``i``'s private
  :class:`~numpy.random.SeedSequence` from a root seed -- the same
  child regardless of which process computes it or in what order, so
  restarts can be scheduled, retried or resumed arbitrarily;
* :func:`run_restart` executes exactly one restart from its derived
  seed and returns the :class:`FlocResult`;
* :func:`pool_mining_results` pools/deduplicates any ordered collection
  of restart results into a :class:`MiningResult` -- it is the shared
  tail of :func:`mine_delta_clusters` and of the runtime's
  checkpoint-replay path, so both produce identical clusterings from
  identical restart results.

Note the sequential front end threads ONE generator through all
restarts (restart ``i+1``'s stream continues where ``i`` stopped),
while the task decomposition gives every restart an independent spawned
stream.  Both are deterministic, but they are *different* deterministic
schedules: ``mine_delta_clusters(rng=7)`` and a supervised run with
root seed 7 agree on the contract, not on the bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..obs.perf.counters import WorkCounters
from ..obs.tracer import NULL_TRACER, Tracer
from .cluster import DeltaCluster
from .clustering import Clustering
from .constraints import Constraints
from .floc import FlocResult, floc
from .matrix import DataMatrix
from .rng import RngLike, resolve_rng

__all__ = [
    "MiningResult",
    "mine_delta_clusters",
    "pool_mining_results",
    "restart_seed",
    "run_restart",
]


@dataclass
class MiningResult:
    """Pooled outcome of a multi-restart mining session.

    ``metrics`` / ``trace_summary`` are the tracer's end-of-session
    aggregates over *all* restarts (``None`` when the session was not
    traced); per-run convergence detail lives on each entry of ``runs``.
    ``work`` aggregates the restarts' deterministic
    :class:`~repro.obs.perf.counters.WorkCounters` (``None`` when no
    restart counted work).
    """

    clustering: Clustering
    runs: List[FlocResult] = field(default_factory=list)
    n_pooled: int = 0
    n_deduplicated: int = 0
    metrics: Optional[dict] = None
    trace_summary: Optional[dict] = None
    work: Optional[WorkCounters] = None

    @property
    def elapsed_seconds(self) -> float:
        return sum(run.elapsed_seconds for run in self.runs)


def mine_delta_clusters(
    matrix: Union[DataMatrix, np.ndarray],
    residue_target: float,
    *,
    k: int = 10,
    n_restarts: int = 3,
    max_clusters: Optional[int] = None,
    min_rows: int = 3,
    min_cols: int = 3,
    min_volume: int = 25,
    max_overlap: float = 0.5,
    alpha: float = 0.0,
    p: float = 0.2,
    reseed_rounds: int = 10,
    ordering: str = "greedy",
    gain_mode: str = "fast",
    rng: RngLike = None,
    tracer: Optional[Tracer] = None,
    work: Optional[WorkCounters] = None,
) -> MiningResult:
    """Mine r-residue delta-clusters with restarts and deduplication.

    Parameters
    ----------
    matrix:
        Data matrix (``NaN`` = missing).
    residue_target:
        The ``r`` of the r-residue delta-cluster: every returned cluster
        has mean absolute residue at most this.
    k, p, reseed_rounds, ordering, gain_mode, alpha:
        Forwarded to :func:`repro.core.floc.floc` per restart.
    n_restarts:
        Independent FLOC runs to pool.
    max_clusters:
        Keep at most this many clusters (largest volume first);
        ``None`` keeps all.
    min_rows, min_cols, min_volume:
        Discard clusters smaller than this (``min_volume`` counts
        *specified* entries).
    max_overlap:
        Pooled clusters overlapping a kept cluster by more than this
        fraction (of the smaller one's cells) are dropped as duplicates.
    tracer:
        Optional :class:`~repro.obs.Tracer` shared by every restart; each
        restart's events carry a ``restart`` context key so a single
        JSONL trace covers the whole session.  Tracing never changes the
        mining result.
    work:
        Optional :class:`~repro.obs.perf.counters.WorkCounters` shared by
        every restart; like the tracer it never changes the result.  The
        pooled :class:`MiningResult` carries the session aggregate.

    Returns
    -------
    MiningResult -- ``result.clustering`` holds the deduplicated
    clusters, largest first.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if residue_target <= 0:
        raise ValueError(f"residue_target must be positive, got {residue_target}")
    if n_restarts < 1:
        raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
    if not 0.0 <= max_overlap <= 1.0:
        raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
    generator = resolve_rng(rng)
    constraints = Constraints(min_rows=min_rows, min_cols=min_cols)
    if tracer is None:
        tracer = NULL_TRACER

    runs: List[FlocResult] = []
    for restart in range(n_restarts):
        if tracer.enabled:
            tracer.push_context(restart=restart)
        try:
            with tracer.span("restart", index=restart):
                result = floc(
                    matrix, k,
                    p=p,
                    alpha=alpha,
                    ordering=ordering,
                    gain_mode=gain_mode,
                    residue_target=residue_target,
                    reseed_rounds=reseed_rounds,
                    constraints=constraints,
                    rng=generator,
                    tracer=tracer,
                    work=work,
                )
        finally:
            if tracer.enabled:
                tracer.pop_context()
        runs.append(result)

    result_pool = pool_mining_results(
        matrix, runs,
        residue_target=residue_target,
        min_rows=min_rows,
        min_cols=min_cols,
        min_volume=min_volume,
        max_overlap=max_overlap,
        max_clusters=max_clusters,
    )
    result_pool.metrics = tracer.snapshot_metrics() if tracer.enabled else None
    result_pool.trace_summary = tracer.summary() if tracer.enabled else None
    return result_pool


def restart_seed(root_seed: int, restart: int) -> np.random.SeedSequence:
    """Restart ``restart``'s private seed, derived from ``root_seed``.

    Equivalent to ``SeedSequence(root_seed).spawn(n)[restart]`` for any
    ``n > restart`` but computable without materializing the siblings:
    the child is addressed directly by its spawn key.  This is what
    makes restarts independent *tasks* -- any process can reconstruct
    restart ``i``'s exact stream from ``(root_seed, i)`` alone, so a
    retried or resumed restart is bit-identical to the original attempt.
    """
    if restart < 0:
        raise ValueError(f"restart index must be >= 0, got {restart}")
    return np.random.SeedSequence(root_seed, spawn_key=(restart,))


def run_restart(
    matrix: Union[DataMatrix, np.ndarray],
    restart: int,
    *,
    residue_target: float,
    root_seed: Optional[int] = None,
    rng: RngLike = None,
    k: int = 10,
    min_rows: int = 3,
    min_cols: int = 3,
    alpha: float = 0.0,
    p: Union[float, Sequence[float]] = 0.2,
    reseed_rounds: int = 10,
    ordering: str = "greedy",
    gain_mode: str = "fast",
    max_iterations: int = 100,
    tracer: Optional[Tracer] = None,
    work: Optional[WorkCounters] = None,
) -> FlocResult:
    """Execute one seed-addressable restart of a mining session.

    Exactly one of ``root_seed`` / ``rng`` must be given: ``root_seed``
    derives the restart's stream via :func:`restart_seed` (the
    supervised-runtime path), while an explicit ``rng`` lets callers
    thread their own stream.  All other parameters mirror
    :func:`mine_delta_clusters` and are forwarded to :func:`floc`.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if (root_seed is None) == (rng is None):
        raise ValueError("pass exactly one of root_seed / rng")
    if rng is None:
        assert root_seed is not None  # narrowed by the check above
        rng = restart_seed(root_seed, restart)
    generator = resolve_rng(rng)
    constraints = Constraints(min_rows=min_rows, min_cols=min_cols)
    return floc(
        matrix, k,
        p=p,
        alpha=alpha,
        ordering=ordering,
        gain_mode=gain_mode,
        residue_target=residue_target,
        reseed_rounds=reseed_rounds,
        constraints=constraints,
        rng=generator,
        max_iterations=max_iterations,
        tracer=tracer,
        work=work,
    )


def pool_mining_results(
    matrix: Union[DataMatrix, np.ndarray],
    runs: Sequence[FlocResult],
    *,
    residue_target: float,
    max_clusters: Optional[int] = None,
    min_rows: int = 3,
    min_cols: int = 3,
    min_volume: int = 25,
    max_overlap: float = 0.5,
) -> MiningResult:
    """Pool restart results into a deduplicated :class:`MiningResult`.

    This is the deterministic tail every mining front end shares:
    :func:`mine_delta_clusters` calls it on its in-process runs, and the
    supervised runtime (:mod:`repro.runtime`) calls it on the restart
    results replayed from a checkpoint store.  The outcome depends only
    on ``runs`` *in order* (pass them sorted by restart index), never on
    completion order or scheduling, which is what makes crash/resume
    parity possible.
    """
    if not isinstance(matrix, DataMatrix):
        matrix = DataMatrix(matrix)
    if residue_target <= 0:
        raise ValueError(f"residue_target must be positive, got {residue_target}")
    if not 0.0 <= max_overlap <= 1.0:
        raise ValueError(f"max_overlap must be in [0, 1], got {max_overlap}")
    # Aggregate the restarts' work counters, counting each distinct
    # object once: per-restart counters sum, while a single accumulator
    # shared by every restart (the mine_delta_clusters path) already IS
    # the session total and must not be multiplied by len(runs).
    work_total: Optional[WorkCounters] = None
    seen_work: set = set()
    for result in runs:
        if result.work is None or id(result.work) in seen_work:
            continue
        seen_work.add(id(result.work))
        if work_total is None:
            work_total = WorkCounters()
        work_total.merge(result.work)
    pooled: List[DeltaCluster] = []
    for result in runs:
        for cluster in result.clustering:
            if cluster.n_rows < min_rows or cluster.n_cols < min_cols:
                continue
            if cluster.volume(matrix) < min_volume:
                continue
            if cluster.residue(matrix) > residue_target:
                continue
            pooled.append(cluster)
    n_pooled = len(pooled)
    kept = _deduplicate(pooled, matrix, max_overlap)
    if max_clusters is not None:
        kept = kept[:max_clusters]
    return MiningResult(
        clustering=Clustering(matrix, kept),
        runs=list(runs),
        n_pooled=n_pooled,
        n_deduplicated=n_pooled - len(kept),
        work=work_total,
    )


def _deduplicate(
    pooled: List[DeltaCluster],
    matrix: DataMatrix,
    max_overlap: float,
) -> List[DeltaCluster]:
    """Greedy dedup: biggest volume first, drop heavy overlappers."""
    ordered = sorted(pooled, key=lambda c: -c.volume(matrix))
    kept: List[DeltaCluster] = []
    for candidate in ordered:
        duplicate = any(
            candidate.overlap_fraction(existing) > max_overlap
            for existing in kept
        )
        if not duplicate:
            kept.append(candidate)
    return kept
