"""The one sanctioned RNG-construction seam of the package.

FLOC is a randomized local search whose results must be reproducible:
every stochastic path (Phase-1 seeding, the weighted action ordering,
mixed-``p`` seed selection, sampling in evaluation helpers) threads an
explicit :class:`numpy.random.Generator`.  Public entry points accept
``rng`` as ``None | int | Generator`` for convenience and normalize it
exactly once, here, at the API boundary.

The custom linter (:mod:`repro.devtools`) enforces the discipline:
rule **DCL001** forbids the legacy global-state API (``np.random.<fn>``)
and bare ``np.random.default_rng()`` everywhere outside ``tests/``, and
**DCL004** requires public ``repro.core`` functions to accept their RNG
as a parameter instead of constructing one.  This module is the single
place allowed to construct generators from scratch -- hence the
file-level suppression below.
"""

# dcl: disable=DCL001

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RngLike", "resolve_rng"]

#: Anything :func:`resolve_rng` accepts: ``None`` (fresh entropy), an
#: integer seed, a :class:`numpy.random.SeedSequence`, or an existing
#: :class:`numpy.random.Generator` (returned unchanged).
RngLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def resolve_rng(rng: RngLike = None, *, default_seed: Optional[int] = None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` for a freshly entropy-seeded generator, an integer (or
        :class:`~numpy.random.SeedSequence`) seed, or a ready generator
        that is returned as-is (so callers can thread one stream through
        a whole pipeline).
    default_seed:
        When given, ``rng=None`` resolves to this fixed seed instead of
        fresh entropy.  Evaluation helpers whose *sampling* should not
        change between repeated calls (e.g. leave-one-out subsampling)
        use this to stay deterministic by default while still honouring
        an explicit caller stream.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None and default_seed is not None:
        return np.random.default_rng(default_seed)
    return np.random.default_rng(rng)
