"""Action-order schedulers (Sections 4.1 and 5.2 of the paper).

Within each FLOC iteration every row and every column performs exactly one
action.  The *order* in which those M + N actions are performed matters: a
run of negative-gain actions early in a fixed order can keep later
positive-gain actions from ever getting "a full play" (Section 5.2).  The
paper proposes three schedulers:

``fixed``
    Row 1 .. row M followed by column 1 .. column N, every iteration.
``random``
    A uniform shuffle produced by ``g = 2 * (M + N)`` random pairwise
    swaps (Section 5.2.1 describes exactly this swap procedure).
``weighted``
    The same swap procedure, but a proposed swap of the action at the
    earlier position ``i`` with the one at the later position ``j`` only
    happens with probability ``0.5 + (g_j - g_i) / (2 * Gamma)`` where
    ``Gamma`` is the spread between the maximum and minimum gain
    (Section 5.2.2).  High-gain actions therefore tend to bubble toward
    the front while low-gain ones drift back, without deterministically
    sorting (which would trap the search in local optima).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .actions import COL, ROW

__all__ = [
    "ORDERINGS",
    "action_slots",
    "fixed_order",
    "greedy_order",
    "make_order",
    "random_order",
    "weighted_order",
]

#: A slot identifies the row/column whose best action will be performed.
Slot = Tuple[str, int]

ORDERINGS = ("fixed", "random", "weighted", "greedy")


def action_slots(n_rows: int, n_cols: int) -> List[Slot]:
    """All M + N action slots in the paper's canonical (fixed) order."""
    slots: List[Slot] = [(ROW, i) for i in range(n_rows)]
    slots.extend((COL, j) for j in range(n_cols))
    return slots


def fixed_order(n_rows: int, n_cols: int) -> List[Slot]:
    """Rows first, then columns -- identical every iteration."""
    return action_slots(n_rows, n_cols)


def _swap_count(n_slots: int, swaps: Optional[int]) -> int:
    if swaps is None:
        # "We found that the randomness of the list is satisfactory where
        # g >= 2 x (M + N).  Thus, we chose g = 2 x (M + N)."
        return 2 * n_slots
    if swaps < 0:
        raise ValueError(f"swaps must be non-negative, got {swaps}")
    return swaps


def random_order(
    slots: Sequence[Slot],
    rng: np.random.Generator,
    swaps: Optional[int] = None,
) -> List[Slot]:
    """Uniform random order via the paper's repeated-swap procedure."""
    order = list(slots)
    n = len(order)
    if n < 2:
        return order
    count = _swap_count(n, swaps)
    picks = rng.integers(0, n, size=(count, 2))
    for a, b in picks:
        order[a], order[b] = order[b], order[a]
    return order


def weighted_order(
    slots: Sequence[Slot],
    gains: Sequence[float],
    rng: np.random.Generator,
    swaps: Optional[int] = None,
) -> List[Slot]:
    """Gain-weighted random order (Section 5.2.2).

    ``gains`` holds the best-action gain of each slot, aligned with
    ``slots``.  Blocked slots (``-inf`` gain) are treated as carrying the
    minimum finite gain so the probability formula stays well-defined.
    """
    if len(gains) != len(slots):
        raise ValueError(
            f"gains has {len(gains)} entries, expected {len(slots)}"
        )
    order = list(slots)
    n = len(order)
    if n < 2:
        return order
    gain_of = np.asarray(gains, dtype=np.float64)
    finite = gain_of[np.isfinite(gain_of)]
    floor = float(finite.min()) if finite.size else 0.0
    gain_of = np.where(np.isfinite(gain_of), gain_of, floor)
    gamma = float(gain_of.max() - gain_of.min())
    current = list(gain_of)
    count = _swap_count(n, swaps)
    picks = rng.integers(0, n, size=(count, 2))
    coins = rng.random(count)
    for (a, b), coin in zip(picks, coins):
        if a == b:
            continue
        front, back = (a, b) if a < b else (b, a)
        if gamma > 0.0:
            # Swap is *less* likely when the front action already has the
            # larger gain; certain when the back action has the maximum
            # gain and the front the minimum.
            probability = 0.5 + (current[back] - current[front]) / (2.0 * gamma)
        else:
            probability = 0.5
        if coin < probability:
            order[front], order[back] = order[back], order[front]
            current[front], current[back] = current[back], current[front]
    return order


def greedy_order(
    slots: Sequence[Slot],
    gains: Sequence[float],
) -> List[Slot]:
    """Deterministic descending-gain order.

    Not one of the paper's three schedulers -- Section 5.2.2 worries that
    full sorting "may only find the local optimal clustering" -- but the
    per-action snapshot makes the risk moot in this implementation, and on
    cleanup-heavy workloads front-loading big-gain removals protects the
    planted core from being shredded before the junk leaves.  Offered as
    an extension and compared against the paper's orderings in the
    ablation bench.  Ties keep the canonical slot order, so the result is
    fully deterministic.
    """
    if len(gains) != len(slots):
        raise ValueError(
            f"gains has {len(gains)} entries, expected {len(slots)}"
        )
    indexed = sorted(
        range(len(slots)), key=lambda i: (-_finite(gains[i]), i)
    )
    return [slots[i] for i in indexed]


def _finite(gain: float) -> float:
    return gain if np.isfinite(gain) else float("-1e30")


def make_order(
    ordering: str,
    slots: Sequence[Slot],
    gains: Sequence[float],
    rng: np.random.Generator,
    swaps: Optional[int] = None,
) -> List[Slot]:
    """Dispatch to the requested scheduler.

    ``gains`` is only consulted by the weighted and greedy schedulers;
    passing an empty sequence is fine for ``fixed`` and ``random``.
    """
    if ordering == "fixed":
        return list(slots)
    if ordering == "random":
        return random_order(slots, rng, swaps)
    if ordering == "weighted":
        return weighted_order(slots, gains, rng, swaps)
    if ordering == "greedy":
        return greedy_order(slots, gains)
    raise ValueError(
        f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
    )
