"""Fixpoint dataflow over the call graph: the transitive DCL rules.

:func:`propagate` is a generic backward taint engine: given *seed*
functions (each with a human-readable reason) it walks caller edges to
a fixpoint and records, for every reached function, the call site and
callee it inherited the taint from -- so each violation can print a
witness chain (``floc -> _phase2 -> timed_helper``) instead of a bare
"transitively reaches".  Iteration order is sorted everywhere, so the
result -- and therefore ``repro lint --deep --json`` -- is
byte-deterministic.

The four deep rules (run only under ``--deep``; they are a separate
registry from the per-file ``RULES`` so plain ``repro lint`` semantics
are unchanged):

DCL010
    Closure of DCL002: no *transitive* wall-clock reach from
    ``src/repro/core/``.  Direct reads are DCL002's job; this rule
    flags core functions whose callees (at any depth, across modules)
    hit ``time.*`` / ``datetime.*``.  The tracer clock seam
    (``Tracer.clock``) is a class attribute, not a ``def``, so calls
    through it stay unresolved rather than tainting callers -- the seam
    is sanctioned by construction.
DCL011
    Closure of DCL001/DCL004: RNG threading.  A core function whose
    callees consume an RNG (take an ``rng``/``generator``/
    ``random_state`` parameter, or call ``numpy.random.default_rng``)
    must receive a generator itself and pass it explicitly.  Taint
    stops at call sites that cover the callee's RNG parameter.
DCL012
    No in-place mutation of ndarray parameters in ``core/``: an
    intraprocedural alias/escape walk over ``+=``, slice assignment and
    mutating method calls (``.sort()``, ``.fill()``, ``np.copyto``,
    ``out=``).  Buffers owned by a ``*State`` class (``self.x[...] =``,
    or a parameter annotated with a project ``*State`` class -- resolved
    cross-module through the symbol table) are exempt; ``.copy()``
    rebinding kills the alias.
DCL013
    No float ``==``/``!=`` in ``core/`` (the batched gain engine
    included): literal floats, ``float(...)``, ``nan``/``inf``, and --
    cross-module via the symbol table -- calls to project functions
    annotated to return ``float``.  Bitwise-parity seams must carry a
    line-level suppression with a justification.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from .callgraph import CallGraph, CallSite, build_callgraph
from .rules import Violation, _CLOCK_CALLS, _in_core
from .symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    ProjectSymbols,
    build_project,
)

__all__ = [
    "DEEP_RULES",
    "DeepRule",
    "FloatEqualityRule",
    "NdarrayParamMutationRule",
    "RngThreadingRule",
    "Taint",
    "TransitiveWallClockRule",
    "all_deep_rules",
    "deep_lint",
    "propagate",
    "witness_chain",
]


@dataclass(frozen=True)
class Taint:
    """How one function became tainted during propagation."""

    qualname: str
    reason: str  #: the seed function's reason, inherited unchanged
    site: Optional[CallSite]  #: call site that spread it (None = seed)
    parent: Optional[str]  #: callee the taint came from (None = seed)


def propagate(
    graph: CallGraph,
    seeds: Mapping[str, str],
    follow: Optional[Callable[[CallSite], bool]] = None,
) -> Dict[str, Taint]:
    """Backward (callee -> caller) taint propagation to a fixpoint.

    ``seeds`` maps qualnames to the reason they are tainted; ``follow``
    filters which call sites conduct taint (DCL011 passes
    ``lambda s: not s.passes_rng``).  BFS in sorted order makes the
    parent choice -- hence every witness chain -- deterministic.
    """
    tainted: Dict[str, Taint] = {}
    for qualname in sorted(seeds):
        if qualname in graph.nodes:
            tainted[qualname] = Taint(qualname, seeds[qualname], None, None)
    frontier = sorted(tainted)
    while frontier:
        discovered: Set[str] = set()
        for qualname in frontier:
            for site in graph.callers_of(qualname):
                if follow is not None and not follow(site):
                    continue
                if site.caller in tainted:
                    continue
                tainted[site.caller] = Taint(
                    site.caller, tainted[qualname].reason, site, qualname
                )
                discovered.add(site.caller)
        frontier = sorted(discovered)
    return tainted


def witness_chain(tainted: Mapping[str, Taint], qualname: str) -> List[str]:
    """``[qualname, ..., seed]`` following the recorded parents."""
    chain = [qualname]
    current = tainted[qualname]
    while current.parent is not None:
        chain.append(current.parent)
        current = tainted[current.parent]
    return chain


def _short_chain(chain: Sequence[str]) -> str:
    """Render a witness chain with module prefixes trimmed."""
    return " -> ".join(name.rsplit(".", 2)[-1] for name in chain)


class DeepRule:
    """A whole-program rule: sees the symbol table and the call graph."""

    code: str = ""
    summary: str = ""

    def check(
        self, project: ProjectSymbols, graph: CallGraph
    ) -> Iterator[Violation]:
        raise NotImplementedError

    def _violation(
        self, sym_path: str, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            rule=self.code, path=sym_path, line=line, col=col, message=message
        )


class TransitiveWallClockRule(DeepRule):
    """DCL010: no transitive wall-clock reach from core."""

    code = "DCL010"
    summary = (
        "no transitive wall-clock reach from src/repro/core: a core "
        "function's callees (at any depth) must not read time.* / "
        "datetime.* (closure of DCL002)"
    )

    def check(
        self, project: ProjectSymbols, graph: CallGraph
    ) -> Iterator[Violation]:
        seeds: Dict[str, str] = {}
        for qualname in sorted(graph.nodes):
            node = graph.nodes[qualname]
            hits = sorted(set(node.external_calls) & _CLOCK_CALLS)
            if hits:
                seeds[qualname] = hits[0]
        tainted = propagate(graph, seeds)
        for qualname in sorted(tainted):
            if qualname in seeds:
                continue  # direct reads are DCL002's per-file finding
            taint = tainted[qualname]
            sym = graph.nodes[qualname].sym
            if not _in_core(sym.path):
                continue
            chain = witness_chain(tainted, qualname)
            yield self._violation(
                sym.path,
                sym.lineno,
                sym.col,
                (
                    f"'{sym.name}' transitively reaches wall-clock call "
                    f"{taint.reason} via {_short_chain(chain)}; core timing "
                    "goes through the tracer clock seam"
                ),
            )


class RngThreadingRule(DeepRule):
    """DCL011: core callers of RNG consumers must thread a generator."""

    code = "DCL011"
    summary = (
        "core functions whose callees consume an RNG must receive it as "
        "a parameter and pass it explicitly at every call site "
        "(closure of DCL001/DCL004)"
    )

    #: external factories that mint a generator
    _FACTORIES = frozenset({"numpy.random.default_rng"})

    def check(
        self, project: ProjectSymbols, graph: CallGraph
    ) -> Iterator[Violation]:
        seeds: Dict[str, str] = {}
        for qualname in sorted(graph.nodes):
            node = graph.nodes[qualname]
            spec = node.sym.rng_parameter()
            if spec is not None:
                seeds[qualname] = f"'{node.sym.name}' (rng parameter '{spec[0]}')"
                continue
            factories = sorted(set(node.external_calls) & self._FACTORIES)
            if factories:
                seeds[qualname] = f"'{node.sym.name}' (calls {factories[0]})"
        tainted = propagate(
            graph, seeds, follow=lambda site: not site.passes_rng
        )
        for qualname in sorted(tainted):
            if qualname in seeds:
                continue  # the consumer itself is threaded (or DCL001/4's job)
            taint = tainted[qualname]
            sym = graph.nodes[qualname].sym
            if not _in_core(sym.path) or taint.site is None:
                continue
            chain = witness_chain(tainted, qualname)
            yield self._violation(
                sym.path,
                taint.site.lineno,
                taint.site.col,
                (
                    f"'{sym.name}' reaches RNG consumer {taint.reason} via "
                    f"{_short_chain(chain)} without threading a generator: "
                    "add an rng parameter and pass it explicitly"
                ),
            )


# -- DCL012 ----------------------------------------------------------------

#: attribute views that keep aliasing the base array
_VIEW_ATTRS = frozenset({"T", "mT", "flat", "real", "imag"})
#: numpy module-level functions returning (possible) views of arg 0
_VIEW_FUNCS = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "atleast_1d",
        "atleast_2d",
        "atleast_3d",
        "broadcast_to",
        "ravel",
        "reshape",
        "squeeze",
        "swapaxes",
        "transpose",
    }
)
#: methods returning (possible) views of the receiver
_VIEW_METHODS = frozenset(
    {"reshape", "view", "transpose", "squeeze", "ravel", "swapaxes"}
)
#: ndarray methods that mutate the receiver in place
_MUTATOR_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "setfield", "resize"}
)
#: numpy module-level functions that mutate their first argument
_MUTATOR_FUNCS = frozenset({"copyto", "place", "put", "putmask"})


class _MutationWalker:
    """Source-order alias walk over one function body.

    ``env`` maps local names to the tracked parameter they alias;
    rebinding to anything that is not a view (``x = x.copy()``) kills
    the alias.  Branches are walked in source order without joins --
    a deliberate approximation (documented in DEVELOPMENT.md): the
    ``.copy()``-then-mutate idiom the core uses is flow-ordered, and
    a missed kill only costs a suppressible false positive, never a
    silent false negative on straight-line code.
    """

    def __init__(
        self, rule: "NdarrayParamMutationRule", sym: FunctionSymbol
    ) -> None:
        self.rule = rule
        self.sym = sym
        self.env: Dict[str, str] = {}
        self.found: List[Violation] = []

    def run(self, tracked: Sequence[str]) -> List[Violation]:
        self.env = {param: param for param in tracked}
        assert self.sym.node is not None
        body = getattr(self.sym.node, "body", [])
        self._block(body)
        return self.found

    # -- alias queries ---------------------------------------------------
    def _root(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return self._root(expr.value)
        if isinstance(expr, ast.Attribute):
            if expr.attr in _VIEW_ATTRS:
                return self._root(expr.value)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _VIEW_FUNCS
                and expr.args
            ):
                # np.asarray(x), np.reshape(x, ...)
                return self._root(expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr in _VIEW_METHODS:
                return self._root(func.value)
            if (
                isinstance(func, ast.Name)
                and func.id in _VIEW_FUNCS
                and expr.args
            ):
                return self._root(expr.args[0])
            return None
        return None

    def _flag(self, node: ast.AST, param: str, kind: str) -> None:
        self.found.append(
            self.rule._violation(
                self.sym.path,
                getattr(node, "lineno", self.sym.lineno),
                getattr(node, "col_offset", 0),
                (
                    f"'{self.sym.name}' mutates ndarray parameter "
                    f"'{param}' in place ({kind}); return a new array, "
                    "`.copy()` first, or route through a *State-owned "
                    "buffer"
                ),
            )
        )

    # -- expression scan (mutating calls) --------------------------------
    def _scan(self, expr: Optional[ast.AST]) -> None:
        if expr is None:
            return
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Attribute):
                recv_root = self._root(func.value)
                if func.attr in _MUTATOR_METHODS and recv_root is not None:
                    self._flag(sub, recv_root, f".{func.attr}() call")
                elif (
                    func.attr in _MUTATOR_FUNCS
                    and sub.args
                    and self._root(sub.args[0]) is not None
                ):
                    root = self._root(sub.args[0])
                    assert root is not None
                    self._flag(sub, root, f"np.{func.attr}() call")
            for keyword in sub.keywords:
                if keyword.arg == "out":
                    root = self._root(keyword.value)
                    if root is not None:
                        self._flag(sub, root, "out= argument")

    # -- statement walk --------------------------------------------------
    def _block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _kill_targets(self, target: ast.AST) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                self.env.pop(sub.id, None)

    def _store_target(self, target: ast.AST) -> None:
        """A write *through* a target expression (not a rebind)."""
        if isinstance(target, ast.Subscript):
            root = self._root(target.value)
            if root is not None:
                self._flag(target, root, "item/slice assignment")
        elif isinstance(target, ast.Attribute):
            root = self._root(target.value)
            if root is not None:
                self._flag(target, root, f".{target.attr} assignment")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store_target(element)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._scan(stmt.value)
            root = self._root(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if root is not None:
                        self.env[target.id] = root
                    else:
                        self.env.pop(target.id, None)
                else:
                    self._store_target(target)
                    self._kill_targets_in_tuples(target)
        elif isinstance(stmt, ast.AnnAssign):
            self._scan(stmt.value)
            if isinstance(stmt.target, ast.Name):
                root = (
                    self._root(stmt.value) if stmt.value is not None else None
                )
                if root is not None:
                    self.env[stmt.target.id] = root
                else:
                    self.env.pop(stmt.target.id, None)
            else:
                self._store_target(stmt.target)
        elif isinstance(stmt, ast.AugAssign):
            self._scan(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                root = self.env.get(target.id)
                if root is not None:
                    self._flag(stmt, root, "augmented assignment")
            else:
                root = self._root(target)
                if root is not None:
                    self._flag(stmt, root, "augmented assignment")
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    root = self._root(target.value)
                    if root is not None:
                        self._flag(stmt, root, "del of item/slice")
                elif isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self._scan(stmt.value)
        elif isinstance(stmt, ast.If):
            self._scan(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan(stmt.iter)
            self._kill_targets(stmt.target)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._scan(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan(item.context_expr)
                if item.optional_vars is not None:
                    self._kill_targets(item.optional_vars)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs capture the parameter by closure; walk them
            # with the current env (shadowing params would be rare and
            # only costs a reviewable false positive).
            self._block(stmt.body)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                self._scan(value)

    def _kill_targets_in_tuples(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env.pop(element.id, None)


class NdarrayParamMutationRule(DeepRule):
    """DCL012: core functions must not mutate ndarray parameters."""

    code = "DCL012"
    summary = (
        "no in-place mutation of ndarray parameters in src/repro/core "
        "(+=, slice assignment, .sort()/.fill()/out=); *State-owned "
        "buffers are exempt"
    )

    def check(
        self, project: ProjectSymbols, graph: CallGraph
    ) -> Iterator[Violation]:
        for sym in project.iter_functions():
            if not _in_core(sym.path) or sym.node is None:
                continue
            tracked = self._tracked_params(project, sym)
            if not tracked:
                continue
            walker = _MutationWalker(self, sym)
            for violation in walker.run(tracked):
                yield violation

    def _tracked_params(
        self, project: ProjectSymbols, sym: FunctionSymbol
    ) -> List[str]:
        module = project.modules.get(sym.module)
        tracked: List[str] = []
        for index, param in enumerate(sym.params):
            if index == 0 and sym.has_implicit_self:
                continue  # self/cls: *State-owned buffers are the seam
            annotation = sym.annotations.get(param)
            if annotation is None:
                continue
            if self._is_state_annotation(project, module, annotation):
                continue
            if "ndarray" in annotation or "NDArray" in annotation:
                tracked.append(param)
        return tracked

    @staticmethod
    def _is_state_annotation(
        project: ProjectSymbols,
        module: Optional[ModuleSymbols],
        annotation: str,
    ) -> bool:
        """Annotation names a project ``*State`` class (cross-module)."""
        if module is None:
            return False
        cls: Optional[ClassSymbol]
        for token in annotation.replace('"', " ").replace("'", " ").split():
            cls = project.resolve_class_name(module, token.strip("[],"))
            if cls is not None and cls.name.lstrip("_").endswith("State"):
                return True
        return False


class FloatEqualityRule(DeepRule):
    """DCL013: no float ``==``/``!=`` in core outside sanctioned seams."""

    code = "DCL013"
    summary = (
        "no float ==/!= comparisons in src/repro/core (incl. "
        "gain_engine): compare with an explicit tolerance, or suppress "
        "at a justified bitwise-parity seam"
    )

    _FLOAT_CONST_TAILS = frozenset({"nan", "inf", "infty", "infinity"})

    def check(
        self, project: ProjectSymbols, graph: CallGraph
    ) -> Iterator[Violation]:
        for name in sorted(project.modules):
            module = project.modules[name]
            if not _in_core(module.path):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
                ):
                    continue
                operands = [node.left, *node.comparators]
                reason = None
                for operand in operands:
                    reason = self._floatish(project, module, operand)
                    if reason is not None:
                        break
                if reason is None:
                    continue
                yield self._violation(
                    module.path,
                    node.lineno,
                    node.col_offset,
                    (
                        f"float equality comparison ({reason}); use an "
                        "explicit tolerance (math.isclose / np.isclose) "
                        "or justify a bitwise-parity seam with "
                        "'# dcl: disable=DCL013'"
                    ),
                )

    def _floatish(
        self,
        project: ProjectSymbols,
        module: ModuleSymbols,
        expr: ast.AST,
    ) -> Optional[str]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
            return f"against float literal {expr.value!r}"
        if isinstance(expr, ast.UnaryOp) and isinstance(
            expr.operand, ast.Constant
        ):
            if isinstance(expr.operand.value, float):
                return "against a signed float literal"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id == "float":
                return "against float(...)"
            dotted = _call_dotted(module, func)
            if dotted is not None:
                resolution = project.resolve_callable(dotted)
                if (
                    resolution.function is not None
                    and resolution.function.returns is not None
                    and _returns_float(resolution.function.returns)
                ):
                    return (
                        "against the float return of "
                        f"'{resolution.function.qualname}'"
                    )
        tail = _name_tail(expr)
        if tail is not None and tail.lower() in self._FLOAT_CONST_TAILS:
            return f"against {tail}"
        return None


def _returns_float(annotation: str) -> bool:
    return annotation in ("float", "np.float64", "numpy.float64")


def _name_tail(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _call_dotted(module: ModuleSymbols, func: ast.AST) -> Optional[str]:
    """Resolve a call's func expression to an absolute dotted name."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    base = parts[0]
    if base in module.functions:
        return f"{module.name}.{parts[0]}" if len(parts) == 1 else None
    if base in module.imports:
        return ".".join([module.imports[base], *parts[1:]])
    return None


DEEP_RULES: Tuple[Type[DeepRule], ...] = (
    TransitiveWallClockRule,
    RngThreadingRule,
    NdarrayParamMutationRule,
    FloatEqualityRule,
)


def all_deep_rules(
    select: Optional[Sequence[str]] = None,
) -> List[DeepRule]:
    """Instantiate the deep registry, optionally filtered to codes."""
    rules = [cls() for cls in DEEP_RULES]
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select}
    return [rule for rule in rules if rule.code in wanted]


def deep_lint(
    files: Mapping[str, str],
    rules: Optional[Sequence[DeepRule]] = None,
) -> Tuple[List[Violation], Dict[str, object]]:
    """Run the deep rules over ``{path: source}``.

    Returns the (unsuppressed -- the caller applies suppressions) sorted
    violations plus the call-graph statistics block for ``--json``.
    """
    project = build_project(files)
    graph = build_callgraph(project)
    found: List[Violation] = []
    for rule in rules if rules is not None else all_deep_rules():
        found.extend(rule.check(project, graph))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found, graph.stats()
