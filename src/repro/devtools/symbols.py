"""Project-wide symbol table for the whole-program analyzer.

The per-file rules of :mod:`repro.devtools.rules` see one AST at a time;
the transitive rules (DCL010-DCL013) need to know, across the whole
tree, which function a name refers to.  This module builds that table:

* :class:`ModuleSymbols` -- one parsed module: its top-level functions,
  classes (with methods), and an import table mapping every local alias
  to the fully-dotted name it denotes (``from .actions import
  evaluate_toggle`` binds ``evaluate_toggle`` to
  ``repro.core.actions.evaluate_toggle``; relative imports are resolved
  against the module's package).
* :class:`FunctionSymbol` / :class:`ClassSymbol` -- one definition,
  addressed by *qualname* (``repro.core.floc.floc``,
  ``repro.core.floc._State.toggle``).
* :class:`ProjectSymbols` -- the project: every module keyed by dotted
  name, every function/class keyed by qualname, plus
  :meth:`ProjectSymbols.resolve_callable`, which chases an arbitrary
  dotted name (through re-export chains) to the function or class it
  names -- or reports *why* it could not (external module, dynamic
  attribute, ...).  The callgraph builder turns those reasons into the
  unresolved-call statistics ``repro lint --deep`` reports.

Module naming is lexical: the dotted name is the path after the last
``src/`` component (``src/repro/core/floc.py`` -> ``repro.core.floc``);
trees without a ``src/`` layout fall back to walking ``__init__.py``
markers on disk, then to the dotted relative path.  This keeps the
table constructible from in-memory sources (the fixture self-tests) and
byte-deterministic across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

__all__ = [
    "ClassSymbol",
    "FunctionSymbol",
    "ModuleSymbols",
    "ProjectSymbols",
    "Resolution",
    "build_project",
    "module_name_for_path",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    Preference order: the path after the last ``src/`` component, then
    the longest chain of on-disk ``__init__.py`` packages containing the
    file, then the full dotted relative path.  ``__init__.py`` maps to
    its package name.
    """
    p = _posix(path)
    parts = list(Path(p).parts)
    if parts and parts[0] == "/":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        leaf = parts[-1][: -len(".py")]
    else:
        leaf = parts[-1] if parts else ""
    dirs = parts[:-1]
    anchor = 0
    for index in range(len(dirs) - 1, -1, -1):
        if dirs[index] == "src":
            anchor = index + 1
            break
    else:
        # No src/ layout: walk __init__.py markers on disk (if any).
        real = Path(path)
        if real.exists():
            anchor = len(dirs)
            while anchor > 0 and (
                Path(*parts[:anchor]) / "__init__.py"
                if not p.startswith("/")
                else Path("/", *parts[:anchor]) / "__init__.py"
            ).exists():
                anchor -= 1
        else:
            anchor = 0
    package = [part for part in dirs[anchor:] if part]
    if leaf == "__init__":
        return ".".join(package) if package else leaf
    return ".".join(package + [leaf]) if package else leaf


def _parameter_names(node: _FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return tuple(names)


def _annotation_strings(node: _FunctionNode) -> Dict[str, str]:
    out: Dict[str, str] = {}
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            try:
                out[arg.arg] = ast.unparse(arg.annotation)
            except ValueError:  # pragma: no cover - unparse is total here
                continue
    return out


def _decorator_names(node: _FunctionNode) -> Tuple[str, ...]:
    names: List[str] = []
    for dec in node.decorator_list:
        expr = dec.func if isinstance(dec, ast.Call) else dec
        try:
            names.append(ast.unparse(expr))
        except ValueError:  # pragma: no cover
            continue
    return tuple(names)


@dataclass(frozen=True)
class FunctionSymbol:
    """One function or method definition, addressed by qualname."""

    qualname: str
    module: str
    name: str  #: local name: ``f`` or ``Cls.m``
    path: str
    lineno: int
    col: int
    params: Tuple[str, ...]
    annotations: Mapping[str, str]
    decorators: Tuple[str, ...]
    returns: Optional[str] = None
    class_name: Optional[str] = None
    node: Optional[ast.AST] = field(default=None, compare=False, repr=False)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def has_implicit_self(self) -> bool:
        """True for instance/class methods (``self``/``cls`` bound)."""
        return self.is_method and "staticmethod" not in self.decorators

    def rng_parameter(self) -> Optional[Tuple[str, int]]:
        """``(name, index)`` of the RNG-threading parameter, if any.

        The index is the position among *explicit* parameters; callers
        adjust for a bound ``self`` when matching positional arguments.
        """
        for index, param in enumerate(self.params):
            if param in _RNG_PARAM_NAMES:
                return param, index
        return None


#: Parameter names that (by convention, enforced by DCL004) carry the
#: caller-controlled RNG stream.
_RNG_PARAM_NAMES = ("rng", "generator", "random_state")


@dataclass(frozen=True)
class ClassSymbol:
    """One class definition with its directly-defined methods."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    bases: Tuple[str, ...]
    methods: Mapping[str, FunctionSymbol]
    node: Optional[ast.AST] = field(default=None, compare=False, repr=False)


class ModuleSymbols:
    """One parsed module: definitions plus a resolved import table."""

    def __init__(self, name: str, path: str, source: str) -> None:
        self.name = name
        self.path = _posix(path)
        self.source = source
        self.tree: ast.Module = ast.parse(source)
        self.package = name.rsplit(".", 1)[0] if "." in name else ""
        self.is_package = self.path.endswith("__init__.py")
        #: local alias -> fully dotted absolute target.  A target can
        #: denote a module (``numpy``), a module attribute
        #: (``repro.core.actions.evaluate_toggle``) or anything external.
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}
        self._index()

    # -- construction ----------------------------------------------------
    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sym = self._function_symbol(node, class_name=None)
                self.functions[sym.name] = sym
            elif isinstance(node, ast.ClassDef):
                self._index_class(node)
        # Imports may appear under top-level guards (TYPE_CHECKING,
        # try/except optional deps), so walk the whole tree for them.
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.imports[bound] = target

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted prefix an ``ImportFrom`` resolves against."""
        if node.level == 0:
            return node.module
        # Relative import: climb from this module's package.
        anchor = self.name if self.is_package else self.package
        hops = node.level - 1
        parts = anchor.split(".") if anchor else []
        if hops > len(parts):
            return None  # escapes the project root; unresolvable
        parts = parts[: len(parts) - hops]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None

    def _function_symbol(
        self, node: _FunctionNode, class_name: Optional[str]
    ) -> FunctionSymbol:
        local = f"{class_name}.{node.name}" if class_name else node.name
        returns: Optional[str] = None
        if node.returns is not None:
            try:
                returns = ast.unparse(node.returns)
            except ValueError:  # pragma: no cover
                returns = None
        return FunctionSymbol(
            qualname=f"{self.name}.{local}",
            module=self.name,
            name=local,
            path=self.path,
            lineno=node.lineno,
            col=node.col_offset,
            params=_parameter_names(node),
            annotations=_annotation_strings(node),
            decorators=_decorator_names(node),
            returns=returns,
            class_name=class_name,
            node=node,
        )

    def _index_class(self, node: ast.ClassDef) -> None:
        methods: Dict[str, FunctionSymbol] = {}
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                sym = self._function_symbol(sub, class_name=node.name)
                methods[sub.name] = sym
                self.functions[sym.name] = sym
        bases: List[str] = []
        for base in node.bases:
            try:
                bases.append(ast.unparse(base))
            except ValueError:  # pragma: no cover
                continue
        self.classes[node.name] = ClassSymbol(
            qualname=f"{self.name}.{node.name}",
            module=self.name,
            name=node.name,
            path=self.path,
            lineno=node.lineno,
            bases=tuple(bases),
            methods=methods,
            node=node,
        )


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving a dotted name to a callable.

    Exactly one of ``function`` / ``cls`` is set on success; on failure
    both are ``None`` and ``reason`` says why (``external`` for names
    rooted outside the project, ``missing-attribute`` for a project
    module that has no such definition, ``module`` when the name denotes
    a module rather than a callable).
    """

    function: Optional[FunctionSymbol] = None
    cls: Optional[ClassSymbol] = None
    reason: Optional[str] = None

    @property
    def resolved(self) -> bool:
        return self.function is not None or self.cls is not None


class ProjectSymbols:
    """All modules of one analyzed tree, indexed by dotted name."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionSymbol] = {}
        self.classes: Dict[str, ClassSymbol] = {}

    def add_module(self, module: ModuleSymbols) -> None:
        self.modules[module.name] = module
        for sym in module.functions.values():
            self.functions[sym.qualname] = sym
        for cls in module.classes.values():
            self.classes[cls.qualname] = cls

    def iter_functions(self) -> Iterator[FunctionSymbol]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    # -- name resolution -------------------------------------------------
    def _module_prefix(self, dotted: str) -> Tuple[Optional[str], List[str]]:
        """Longest known module prefix of ``dotted`` plus the remainder."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None, parts

    def is_project_name(self, dotted: str) -> bool:
        """True when ``dotted`` is rooted in an analyzed module tree."""
        root = dotted.split(".")[0]
        return any(
            name == root or name.startswith(root + ".") for name in self.modules
        )

    def resolve_callable(self, dotted: str, _depth: int = 0) -> Resolution:
        """Chase ``dotted`` (through re-exports) to a function or class."""
        if _depth > 8:  # re-export cycle guard
            return Resolution(reason="import-cycle")
        module_name, rest = self._module_prefix(dotted)
        if module_name is None:
            if self.is_project_name(dotted):
                # Rooted in the project but pointing at a module we did
                # not analyze (partial lint invocation).
                return Resolution(reason="unanalyzed-module")
            return Resolution(reason="external")
        module = self.modules[module_name]
        if not rest:
            return Resolution(reason="module")
        head = rest[0]
        if len(rest) == 1:
            if head in module.functions:
                return Resolution(function=module.functions[head])
            if head in module.classes:
                return Resolution(cls=module.classes[head])
            if head in module.imports:
                return self.resolve_callable(module.imports[head], _depth + 1)
            return Resolution(reason="missing-attribute")
        if len(rest) == 2 and rest[0] in module.classes:
            cls = module.classes[rest[0]]
            method = cls.methods.get(rest[1])
            if method is not None:
                return Resolution(function=method)
            return self.resolve_method(cls, rest[1], _depth + 1)
        if head in module.imports:
            target = ".".join([module.imports[head], *rest[1:]])
            return self.resolve_callable(target, _depth + 1)
        return Resolution(reason="missing-attribute")

    def resolve_class_name(
        self, module: ModuleSymbols, name: str
    ) -> Optional[ClassSymbol]:
        """Resolve a (possibly dotted) class name used inside ``module``."""
        if name in module.classes:
            return module.classes[name]
        root = name.split(".")[0]
        if root in module.imports:
            target = ".".join([module.imports[root], *name.split(".")[1:]])
            resolution = self.resolve_callable(target)
            return resolution.cls
        return None

    def resolve_method(
        self, cls: ClassSymbol, method: str, _depth: int = 0
    ) -> Resolution:
        """Find ``method`` on ``cls`` or (linearly) on its project bases."""
        if _depth > 8:
            return Resolution(reason="import-cycle")
        sym = cls.methods.get(method)
        if sym is not None:
            return Resolution(function=sym)
        module = self.modules.get(cls.module)
        for base_name in cls.bases:
            base = (
                self.resolve_class_name(module, base_name)
                if module is not None
                else None
            )
            if base is None or base.qualname == cls.qualname:
                continue
            found = self.resolve_method(base, method, _depth + 1)
            if found.resolved:
                return found
        return Resolution(reason="missing-method")


def build_project(
    files: Mapping[str, str],
    *,
    module_names: Optional[Mapping[str, str]] = None,
) -> ProjectSymbols:
    """Build a :class:`ProjectSymbols` from ``{path: source}``.

    Files that fail to parse are skipped (the per-file linter already
    reports them as parse errors).  ``module_names`` optionally
    overrides the lexical path-to-module mapping per path.
    """
    project = ProjectSymbols()
    for path in sorted(files):
        name = (
            module_names[path]
            if module_names is not None and path in module_names
            else module_name_for_path(path)
        )
        try:
            module = ModuleSymbols(name, path, files[path])
        except SyntaxError:
            continue
        project.add_module(module)
    return project
