"""Developer tooling: the DCL invariant linter (``repro lint``).

FLOC's correctness rests on invariants the test suite can only
spot-check -- determinism (every stochastic path threads an explicit
:class:`numpy.random.Generator`), the tracer clock seam, count-aware
residue math on matrices with missing entries, and ``__all__`` hygiene.
:mod:`repro.devtools.lint` checks them statically::

    python -m repro.devtools.lint src/
    repro lint --format json src/

See ``docs/DEVELOPMENT.md`` for the rule catalogue and the rationale
behind each invariant.

Re-exports are lazy (PEP 562) so ``python -m repro.devtools.lint``
does not import the submodule twice (runpy would warn).
"""

from typing import List

__all__ = [
    "FileContext",
    "LintReport",
    "RULES",
    "Rule",
    "Violation",
    "all_rules",
    "collect_files",
    "lint_paths",
    "lint_source",
    "main",
]

_FROM_RULES = {"FileContext", "RULES", "Rule", "Violation", "all_rules"}


def __getattr__(name: str) -> object:
    if name in _FROM_RULES:
        from . import rules

        return getattr(rules, name)
    if name in __all__:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
