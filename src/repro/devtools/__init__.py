"""Developer tooling: the DCL invariant linter (``repro lint``).

FLOC's correctness rests on invariants the test suite can only
spot-check -- determinism (every stochastic path threads an explicit
:class:`numpy.random.Generator`), the tracer clock seam, count-aware
residue math on matrices with missing entries, and ``__all__`` hygiene.
:mod:`repro.devtools.lint` checks them statically::

    python -m repro.devtools.lint src/
    repro lint --format json src/
    repro lint --deep src/            # + whole-program rules DCL010-013
    repro lint --call-graph floc src/ # print a function's reach

``--deep`` builds a project-wide symbol table
(:mod:`repro.devtools.symbols`), a conservative cross-module call graph
(:mod:`repro.devtools.callgraph`), and runs fixpoint dataflow rules
(:mod:`repro.devtools.dataflow`) that close the per-file invariants
transitively: wall-clock reach (DCL010), RNG threading (DCL011),
ndarray-parameter mutation (DCL012), float equality (DCL013).

See ``docs/DEVELOPMENT.md`` for the rule catalogue and the rationale
behind each invariant.

Re-exports are lazy (PEP 562) so ``python -m repro.devtools.lint``
does not import the submodule twice (runpy would warn).
"""

from typing import List

__all__ = [
    "CallGraph",
    "DEEP_RULES",
    "DeepRule",
    "FileContext",
    "LintReport",
    "ProjectSymbols",
    "RULES",
    "Rule",
    "Violation",
    "all_deep_rules",
    "all_rules",
    "build_callgraph",
    "build_project",
    "collect_files",
    "deep_lint",
    "known_codes",
    "lint_paths",
    "lint_source",
    "main",
    "propagate",
]

_FROM_RULES = {"FileContext", "RULES", "Rule", "Violation", "all_rules"}
_FROM_SYMBOLS = {"ProjectSymbols", "build_project"}
_FROM_CALLGRAPH = {"CallGraph", "build_callgraph"}
_FROM_DATAFLOW = {
    "DEEP_RULES",
    "DeepRule",
    "all_deep_rules",
    "deep_lint",
    "propagate",
}


def __getattr__(name: str) -> object:
    if name in _FROM_RULES:
        from . import rules

        return getattr(rules, name)
    if name in _FROM_SYMBOLS:
        from . import symbols

        return getattr(symbols, name)
    if name in _FROM_CALLGRAPH:
        from . import callgraph

        return getattr(callgraph, name)
    if name in _FROM_DATAFLOW:
        from . import dataflow

        return getattr(dataflow, name)
    if name in __all__:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(__all__)
