"""The DCL rule set: AST checks for FLOC's reproducibility invariants.

Each rule is a small class with a ``code`` (``DCL001`` ...), a
``summary`` shown by ``--list-rules``, a path predicate (``applies``)
and a ``check`` generator yielding :class:`Violation` records for one
parsed file.  Rules never execute the code under analysis -- everything
is derived from the AST plus a light import-alias table, so the linter
is safe to run on arbitrary trees.

The invariants (see ``docs/DEVELOPMENT.md`` for the full rationale):

DCL001
    No global RNG state.  The legacy ``np.random.<fn>`` /
    ``random.<fn>`` module-level API and bare
    ``np.random.default_rng()`` (no seed argument) make runs
    irreproducible; every stochastic path must thread an explicit
    :class:`numpy.random.Generator` (see :mod:`repro.core.rng`).
DCL002
    No wall-clock reads inside ``src/repro/core/``.  Core timing goes
    through the tracer clock seam (:attr:`repro.obs.tracer.Tracer.clock`)
    so tests can substitute a fake clock and traced runs stay
    bit-identical to untraced ones.
DCL003
    No ``np.nanmean``/``np.nansum``-style aggregation in core residue /
    gain code.  Cluster submatrices routinely contain fully-missing rows
    or columns; the ``repro.core.residue`` contract is count-aware
    arithmetic (explicit masks and counts), which never warns and never
    poisons gains with NaN.
DCL004
    Public ``repro.core`` functions take their RNG as a parameter
    (conventionally ``rng``) instead of constructing one internally, so
    callers control the stream end to end.
DCL005
    ``__all__`` completeness/consistency: every module declares
    ``__all__``, every listed name exists, every public top-level
    function/class is listed, and there are no duplicates.
DCL006
    No writes to module-level mutable state from ``repro.core``
    functions.  ``global`` rebinding, in-place mutation of module-level
    containers (``CACHE[k] = v``, ``REGISTRY.append(...)``) and
    ``os.environ`` writes make results depend on call order and survive
    across runs in long-lived processes -- the same class of hidden
    state DCL001 bans for RNGs.  Core stays pure: state is threaded
    through parameters and return values.
DCL007
    No silent exception swallowing in ``repro.core`` or
    ``repro.runtime``.  A bare ``except:`` (which also traps
    ``KeyboardInterrupt``/``SystemExit`` -- including the runtime's own
    task-cancellation paths) and a broad ``except Exception:`` whose
    body is only ``pass``/``...``/``continue`` turn failures the
    supervisor must *observe* (retry, degrade, report) into silent
    corruption.  Catch the specific exception, or handle-and-record.
DCL008
    No wall-clock reads inside ``src/repro/obs/perf/``.  The perf
    package's work counters must stay wall-clock-free so counted runs
    are bit-identical across machines; bench timing goes through the
    injectable clock seam (``repro.obs.perf.bench.DEFAULT_CLOCK``, an
    attribute reference to :attr:`repro.obs.tracer.Tracer.clock`), and
    per-run records are content-addressed rather than timestamped.
DCL009
    No per-slot scalar gain evaluators (``.exact_candidate()`` /
    ``.fast_candidate()``) in core outside the batched engine module
    (``repro/core/gain_engine.py``).  The sweep hot path scores whole
    lanes through :class:`repro.core.gain_engine.GainEngine`; a scalar
    call re-introduces the per-action O(n*m) rescan the engine exists
    to amortize, and silently bypasses its caches, counters, and the
    swappable scoring-backend boundary.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Violation",
    "Rule",
    "FileContext",
    "RULES",
    "all_rules",
    "GlobalRngRule",
    "WallClockRule",
    "NanAggregationRule",
    "RngParameterRule",
    "DunderAllRule",
    "MutableGlobalWriteRule",
    "ExceptionSwallowRule",
    "PerfWallClockRule",
    "ScalarEvaluatorRule",
]


@dataclass(frozen=True)
class Violation:
    """One rule hit: where it is, which rule fired, and why."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _posix(path: str) -> str:
    return path.replace("\\", "/")


def _in_core(path: str) -> bool:
    return "repro/core/" in _posix(path)


def _in_tests(path: str) -> bool:
    p = _posix(path)
    return p.startswith("tests/") or "/tests/" in p


def _in_runtime(path: str) -> bool:
    return "repro/runtime/" in _posix(path)


class FileContext:
    """A parsed file plus the import-alias tables the rules share.

    ``numpy_names`` are local names bound to the ``numpy`` module
    (``import numpy as np`` -> ``np``); ``numpy_random_names`` to the
    ``numpy.random`` submodule; ``time_names`` / ``random_names`` /
    ``datetime_names`` to the stdlib modules; ``from_imports`` maps a
    local name to its fully-dotted origin for ``from x import y``.
    """

    def __init__(self, path: str, source: str, tree: Optional[ast.Module] = None):
        self.path = _posix(path)
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source)
        self.numpy_names: Set[str] = set()
        self.numpy_random_names: Set[str] = set()
        self.time_names: Set[str] = set()
        self.random_names: Set[str] = set()
        self.datetime_names: Set[str] = set()
        self.from_imports: Dict[str, str] = {}
        self._index_imports()

    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or (
                        alias.name.startswith("numpy.") and alias.asname is None
                    ):
                        self.numpy_names.add(bound)
                    elif alias.name == "numpy.random":
                        self.numpy_random_names.add(bound)
                    elif alias.name == "time":
                        self.time_names.add(bound)
                    elif alias.name == "random":
                        self.random_names.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_names.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.from_imports[bound] = f"{node.module}.{alias.name}"

    def dotted_name(self, func: ast.expr) -> Optional[str]:
        """Resolve a call target into a canonical dotted name.

        ``np.random.seed`` -> ``numpy.random.seed`` (given
        ``import numpy as np``); ``from time import time`` + ``time()``
        -> ``time.time``.  Returns ``None`` for anything unresolvable
        (method calls on objects, subscripts, ...).
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.numpy_names:
            parts[0] = "numpy"
        elif root in self.numpy_random_names:
            parts[0:1] = ["numpy", "random"]
        elif root in self.time_names:
            parts[0] = "time"
        elif root in self.random_names:
            parts[0] = "random"
        elif root in self.datetime_names:
            parts[0] = "datetime"
        elif root in self.from_imports:
            parts[0:1] = self.from_imports[root].split(".")
        return ".".join(parts)


class Rule:
    """Base class: subclasses define ``code``, ``summary``, ``check``."""

    code: str = ""
    summary: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def _violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# ----------------------------------------------------------------------
# DCL001 -- no global RNG state
# ----------------------------------------------------------------------
#: ``numpy.random`` names that construct explicit streams and are
#: therefore allowed (``default_rng`` only with a seed argument).
_RNG_CONSTRUCTORS = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}
#: stdlib ``random`` attributes that are not the module-level global API.
_STDLIB_RANDOM_OK = {"Random", "SystemRandom"}


class GlobalRngRule(Rule):
    """DCL001: forbid the legacy global-state RNG APIs outside tests/."""

    code = "DCL001"
    summary = (
        "no global RNG state: legacy np.random.<fn> / random.<fn> calls "
        "and bare np.random.default_rng() are forbidden outside tests/"
    )

    def applies(self, path: str) -> bool:
        return not _in_tests(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[:2] == ["numpy", "random"] and len(parts) == 3:
                fn = parts[2]
                if fn == "default_rng":
                    if not node.args and not node.keywords:
                        yield self._violation(
                            ctx, node,
                            "bare np.random.default_rng() seeds from OS "
                            "entropy; pass a seed/SeedSequence or thread "
                            "a Generator (see repro.core.rng.resolve_rng)",
                        )
                elif fn not in _RNG_CONSTRUCTORS:
                    yield self._violation(
                        ctx, node,
                        f"np.random.{fn}() uses the legacy global RNG "
                        "state; thread an explicit np.random.Generator",
                    )
            elif parts[0] == "random" and len(parts) == 2:
                fn = parts[1]
                if fn not in _STDLIB_RANDOM_OK:
                    yield self._violation(
                        ctx, node,
                        f"random.{fn}() mutates the process-wide stdlib "
                        "RNG; thread an explicit np.random.Generator",
                    )


# ----------------------------------------------------------------------
# DCL002 -- no wall-clock reads in core/
# ----------------------------------------------------------------------
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class WallClockRule(Rule):
    """DCL002: forbid wall-clock reads in core (use the tracer clock)."""

    code = "DCL002"
    summary = (
        "no wall-clock reads in src/repro/core/: timing goes through the "
        "tracer clock seam (Tracer.clock) so tests can fake time"
    )

    def applies(self, path: str) -> bool:
        return _in_core(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _CLOCK_CALLS:
                yield self._violation(
                    ctx, node,
                    f"{dotted}() reads the wall clock inside repro.core; "
                    "use tracer.clock() (the tracer clock seam) instead",
                )


# ----------------------------------------------------------------------
# DCL003 -- no NaN-aggregation in core residue/gain paths
# ----------------------------------------------------------------------
_NAN_AGGREGATES = {
    "nanmean", "nansum", "nanstd", "nanvar", "nanmin", "nanmax",
    "nanmedian", "nanpercentile", "nanquantile", "nanprod",
    "nancumsum", "nancumprod", "nanargmin", "nanargmax",
}


class NanAggregationRule(Rule):
    """DCL003: forbid NaN-aggregation in core residue/gain math."""

    code = "DCL003"
    summary = (
        "no np.nanmean/np.nansum-style aggregation in src/repro/core/: "
        "residue and gain math must be count-aware (explicit masks)"
    )

    def applies(self, path: str) -> bool:
        return _in_core(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "numpy" and parts[-1] in _NAN_AGGREGATES:
                yield self._violation(
                    ctx, node,
                    f"np.{parts[-1]}() warns on all-NaN slices and hides "
                    "the occupancy count; use the count-aware mask "
                    "arithmetic of repro.core.residue instead",
                )


# ----------------------------------------------------------------------
# DCL004 -- public core functions accept rng as a parameter
# ----------------------------------------------------------------------
_RNG_FACTORIES = {"numpy.random.default_rng", "repro.core.rng.resolve_rng"}
_RNG_FACTORY_BARE = {"default_rng", "resolve_rng"}
_RNG_PARAM_NAMES = {"rng", "generator", "random_state"}


class RngParameterRule(Rule):
    """DCL004: public core functions must take their RNG as a parameter."""

    code = "DCL004"
    summary = (
        "public repro.core functions must accept their RNG as a "
        "parameter (rng=...) rather than constructing one internally"
    )

    def applies(self, path: str) -> bool:
        return _in_core(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for func in self._public_functions(ctx.tree):
            if self._has_rng_param(func):
                continue
            culprit = self._find_rng_construction(ctx, func)
            if culprit is not None:
                yield self._violation(
                    ctx, culprit,
                    f"public function '{func.name}' constructs an RNG "
                    "internally; accept it as an 'rng' parameter so "
                    "callers control the stream",
                )

    @staticmethod
    def _public_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
        """Top-level public functions and public methods of public classes."""
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
                yield node
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for sub in node.body:
                    if isinstance(sub, ast.FunctionDef) and not sub.name.startswith("_"):
                        yield sub

    @staticmethod
    def _has_rng_param(func: ast.FunctionDef) -> bool:
        args = func.args
        names = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }
        return bool(names & _RNG_PARAM_NAMES)

    def _find_rng_construction(
        self, ctx: FileContext, func: ast.FunctionDef
    ) -> Optional[ast.Call]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _RNG_FACTORIES or dotted.split(".")[-1] in _RNG_FACTORY_BARE:
                return node
        return None


# ----------------------------------------------------------------------
# DCL005 -- __all__ completeness/consistency
# ----------------------------------------------------------------------
class DunderAllRule(Rule):
    """DCL005: __all__ must exist, be accurate, and cover public defs."""

    code = "DCL005"
    summary = (
        "__all__ must exist, list only defined names, include every "
        "public top-level def/class, and contain no duplicates"
    )

    #: module basenames that legitimately have no public surface
    _EXEMPT = {"__main__.py", "conftest.py", "setup.py"}

    def applies(self, path: str) -> bool:
        return _posix(path).rsplit("/", 1)[-1] not in self._EXEMPT and not _in_tests(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        dunder_all = self._find_dunder_all(ctx.tree)
        public_defs = self._public_definitions(ctx.tree)
        if dunder_all is None:
            if public_defs:
                shown = ", ".join(sorted(public_defs)[:5])
                if len(public_defs) > 5:
                    shown += ", ..."
                yield Violation(
                    rule=self.code, path=ctx.path, line=1, col=0,
                    message=(
                        f"module defines public names ({shown}) "
                        "but no __all__"
                    ),
                )
            return
        node, names = dunder_all
        if names is None:  # dynamic __all__; nothing checkable
            return
        bound = self._bound_names(ctx.tree)
        # PEP 562: a module-level __getattr__ can lazily provide any
        # name, so "listed but not bound" cannot be decided statically.
        lazy = "__getattr__" in {
            n.name
            for n in ctx.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                yield self._violation(
                    ctx, node, f"duplicate __all__ entry '{name}'"
                )
            seen.add(name)
            if name not in bound and not lazy:
                yield self._violation(
                    ctx, node,
                    f"__all__ lists '{name}' which is not defined or "
                    "imported at module top level",
                )
        for name in sorted(public_defs - seen):
            yield self._violation(
                ctx, node,
                f"public definition '{name}' is missing from __all__ "
                "(export it or prefix it with an underscore)",
            )

    @staticmethod
    def _find_dunder_all(
        tree: ast.Module,
    ) -> Optional[Tuple[ast.stmt, Optional[List[str]]]]:
        for node in tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                value = node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == "__all__"):
                continue
            if isinstance(value, (ast.List, ast.Tuple)) and all(
                isinstance(el, ast.Constant) and isinstance(el.value, str)
                for el in value.elts
            ):
                return node, [el.value for el in value.elts]
            return node, None  # dynamic/augmented __all__
        return None

    @staticmethod
    def _public_definitions(tree: ast.Module) -> Set[str]:
        """Public functions/classes *defined* (not imported) at top level."""
        out: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if not node.name.startswith("_"):
                    out.add(node.name)
        return out

    @staticmethod
    def _bound_names(tree: ast.Module) -> Set[str]:
        """Every name bound at module top level (defs, imports, assigns)."""
        out: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                out.add(node.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    out.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        out.add(alias.asname or alias.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            out.add(sub.id)
            elif isinstance(node, (ast.If, ast.Try)):
                # names bound inside top-level guards (TYPE_CHECKING,
                # optional-dependency try/except) still count
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        out.add(sub.name)
                    elif isinstance(sub, ast.ImportFrom):
                        for alias in sub.names:
                            if alias.name != "*":
                                out.add(alias.asname or alias.name)
                    elif isinstance(sub, ast.Import):
                        for alias in sub.names:
                            out.add(alias.asname or alias.name.split(".")[0])
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            for name in ast.walk(target):
                                if isinstance(name, ast.Name):
                                    out.add(name.id)
        return out


# ----------------------------------------------------------------------
# DCL006 -- no writes to module-level mutable state in core/
# ----------------------------------------------------------------------
#: Expression node types that construct a mutable container literal.
_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp,
)
#: Call targets (last dotted component) that construct mutable containers.
_MUTABLE_FACTORIES = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "ChainMap",
}
#: Methods that mutate a container in place.
_MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "appendleft",
    "extendleft", "sort", "reverse",
}
#: ``os.environ`` methods that write the process environment.
_ENVIRON_WRITERS = {"update", "pop", "setdefault", "clear", "popitem"}


class MutableGlobalWriteRule(Rule):
    """DCL006: core functions must not write module-level mutable state."""

    code = "DCL006"
    summary = (
        "no writes to module-level mutable state from src/repro/core/ "
        "functions: global rebinding, in-place container mutation and "
        "os.environ writes make results call-order dependent"
    )

    def applies(self, path: str) -> bool:
        return _in_core(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        mutables = self._mutable_globals(ctx.tree)
        for node in ast.walk(ctx.tree):
            yield from self._check_environ(ctx, node)
        for func in self._functions(ctx.tree):
            yield from self._check_function(ctx, func, mutables)

    # -- discovery ------------------------------------------------------
    @classmethod
    def _mutable_globals(cls, tree: ast.Module) -> Set[str]:
        """Module-level names bound to mutable container values."""
        out: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not cls._is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
        return out

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            return name in _MUTABLE_FACTORIES
        return False

    @staticmethod
    def _functions(tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _shallow(func: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body without descending into nested functions
        (those are analyzed as functions in their own right)."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _local_bindings(cls, func: ast.AST) -> Set[str]:
        """Names the function binds locally (params + assignments)."""
        names: Set[str] = set()
        args = func.args  # type: ignore[attr-defined]
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
        for node in cls._shallow(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
        return names

    # -- checks ---------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, func: ast.AST, mutables: Set[str]
    ) -> Iterator[Violation]:
        declared_global: Set[str] = set()
        for node in self._shallow(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        shadowed = self._local_bindings(func) - declared_global
        reachable = mutables - shadowed
        name = getattr(func, "name", "<lambda>")
        for node in self._shallow(func):
            if isinstance(node, ast.Global):
                yield self._violation(
                    ctx, node,
                    f"'{name}' declares global {', '.join(node.names)}; "
                    "rebinding module state from a function makes results "
                    "call-order dependent -- thread state through "
                    "parameters/returns",
                )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                target = node.value
                if isinstance(target, ast.Name) and target.id in reachable:
                    yield self._violation(
                        ctx, node,
                        f"'{name}' mutates module-level container "
                        f"'{target.id}' in place (item write); module "
                        "state must stay read-only at runtime",
                    )
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in reachable
                    and func_expr.attr in _MUTATOR_METHODS
                ):
                    yield self._violation(
                        ctx, node,
                        f"'{name}' mutates module-level container "
                        f"'{func_expr.value.id}' in place "
                        f"(.{func_expr.attr}()); module state must stay "
                        "read-only at runtime",
                    )

    def _check_environ(
        self, ctx: FileContext, node: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            if ctx.dotted_name(node.value) == "os.environ":
                yield self._violation(
                    ctx, node,
                    "writes os.environ inside repro.core; environment "
                    "mutation leaks across runs in a long-lived process",
                )
        elif isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted in ("os.putenv", "os.unsetenv"):
                yield self._violation(
                    ctx, node,
                    f"{dotted}() mutates the process environment inside "
                    "repro.core",
                )
            elif dotted is not None and dotted.startswith("os.environ."):
                method = dotted.rsplit(".", 1)[-1]
                if method in _ENVIRON_WRITERS:
                    yield self._violation(
                        ctx, node,
                        f"os.environ.{method}() mutates the process "
                        "environment inside repro.core",
                    )


# ----------------------------------------------------------------------
# DCL007 -- no silent exception swallowing in core/ and runtime/
# ----------------------------------------------------------------------
#: Handler types considered "broad": swallowing one of these silences
#: every failure mode the supervisor is supposed to observe.
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}


class ExceptionSwallowRule(Rule):
    """DCL007: forbid silent exception swallowing in core and runtime."""

    code = "DCL007"
    summary = (
        "no bare 'except:' and no 'except Exception: pass'-style "
        "swallowing in src/repro/core/ or src/repro/runtime/: failures "
        "must surface to the supervisor (retry/degrade/report)"
    )

    def applies(self, path: str) -> bool:
        return _in_core(path) or _in_runtime(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self._violation(
                    ctx, node,
                    "bare 'except:' also traps KeyboardInterrupt/"
                    "SystemExit (including task cancellation); catch the "
                    "specific exception instead",
                )
            elif self._is_broad(node.type) and self._swallows(node.body):
                caught = self._render_type(node.type)
                yield self._violation(
                    ctx, node,
                    f"'except {caught}:' with an empty body silently "
                    "swallows every failure; catch the specific "
                    "exception, or handle and record it",
                )

    @classmethod
    def _is_broad(cls, type_expr: ast.expr) -> bool:
        """True when the handler catches Exception/BaseException,
        directly or anywhere in a tuple of types."""
        candidates: List[ast.expr] = (
            list(type_expr.elts)
            if isinstance(type_expr, ast.Tuple) else [type_expr]
        )
        for expr in candidates:
            if isinstance(expr, ast.Name) and expr.id in _BROAD_EXCEPTIONS:
                return True
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in _BROAD_EXCEPTIONS
            ):
                return True
        return False

    @staticmethod
    def _swallows(body: Sequence[ast.stmt]) -> bool:
        """True when the handler body cannot surface the failure:
        nothing but ``pass`` / ``...`` / ``continue``."""
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or Ellipsis literal
            return False
        return True

    @staticmethod
    def _render_type(type_expr: ast.expr) -> str:
        try:
            return ast.unparse(type_expr)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return "Exception"


# ----------------------------------------------------------------------
# DCL008 -- no wall-clock reads in obs/perf/
# ----------------------------------------------------------------------
class PerfWallClockRule(Rule):
    """DCL008: forbid wall-clock reads in the perf package."""

    code = "DCL008"
    summary = (
        "no wall-clock reads in src/repro/obs/perf/: work counters must "
        "stay machine-independent; bench timing is injected via "
        "bench.DEFAULT_CLOCK and records are content-addressed"
    )

    def applies(self, path: str) -> bool:
        return "repro/obs/perf/" in _posix(path)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in _CLOCK_CALLS:
                yield self._violation(
                    ctx, node,
                    f"{dotted}() reads the wall clock inside "
                    "repro.obs.perf; inject a clock through "
                    "bench.DEFAULT_CLOCK so counters and records stay "
                    "deterministic",
                )


# ----------------------------------------------------------------------
# DCL009 -- no per-slot scalar gain evaluators in core sweep code
# ----------------------------------------------------------------------
#: Method names of the per-slot scalar evaluators the batched engine
#: replaced.  Matched as attribute calls (``state.exact_candidate(...)``)
#: since the receiver's type is not statically resolvable.
_SCALAR_EVALUATORS = {"exact_candidate", "fast_candidate"}


class ScalarEvaluatorRule(Rule):
    """DCL009: core must score through the engine, not scalar rescans."""

    code = "DCL009"
    summary = (
        "no .exact_candidate()/.fast_candidate() calls in src/repro/core/ "
        "outside gain_engine.py: sweep scoring goes through the batched "
        "GainEngine lanes (caches, counters, backend protocol)"
    )

    def applies(self, path: str) -> bool:
        p = _posix(path)
        return _in_core(p) and not p.endswith("/gain_engine.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SCALAR_EVALUATORS
            ):
                yield self._violation(
                    ctx, node,
                    f".{func.attr}() is a per-slot scalar rescan; score "
                    "through repro.core.gain_engine.GainEngine lanes so "
                    "the sweep stays batched (and counted)",
                )


#: Registry, in code order.  ``lint.py`` instantiates from here; tests
#: can construct individual rules directly.
RULES: Tuple[Type[Rule], ...] = (
    GlobalRngRule,
    WallClockRule,
    NanAggregationRule,
    RngParameterRule,
    DunderAllRule,
    MutableGlobalWriteRule,
    ExceptionSwallowRule,
    PerfWallClockRule,
    ScalarEvaluatorRule,
)


def all_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registry, optionally filtered to ``select`` codes."""
    rules = [cls() for cls in RULES]
    if select is None:
        return rules
    wanted = {code.strip().upper() for code in select}
    unknown = wanted - {r.code for r in rules}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [r for r in rules if r.code in wanted]
