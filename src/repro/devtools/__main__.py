"""``python -m repro.devtools`` entry point (alias for the linter)."""

import sys

from .lint import main

if __name__ == "__main__":
    sys.exit(main())
