"""Conservative cross-module call graph over a :class:`ProjectSymbols`.

The graph answers one question for the transitive rules: *which project
functions can this function reach, and which external calls does it
make along the way?*  Resolution is deliberately conservative and its
gaps are *accounted for* rather than silent: every call expression in
every analyzed function ends up in exactly one of three buckets --

* a **resolved edge** (:class:`CallSite`) to another project function:
  direct ``Name`` calls, calls through import aliases (including
  re-export chains), ``self.method()`` / ``cls.method()`` dispatch, and
  attribute calls on receivers whose project class is known from a
  parameter annotation or a local ``x = ClassName(...)`` binding;
* an **external call** -- the canonical dotted name of a callable
  rooted outside the project (``time.perf_counter``,
  ``numpy.random.default_rng``), which the dataflow rules match against
  their seed sets;
* an **unresolved call** (:class:`UnresolvedCall`) with a category
  saying why (``callable-parameter``, ``attribute-dispatch``,
  ``dynamic-expression``, ...).  ``repro lint --deep`` reports the
  per-category totals so the blind spots of the analysis are visible.

A consequence worth knowing: the tracer clock seam
(``Tracer.clock = staticmethod(time.perf_counter)``) is a class
*attribute*, not a ``def``, so ``tracer.clock()`` lands in the
``missing-method`` bucket instead of resolving to a wall-clock call --
the seam is invisible to DCL010 by construction, which is exactly the
contract (tests substitute a fake clock there).

Each :class:`CallSite` also records whether the call *covers the
callee's RNG parameter* (positionally, by keyword, or conservatively
via ``*args``/``**kwargs``): DCL011's taint propagation stops at call
sites that thread the generator explicitly.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .symbols import (
    ClassSymbol,
    FunctionSymbol,
    ModuleSymbols,
    ProjectSymbols,
)

__all__ = [
    "CallGraph",
    "CallSite",
    "Node",
    "UnresolvedCall",
    "build_callgraph",
    "reach_report",
    "render_reach",
]

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass(frozen=True)
class CallSite:
    """One resolved project-internal call edge."""

    caller: str
    callee: str
    lineno: int
    col: int
    passes_rng: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "callee": self.callee,
            "line": self.lineno,
            "col": self.col,
            "passes_rng": self.passes_rng,
        }


@dataclass(frozen=True)
class UnresolvedCall:
    """One call the analysis could not resolve, with the reason why."""

    caller: str
    lineno: int
    col: int
    reason: str
    text: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.lineno,
            "col": self.col,
            "reason": self.reason,
            "text": self.text,
        }


class Node:
    """Per-function bucket of resolved, external and unresolved calls."""

    def __init__(self, sym: FunctionSymbol) -> None:
        self.sym = sym
        self.calls: List[CallSite] = []
        #: canonical dotted name -> first line it is called on
        self.external_calls: Dict[str, int] = {}
        self.unresolved: List[UnresolvedCall] = []

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": [site.to_dict() for site in self.calls],
            "external": sorted(self.external_calls),
            "unresolved": [u.to_dict() for u in self.unresolved],
        }


class CallGraph:
    """The whole-program graph plus its reverse index and statistics."""

    def __init__(self, project: ProjectSymbols) -> None:
        self.project = project
        self.nodes: Dict[str, Node] = {}
        self.callers: Dict[str, List[CallSite]] = {}

    def _finish(self) -> None:
        for qualname in sorted(self.nodes):
            node = self.nodes[qualname]
            node.calls.sort(key=lambda s: (s.lineno, s.col, s.callee))
            node.unresolved.sort(key=lambda u: (u.lineno, u.col, u.reason))
            for site in node.calls:
                self.callers.setdefault(site.callee, []).append(site)
        for sites in self.callers.values():
            sites.sort(key=lambda s: (s.caller, s.lineno, s.col))

    def callees(self, qualname: str) -> List[CallSite]:
        node = self.nodes.get(qualname)
        return list(node.calls) if node is not None else []

    def callers_of(self, qualname: str) -> List[CallSite]:
        return list(self.callers.get(qualname, []))

    def transitive_callees(self, qualname: str) -> List[str]:
        """All project functions reachable from ``qualname`` (sorted)."""
        seen: Set[str] = set()
        frontier = [qualname]
        while frontier:
            current = frontier.pop()
            for site in self.callees(current):
                if site.callee not in seen:
                    seen.add(site.callee)
                    frontier.append(site.callee)
        seen.discard(qualname)
        return sorted(seen)

    def stats(self) -> Dict[str, object]:
        edges = sum(len(node.calls) for node in self.nodes.values())
        external = sum(
            len(node.external_calls) for node in self.nodes.values()
        )
        by_reason: Dict[str, int] = {}
        for node in self.nodes.values():
            for unresolved in node.unresolved:
                by_reason[unresolved.reason] = (
                    by_reason.get(unresolved.reason, 0) + 1
                )
        total_unresolved = sum(by_reason.values())
        return {
            "modules": len(self.project.modules),
            "functions": len(self.nodes),
            "edges": edges,
            "external_calls": external,
            "unresolved_calls": {
                "total": total_unresolved,
                "by_reason": {k: by_reason[k] for k in sorted(by_reason)},
            },
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "nodes": {
                qualname: self.nodes[qualname].to_dict()
                for qualname in sorted(self.nodes)
            },
            "stats": self.stats(),
        }


def _dotted_parts(expr: ast.AST) -> Optional[List[str]]:
    """Flatten a pure ``Name``/``Attribute`` chain, or ``None``."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


_ANNOTATION_TOKEN = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _classes_from_annotation(
    project: ProjectSymbols, module: ModuleSymbols, annotation: str
) -> Optional[ClassSymbol]:
    """Best-effort: a project class named inside an annotation string."""
    for token in _ANNOTATION_TOKEN.findall(annotation.replace('"', "")):
        cls = project.resolve_class_name(module, token)
        if cls is not None:
            return cls
    return None


def _call_passes_rng(
    callee: FunctionSymbol, call: ast.Call, bound: bool
) -> bool:
    """Does this call site cover the callee's RNG parameter?

    Conservative in the *stopping* direction for DCL011: ``*args`` /
    ``**kwargs`` are assumed to pass the generator, so taint never
    propagates through a splat (avoiding false positives at the cost of
    possibly missing an unthreaded splat call).
    """
    spec = callee.rng_parameter()
    if spec is None:
        return False
    name, index = spec
    if bound and callee.has_implicit_self:
        index -= 1
    if index < 0:
        return False
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg == name:
            return True
    positional = 0
    for arg in call.args:
        if isinstance(arg, ast.Starred):
            return True
        positional += 1
    return positional > index


class _FunctionWalker:
    """Classify every call expression inside one function body."""

    def __init__(
        self,
        project: ProjectSymbols,
        module: ModuleSymbols,
        node: Node,
    ) -> None:
        self.project = project
        self.module = module
        self.node = node
        self.sym = node.sym
        #: local name -> project class (parameter annotations plus
        #: flow-insensitive ``x = ClassName(...)`` bindings)
        self.env: Dict[str, ClassSymbol] = {}
        self._own_class = (
            module.classes.get(self.sym.class_name)
            if self.sym.class_name is not None
            else None
        )
        self._build_env()

    def _build_env(self) -> None:
        for param, annotation in self.sym.annotations.items():
            cls = _classes_from_annotation(
                self.project, self.module, annotation
            )
            if cls is not None:
                self.env[param] = cls
        assert self.sym.node is not None
        for sub in ast.walk(self.sym.node):
            if not isinstance(sub, ast.Assign) or not isinstance(
                sub.value, ast.Call
            ):
                continue
            parts = _dotted_parts(sub.value.func)
            if parts is None:
                continue
            cls = self.project.resolve_class_name(
                self.module, ".".join(parts)
            )
            if cls is None:
                continue
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    self.env[target.id] = cls

    # -- classification --------------------------------------------------
    def walk(self) -> None:
        assert self.sym.node is not None
        for sub in ast.walk(self.sym.node):
            if isinstance(sub, ast.Call):
                self._classify(sub)

    def _edge(
        self, call: ast.Call, callee: FunctionSymbol, bound: bool
    ) -> None:
        self.node.calls.append(
            CallSite(
                caller=self.sym.qualname,
                callee=callee.qualname,
                lineno=call.lineno,
                col=call.col_offset,
                passes_rng=_call_passes_rng(callee, call, bound),
            )
        )

    def _external(self, call: ast.Call, dotted: str) -> None:
        self.node.external_calls.setdefault(dotted, call.lineno)

    def _unresolved(self, call: ast.Call, reason: str, text: str) -> None:
        self.node.unresolved.append(
            UnresolvedCall(
                caller=self.sym.qualname,
                lineno=call.lineno,
                col=call.col_offset,
                reason=reason,
                text=text,
            )
        )

    def _classify(self, call: ast.Call) -> None:
        parts = _dotted_parts(call.func)
        if parts is None:
            self._unresolved(call, "dynamic-expression", "<expr>()")
            return
        text = ".".join(parts)
        if len(parts) == 1:
            self._classify_name(call, parts[0])
            return
        base = parts[0]
        rest = parts[1:]
        # Instance receiver with a known project class.
        receiver = self.env.get(base)
        if receiver is None and base in ("self", "cls"):
            receiver = self._own_class
        if receiver is not None:
            if len(rest) == 1:
                resolution = self.project.resolve_method(receiver, rest[0])
                if resolution.function is not None:
                    self._edge(call, resolution.function, bound=True)
                else:
                    self._unresolved(
                        call, resolution.reason or "missing-method", text
                    )
            else:
                self._unresolved(call, "attribute-dispatch", text)
            return
        # Module alias / from-import chains.
        if base in self.module.imports:
            dotted = ".".join([self.module.imports[base], *rest])
            self._classify_dotted(call, dotted, text)
            return
        self._unresolved(call, "attribute-dispatch", text)

    def _classify_name(self, call: ast.Call, name: str) -> None:
        if name in self.module.functions:
            self._edge(call, self.module.functions[name], bound=False)
            return
        if name in self.module.classes:
            self._constructor(call, self.module.classes[name], name)
            return
        if name in self.module.imports:
            self._classify_dotted(call, self.module.imports[name], name)
            return
        if name in self.sym.params:
            self._unresolved(call, "callable-parameter", name)
            return
        if name in _BUILTIN_NAMES:
            self._external(call, f"builtins.{name}")
            return
        # A local binding (lambda, closure, comprehension variable...).
        self._unresolved(call, "dynamic-name", name)

    def _classify_dotted(
        self, call: ast.Call, dotted: str, text: str
    ) -> None:
        resolution = self.project.resolve_callable(dotted)
        if resolution.function is not None:
            # ``module.Class.method(obj, ...)`` is an unbound call.
            self._edge(call, resolution.function, bound=False)
            return
        if resolution.cls is not None:
            self._constructor(call, resolution.cls, text)
            return
        if resolution.reason == "external":
            self._external(call, dotted)
            return
        self._unresolved(call, resolution.reason or "unknown", text)

    def _constructor(
        self, call: ast.Call, cls: ClassSymbol, text: str
    ) -> None:
        """A class call is an edge to ``__init__`` when one is defined."""
        resolution = self.project.resolve_method(cls, "__init__")
        if resolution.function is not None:
            self._edge(call, resolution.function, bound=True)
        # A dataclass / inherited-init constructor has no project body
        # to analyze; that is not a blind spot worth reporting.


def build_callgraph(project: ProjectSymbols) -> CallGraph:
    """Walk every function of ``project`` and classify its calls."""
    graph = CallGraph(project)
    for sym in project.iter_functions():
        graph.nodes[sym.qualname] = Node(sym)
    for qualname in sorted(graph.nodes):
        node = graph.nodes[qualname]
        module = project.modules[node.sym.module]
        _FunctionWalker(project, module, node).walk()
    graph._finish()
    return graph


def render_reach(
    graph: CallGraph, pattern: str, *, max_depth: int = 12
) -> Tuple[List[str], bool]:
    """Human-readable transitive reach for ``repro lint --call-graph``.

    ``pattern`` matches a qualname exactly, or as a suffix on a dotted
    boundary (``floc`` matches ``repro.core.floc.floc``).  Returns the
    rendered lines and whether anything matched.
    """
    matches = [
        qualname
        for qualname in sorted(graph.nodes)
        if qualname == pattern or qualname.endswith("." + pattern)
    ]
    if not matches:
        return [], False
    lines: List[str] = []
    for root in matches:
        lines.extend(_render_one(graph, root, max_depth))
        lines.append("")
    return lines[:-1], True


def _render_one(graph: CallGraph, root: str, max_depth: int) -> List[str]:
    lines = [root]
    seen: Set[str] = {root}

    def visit(qualname: str, depth: int) -> None:
        node = graph.nodes.get(qualname)
        if node is None:
            return
        indent = "  " * depth
        for dotted in sorted(node.external_calls):
            lines.append(
                f"{indent}! {dotted}  "
                f"(line {node.external_calls[dotted]})"
            )
        reasons: Dict[str, int] = {}
        for unresolved in node.unresolved:
            reasons[unresolved.reason] = reasons.get(unresolved.reason, 0) + 1
        for reason in sorted(reasons):
            lines.append(f"{indent}? {reasons[reason]} x {reason}")
        for site in node.calls:
            marker = " [rng]" if site.passes_rng else ""
            if site.callee in seen:
                lines.append(f"{indent}- {site.callee}{marker} (seen)")
                continue
            seen.add(site.callee)
            lines.append(f"{indent}- {site.callee}{marker}")
            if depth < max_depth:
                visit(site.callee, depth + 1)

    visit(root, 1)
    return lines


def reach_report(
    graph: CallGraph, roots: Iterable[str]
) -> Dict[str, Sequence[str]]:
    """Map each root to its sorted transitive callees (for tooling)."""
    return {root: graph.transitive_callees(root) for root in sorted(roots)}
