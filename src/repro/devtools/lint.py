"""The linter engine and CLI: ``python -m repro.devtools.lint src/``.

Walks the given files/directories, parses every ``*.py`` file once,
runs the applicable :mod:`repro.devtools.rules` over each AST, applies
suppression comments, and reports in a human (``path:line:col: CODE
message``) or JSON format.  Exit status is 0 when the tree is clean,
1 when violations were found, 2 on usage errors.

``--deep`` additionally builds the project-wide symbol table and call
graph (:mod:`repro.devtools.symbols` / :mod:`repro.devtools.callgraph`)
and runs the transitive rules DCL010-DCL013 from
:mod:`repro.devtools.dataflow`; the JSON report then carries per-rule
violation counts plus the call-graph's unresolved-call statistics, and
is byte-identical across runs.  ``--call-graph FN`` prints a function's
transitive reach (project edges, external calls, unresolved buckets)
for debugging.

Suppression syntax
------------------
``# dcl: disable=DCL001`` (comma-separate multiple codes, or ``all``):

* on its own line -- disables the code(s) for the whole file; put it
  near the top with a short justification, as :mod:`repro.core.rng`
  does for its sanctioned RNG-construction seam;
* trailing a statement -- disables the code(s) for that line only.

Malformed codes (``disable=DCL01``) are reported as warnings instead of
being silently ignored; ``--strict-suppressions`` turns those warnings
-- plus suppressions naming unknown rules or suppressing rules that no
longer fire there (stale suppressions) -- into a failing exit status.

The library surface (:func:`lint_source`, :func:`lint_paths`) is what
the self-tests use: fixture snippets go through :func:`lint_source`
with a fake path, so path-scoped rules (DCL002/DCL003/DCL004 apply to
``repro/core/`` only) can be exercised without touching disk.
"""

from __future__ import annotations

import argparse
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dataflow import DEEP_RULES, DeepRule, all_deep_rules, deep_lint
from .rules import RULES, FileContext, Rule, Violation, all_rules

__all__ = [
    "LintReport",
    "SuppressionWarning",
    "build_parser",
    "collect_files",
    "known_codes",
    "lint_paths",
    "lint_source",
    "main",
]

_SUPPRESS_RE = re.compile(r"#\s*dcl:\s*disable=([A-Za-z0-9_,\s]+)")
_CODE_RE = re.compile(r"^(ALL|DCL\d{3})$")


def known_codes() -> Set[str]:
    """Every registered rule code, per-file and deep."""
    return {cls.code for cls in RULES} | {cls.code for cls in DEEP_RULES}


@dataclass(frozen=True)
class SuppressionWarning:
    """A problem with a ``# dcl: disable=`` directive."""

    path: str
    line: int
    kind: str  #: ``malformed-code`` | ``unknown-code`` | ``stale``
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "kind": self.kind,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:0: {self.kind} {self.message}"


class LintReport:
    """Violations plus the bookkeeping the CLI prints."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.files_checked: int = 0
        self.parse_errors: List[Tuple[str, str]] = []
        self.suppression_warnings: List[SuppressionWarning] = []
        self.stale_suppressions: List[SuppressionWarning] = []
        self.deep_stats: Optional[Dict[str, object]] = None

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors

    @property
    def strict_clean(self) -> bool:
        """Clean under ``--strict-suppressions`` as well."""
        return (
            self.clean
            and not self.suppression_warnings
            and not self.stale_suppressions
        )

    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return {code: counts[code] for code in sorted(counts)}

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
            "rule_counts": self.rule_counts(),
            "suppression_warnings": [
                w.to_dict() for w in self.suppression_warnings
            ],
            "stale_suppressions": [
                w.to_dict() for w in self.stale_suppressions
            ],
            "deep": self.deep_stats,
        }


@dataclass(frozen=True)
class _Directive:
    """One parsed ``# dcl: disable=`` comment."""

    lineno: int
    codes: Tuple[str, ...]  #: well-formed codes only, upper-cased
    file_level: bool


class _Suppressions:
    """Per-file suppression tables plus directive/warning records."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.file_level: Set[str] = set()
        self.by_line: Dict[int, Set[str]] = {}
        self.directives: List[_Directive] = []
        self.warnings: List[SuppressionWarning] = []
        self._parse(source)

    def _parse(self, source: str) -> None:
        # Tokenize so that only *comments* carry directives: a docstring
        # or message string that merely documents the syntax must not
        # act as (or be reported as) a suppression.
        try:
            comments = [
                (token.start[0], token.start[1], token.line, token.string)
                for token in tokenize.generate_tokens(
                    io.StringIO(source).readline
                )
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):
            return
        for lineno, col, physical_line, comment in comments:
            match = _SUPPRESS_RE.search(comment)
            if not match:
                continue
            valid: List[str] = []
            for raw in match.group(1).split(","):
                code = raw.strip().upper()
                if not code:
                    continue
                if not _CODE_RE.match(code):
                    self.warnings.append(
                        SuppressionWarning(
                            path=self.path,
                            line=lineno,
                            kind="malformed-code",
                            code=code,
                            message=(
                                f"malformed suppression code '{code}' "
                                "(expected DCLnnn or 'all'); it is ignored"
                            ),
                        )
                    )
                    continue
                if code != "ALL" and code not in known_codes():
                    self.warnings.append(
                        SuppressionWarning(
                            path=self.path,
                            line=lineno,
                            kind="unknown-code",
                            code=code,
                            message=(
                                f"suppression names unknown rule '{code}'"
                            ),
                        )
                    )
                    continue
                valid.append(code)
            file_level = physical_line[:col].strip() == ""
            self.directives.append(
                _Directive(lineno, tuple(valid), file_level)
            )
            if file_level:
                self.file_level |= set(valid)
            else:
                self.by_line.setdefault(lineno, set()).update(valid)

    def suppressed(self, violation: Violation) -> bool:
        for codes in (
            self.file_level,
            self.by_line.get(violation.line, set()),
        ):
            if "ALL" in codes or violation.rule in codes:
                return True
        return False

    def stale(
        self, raw_violations: Sequence[Violation], ran_codes: Set[str]
    ) -> List[SuppressionWarning]:
        """Line-level directive codes whose rule ran but found nothing.

        File-level directives are exempt: they sanction a *seam* (the
        :mod:`repro.core.rng` precedent) and may legitimately outlive
        any individual firing line.
        """
        out: List[SuppressionWarning] = []
        for directive in self.directives:
            if directive.file_level:
                continue
            fired = {
                v.rule
                for v in raw_violations
                if v.line == directive.lineno
            }
            for code in directive.codes:
                if code == "ALL":
                    live = bool(fired)
                elif code not in ran_codes:
                    continue  # rule not run (e.g. --select) -- can't judge
                else:
                    live = code in fired
                if live:
                    continue
                out.append(
                    SuppressionWarning(
                        path=self.path,
                        line=directive.lineno,
                        kind="stale",
                        code=code,
                        message=(
                            f"stale suppression: '{code}' no longer fires "
                            "on this line"
                        ),
                    )
                )
        return out


def _parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Back-compat helper: ``(file_level_codes, {lineno: codes})``."""
    tables = _Suppressions("<memory>", source)
    return tables.file_level, tables.by_line


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory file; ``path`` drives the path-scoped rules."""
    found, _, _ = _lint_file(source, path, rules)
    return found


def _lint_file(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Violation], List[Violation], _Suppressions]:
    """``(kept, raw_pre_suppression, suppression_tables)`` for one file."""
    if rules is None:
        rules = all_rules()
    ctx = FileContext(path, source)
    suppressions = _Suppressions(path, source)
    raw: List[Violation] = []
    for rule in rules:
        if not rule.applies(ctx.path):
            continue
        raw.extend(rule.check(ctx))
    raw.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    kept = [v for v in raw if not suppressions.suppressed(v)]
    return kept, raw, suppressions


def collect_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in sub.parts
                ):
                    continue
                out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    *,
    deep: bool = False,
    deep_rules: Optional[Sequence[DeepRule]] = None,
    check_suppressions: bool = True,
) -> LintReport:
    """Lint every ``*.py`` file under ``paths``.

    With ``deep=True`` the whole-program rules (DCL010-DCL013) run over
    the same file set and the report carries the call-graph statistics.
    ``check_suppressions`` collects malformed/unknown/stale suppression
    records (the CLI decides whether they fail the run).
    """
    if rules is None:
        rules = all_rules()
    report = LintReport()
    sources: Dict[str, str] = {}
    raw_by_path: Dict[str, List[Violation]] = {}
    tables_by_path: Dict[str, _Suppressions] = {}
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append((str(path), str(exc)))
            continue
        report.files_checked += 1
        try:
            kept, raw, tables = _lint_file(source, str(path), rules)
        except SyntaxError as exc:
            report.parse_errors.append((str(path), f"syntax error: {exc}"))
            continue
        sources[str(path)] = source
        raw_by_path[str(path)] = raw
        tables_by_path[str(path)] = tables
        report.violations.extend(kept)
        report.suppression_warnings.extend(tables.warnings)

    active_deep: Sequence[DeepRule] = ()
    if deep:
        active_deep = (
            deep_rules if deep_rules is not None else all_deep_rules()
        )
        deep_found, stats = deep_lint(sources, active_deep)
        report.deep_stats = stats
        for violation in deep_found:
            raw_by_path.setdefault(violation.path, []).append(violation)
            tables = tables_by_path.get(violation.path)
            if tables is None or not tables.suppressed(violation):
                report.violations.append(violation)

    if check_suppressions:
        deep_codes = {rule.code for rule in active_deep}
        for path_str in sorted(tables_by_path):
            tables = tables_by_path[path_str]
            ran = {
                rule.code for rule in rules if rule.applies(path_str)
            } | deep_codes
            report.stale_suppressions.extend(
                tables.stale(raw_by_path.get(path_str, []), ran)
            )

    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report.suppression_warnings.sort(key=lambda w: (w.path, w.line, w.code))
    report.stale_suppressions.sort(key=lambda w: (w.path, w.line, w.code))
    return report


def _split_select(
    select: Sequence[str],
) -> Tuple[List[str], List[str]]:
    """Partition ``--select`` codes into (per-file, deep) registries."""
    per_file_known = {cls.code for cls in RULES}
    deep_known = {cls.code for cls in DEEP_RULES}
    per_file: List[str] = []
    deep: List[str] = []
    unknown: List[str] = []
    for raw in select:
        code = raw.strip().upper()
        if code in per_file_known:
            per_file.append(code)
        elif code in deep_known:
            deep.append(code)
        else:
            unknown.append(code)
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return per_file, deep


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter for the repro tree "
            "(determinism, clock seam, count-aware residue math, "
            "RNG threading, __all__ hygiene), with an optional "
            "whole-program mode (--deep) that checks transitive "
            "invariants over the cross-module call graph"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help=(
            "also run the whole-program rules (DCL010-DCL013) over the "
            "cross-module call graph"
        ),
    )
    parser.add_argument(
        "--call-graph", default=None, metavar="FN",
        help=(
            "print the transitive reach of a function (qualname or "
            "dotted suffix, e.g. 'floc' or 'repro.core.floc.floc') "
            "and exit"
        ),
    )
    parser.add_argument(
        "--strict-suppressions", action="store_true",
        help=(
            "fail on malformed suppression codes, suppressions naming "
            "unknown rules, and stale suppressions"
        ),
    )
    return parser


def _run_call_graph(paths: Sequence[str], pattern: str) -> int:
    from .callgraph import build_callgraph, render_reach
    from .symbols import build_project

    sources: Dict[str, str] = {}
    for path in collect_files(paths):
        try:
            sources[str(path)] = path.read_text(encoding="utf-8")
        except OSError:
            continue
    graph = build_callgraph(build_project(sources))
    lines, matched = render_reach(graph, pattern)
    if not matched:
        print(f"error: no function matches '{pattern}'", file=sys.stderr)
        return 2
    for line in lines:
        print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        for deep_rule in all_deep_rules():
            print(f"{deep_rule.code}  (deep) {deep_rule.summary}")
        return 0
    try:
        if args.select:
            per_file_select, deep_select = _split_select(
                args.select.split(",")
            )
            rules = all_rules(per_file_select)
            deep_rules: Optional[Sequence[DeepRule]] = all_deep_rules(
                deep_select
            )
        else:
            rules = all_rules()
            deep_rules = None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.call_graph is not None:
            return _run_call_graph(args.paths, args.call_graph)
        report = lint_paths(
            args.paths,
            rules,
            deep=args.deep,
            deep_rules=deep_rules,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = not report.clean or (
        args.strict_suppressions and not report.strict_clean
    )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for violation in report.violations:
            print(violation.render())
        for path, error in report.parse_errors:
            print(f"{path}:1:0: PARSE {error}")
        for warning in report.suppression_warnings:
            print(warning.render(), file=sys.stderr)
        if args.strict_suppressions:
            for warning in report.stale_suppressions:
                print(warning.render(), file=sys.stderr)
        status = "clean" if report.clean else (
            f"{len(report.violations)} violation(s)"
        )
        deep_note = ""
        if report.deep_stats is not None:
            unresolved = report.deep_stats["unresolved_calls"]
            assert isinstance(unresolved, dict)
            deep_note = (
                f" [deep: {report.deep_stats['functions']} functions, "
                f"{report.deep_stats['edges']} edges, "
                f"{unresolved['total']} unresolved calls]"
            )
        print(
            f"checked {report.files_checked} file(s): {status}{deep_note}",
            file=sys.stderr,
        )
    return 0 if not failed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
