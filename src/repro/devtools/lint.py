"""The linter engine and CLI: ``python -m repro.devtools.lint src/``.

Walks the given files/directories, parses every ``*.py`` file once,
runs the applicable :mod:`repro.devtools.rules` over each AST, applies
suppression comments, and reports in a human (``path:line:col: CODE
message``) or JSON format.  Exit status is 0 when the tree is clean,
1 when violations were found, 2 on usage errors.

Suppression syntax
------------------
``# dcl: disable=DCL001`` (comma-separate multiple codes, or ``all``):

* on its own line -- disables the code(s) for the whole file; put it
  near the top with a short justification, as :mod:`repro.core.rng`
  does for its sanctioned RNG-construction seam;
* trailing a statement -- disables the code(s) for that line only.

The library surface (:func:`lint_source`, :func:`lint_paths`) is what
the self-tests use: fixture snippets go through :func:`lint_source`
with a fake path, so path-scoped rules (DCL002/DCL003/DCL004 apply to
``repro/core/`` only) can be exercised without touching disk.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .rules import FileContext, Rule, Violation, all_rules

__all__ = [
    "LintReport",
    "build_parser",
    "collect_files",
    "lint_paths",
    "lint_source",
    "main",
]

_SUPPRESS_RE = re.compile(r"#\s*dcl:\s*disable=([A-Za-z0-9_,\s]+)")


class LintReport:
    """Violations plus the bookkeeping the CLI prints."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.files_checked: int = 0
        self.parse_errors: List[Tuple[str, str]] = []

    @property
    def clean(self) -> bool:
        return not self.violations and not self.parse_errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "violations": [v.to_dict() for v in self.violations],
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
        }


def _parse_suppressions(source: str) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract ``# dcl: disable=...`` comments.

    Returns ``(file_level_codes, {lineno: codes})``.  A directive on a
    line of its own (only whitespace before the ``#``) is file-level;
    a trailing directive is line-level.  ``all`` disables every rule.
    """
    file_level: Set[str] = set()
    by_line: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = {
            code.strip().upper()
            for code in match.group(1).split(",")
            if code.strip()
        }
        if line[: match.start()].strip() in ("", "#"):
            file_level |= codes
        else:
            by_line.setdefault(lineno, set()).update(codes)
    return file_level, by_line


def _suppressed(
    violation: Violation,
    file_level: Set[str],
    by_line: Dict[int, Set[str]],
) -> bool:
    for codes in (file_level, by_line.get(violation.line, set())):
        if "ALL" in codes or violation.rule in codes:
            return True
    return False


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one in-memory file; ``path`` drives the path-scoped rules."""
    if rules is None:
        rules = all_rules()
    ctx = FileContext(path, source)
    file_level, by_line = _parse_suppressions(source)
    found: List[Violation] = []
    for rule in rules:
        if not rule.applies(ctx.path):
            continue
        for violation in rule.check(ctx):
            if not _suppressed(violation, file_level, by_line):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def collect_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if any(
                    part.startswith(".") or part == "__pycache__"
                    for part in sub.parts
                ):
                    continue
                out.add(sub)
        elif path.suffix == ".py":
            out.add(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(out)


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every ``*.py`` file under ``paths``."""
    if rules is None:
        rules = all_rules()
    report = LintReport()
    for path in collect_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append((str(path), str(exc)))
            continue
        report.files_checked += 1
        try:
            report.violations.extend(lint_source(source, str(path), rules))
        except SyntaxError as exc:
            report.parse_errors.append((str(path), f"syntax error: {exc}"))
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return report


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for ``repro lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST-based invariant linter for the repro tree "
            "(determinism, clock seam, count-aware residue math, "
            "RNG threading, __all__ hygiene)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary}")
        return 0
    try:
        rules = all_rules(
            args.select.split(",") if args.select else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = lint_paths(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for violation in report.violations:
            print(violation.render())
        for path, error in report.parse_errors:
            print(f"{path}:1:0: PARSE {error}")
        status = "clean" if report.clean else (
            f"{len(report.violations)} violation(s)"
        )
        print(
            f"checked {report.files_checked} file(s): {status}",
            file=sys.stderr,
        )
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
