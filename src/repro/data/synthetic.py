"""Synthetic matrices with embedded delta-clusters (Section 6.2 workloads).

Every synthetic experiment in the paper (Tables 2-5, Figures 8-9) runs on a
matrix with known planted clusters:

* background entries drawn uniformly from a wide value range,
* ``k*`` embedded clusters, each a submatrix whose entries follow the
  perfect shifting-coherence model ``d_ij = base + row_offset_i +
  col_offset_j`` plus optional Gaussian noise,
* optionally, a fraction of entries knocked out to "missing" to exercise
  the alpha-occupancy machinery.

Embedded clusters use disjoint row sets (columns may overlap freely, as in
a 3000x100 matrix with 50-100 clusters they must), so planted values never
overwrite each other and the ground truth stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from ..core.rng import RngLike, resolve_rng
from .distributions import erlang_volumes

__all__ = ["SyntheticDataset", "generate_embedded", "volumes_to_shapes"]


@dataclass
class SyntheticDataset:
    """A generated matrix plus its planted ground truth.

    Attributes
    ----------
    matrix:
        The data matrix (with missing entries if requested).
    embedded:
        The planted clusters, as :class:`DeltaCluster` objects.
    noise:
        The Gaussian noise sigma used inside the planted clusters.
    """

    matrix: DataMatrix
    embedded: List[DeltaCluster] = field(default_factory=list)
    noise: float = 0.0

    @property
    def n_embedded(self) -> int:
        return len(self.embedded)

    def embedded_average_residue(self) -> float:
        """Average residue of the planted clusters (0 when noise == 0)."""
        if not self.embedded:
            return 0.0
        return float(
            np.mean([cluster.residue(self.matrix) for cluster in self.embedded])
        )


def volumes_to_shapes(
    volumes: Sequence[float],
    n_rows: int,
    n_cols: int,
    min_rows: int = 2,
    min_cols: int = 2,
    aspect: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """Split target volumes into (rows, cols) counts matching the aspect.

    A volume ``v`` becomes roughly ``sqrt(v * aspect)`` rows by
    ``sqrt(v / aspect)`` columns, clamped to the matrix bounds and the
    structural minimum.  ``aspect`` (rows per column) defaults to the
    matrix's own ``M / N``; pass a smaller value to make clusters wider
    -- wide clusters are the regime in which random seeds carry
    supercritical fragments and FLOC recovery works (see DESIGN.md).
    """
    shapes = []
    if aspect is None:
        aspect = n_rows / n_cols
    if aspect <= 0:
        raise ValueError(f"aspect must be positive, got {aspect}")
    for volume in volumes:
        if volume <= 0:
            raise ValueError(f"cluster volume must be positive, got {volume}")
        rows = int(round(np.sqrt(volume * aspect)))
        rows = min(max(rows, min_rows), n_rows)
        cols = int(round(volume / rows))
        cols = min(max(cols, min_cols), n_cols)
        shapes.append((rows, cols))
    return shapes


def generate_embedded(
    n_rows: int,
    n_cols: int,
    n_clusters: int,
    *,
    mean_volume: Optional[float] = None,
    volume_variance_level: float = 0.0,
    cluster_shape: Optional[Tuple[int, int]] = None,
    cluster_aspect: Optional[float] = None,
    noise: float = 0.0,
    missing_fraction: float = 0.0,
    background_range: Tuple[float, float] = (0.0, 600.0),
    offset_range: Tuple[float, float] = (-100.0, 100.0),
    rng: RngLike = None,
) -> SyntheticDataset:
    """Generate a matrix with ``n_clusters`` planted delta-clusters.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions (objects x attributes).
    n_clusters:
        How many clusters to embed.  Row sets are disjoint, so
        ``n_clusters * rows_per_cluster`` must fit in ``n_rows``.
    mean_volume:
        Target mean volume of embedded clusters; volumes are drawn from an
        Erlang distribution with the given ``volume_variance_level``
        (Section 6.2's workload).  Mutually exclusive with
        ``cluster_shape``.
    cluster_shape:
        Fixed ``(rows, cols)`` per cluster; mutually exclusive with
        ``mean_volume``.  When neither is given, the paper's default of
        ``(0.04 * n_rows) x (0.1 * n_cols)`` per cluster is used
        (Section 6.2.1).
    cluster_aspect:
        Rows-per-column ratio used to turn Erlang volumes into shapes
        (see :func:`volumes_to_shapes`); only meaningful with
        ``mean_volume``.
    noise:
        Gaussian sigma added to planted entries (0 = perfect clusters).
    missing_fraction:
        Fraction of all entries knocked out to missing, uniformly at
        random (never enough rows/cols to empty a planted cluster is NOT
        guaranteed -- callers wanting guarantees should use alpha checks).
    background_range:
        Uniform range of background entries.
    offset_range:
        Uniform range of the per-row and per-column offsets inside planted
        clusters; the cluster base is drawn from ``background_range``.
    rng:
        Seed / generator for reproducibility.

    Returns
    -------
    SyntheticDataset
    """
    if n_rows < 1 or n_cols < 1:
        raise ValueError(f"matrix must be non-empty, got {n_rows}x{n_cols}")
    if n_clusters < 0:
        raise ValueError(f"n_clusters must be >= 0, got {n_clusters}")
    if not 0.0 <= missing_fraction < 1.0:
        raise ValueError(
            f"missing_fraction must be in [0, 1), got {missing_fraction}"
        )
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    if mean_volume is not None and cluster_shape is not None:
        raise ValueError("pass either mean_volume or cluster_shape, not both")
    generator = resolve_rng(rng)

    lo, hi = background_range
    if hi <= lo:
        raise ValueError(f"background_range must be increasing, got {background_range}")
    values = generator.uniform(lo, hi, size=(n_rows, n_cols))

    if n_clusters == 0:
        matrix = _apply_missing(values, missing_fraction, generator)
        return SyntheticDataset(matrix=matrix, embedded=[], noise=noise)

    if cluster_shape is not None:
        shapes = [cluster_shape] * n_clusters
    elif mean_volume is not None:
        volumes = erlang_volumes(
            mean_volume, volume_variance_level, n_clusters, generator
        )
        shapes = volumes_to_shapes(
            volumes, n_rows, n_cols, aspect=cluster_aspect
        )
    else:
        # Paper default (Section 6.2.1): average cluster volume
        # (0.04 * N_objects) x (0.1 * N_attributes).
        rows = max(2, int(round(0.04 * n_rows)))
        cols = max(2, int(round(0.10 * n_cols)))
        shapes = [(rows, cols)] * n_clusters

    total_rows_needed = sum(shape[0] for shape in shapes)
    if total_rows_needed > n_rows:
        raise ValueError(
            f"cannot embed {n_clusters} disjoint-row clusters needing "
            f"{total_rows_needed} rows in a matrix with {n_rows} rows"
        )

    row_pool = generator.permutation(n_rows)
    embedded: List[DeltaCluster] = []
    cursor = 0
    off_lo, off_hi = offset_range
    for rows_count, cols_count in shapes:
        rows = np.sort(row_pool[cursor: cursor + rows_count])
        cursor += rows_count
        cols = np.sort(
            generator.choice(n_cols, size=min(cols_count, n_cols), replace=False)
        )
        base = generator.uniform(lo, hi)
        row_offsets = generator.uniform(off_lo, off_hi, size=rows.size)
        col_offsets = generator.uniform(off_lo, off_hi, size=cols.size)
        planted = base + row_offsets[:, None] + col_offsets[None, :]
        if noise > 0:
            planted = planted + generator.normal(0.0, noise, size=planted.shape)
        values[np.ix_(rows, cols)] = planted
        embedded.append(DeltaCluster(rows, cols))

    matrix = _apply_missing(values, missing_fraction, generator)
    return SyntheticDataset(matrix=matrix, embedded=embedded, noise=noise)


def _apply_missing(
    values: np.ndarray, fraction: float, rng: np.random.Generator
) -> DataMatrix:
    if fraction > 0.0:
        knockout = rng.random(values.shape) < fraction
        values = np.where(knockout, np.nan, values)
    return DataMatrix(values)
