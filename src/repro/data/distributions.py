"""Random-volume distributions for workload generation (Section 6.2).

The paper draws the volumes of embedded clusters (and of Phase-1 seeds in
the Figure 9 experiment) from an **Erlang distribution** [Kleinrock 1975],
sweeping its *variance* from 0 (all clusters the same volume) upward (more
and more disparate volumes) while holding the mean fixed.

An Erlang(``shape``, ``rate``) variable -- a sum of ``shape`` i.i.d.
exponentials -- has mean ``shape / rate`` and variance ``shape / rate**2``.
Given a target mean ``mu`` and variance ``sigma2`` the moment-matched
parameters are ``shape = mu**2 / sigma2`` (rounded to a positive integer)
and ``rate = shape / mu``.  The paper's x-axis "variance" values (0..5)
are small dimensionless levels, not raw variances of volumes in the
hundreds, so :func:`erlang_volumes` interprets a level ``L`` as a relative
spread: the coefficient of variation is ``L / 5`` (level 5 means the
standard deviation equals the mean; level 0 means constant volumes).
"""

from __future__ import annotations

import numpy as np

__all__ = ["erlang", "erlang_volumes", "variance_level_to_shape"]

#: Highest variance level the paper sweeps (Table 5 / Figure 9).
MAX_VARIANCE_LEVEL = 5


def erlang(
    shape: int, rate: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample Erlang(shape, rate): the sum of ``shape`` Exp(rate) variables.

    Implemented as a Gamma draw with integer shape (an Erlang *is* that
    Gamma).  Raises for non-positive parameters.
    """
    if shape < 1:
        raise ValueError(f"Erlang shape must be a positive integer, got {shape}")
    if rate <= 0:
        raise ValueError(f"Erlang rate must be positive, got {rate}")
    return rng.gamma(shape=shape, scale=1.0 / rate, size=size)


def variance_level_to_shape(level: float) -> int:
    """Map the paper's variance level (0..5) to an Erlang shape parameter.

    Level ``L`` targets a coefficient of variation ``L / 5``; an Erlang
    with shape ``s`` has CV ``1 / sqrt(s)``, so ``s = (5 / L)**2``.  Level
    0 is the degenerate constant distribution and is handled by the
    caller, not here.
    """
    if level <= 0:
        raise ValueError("level 0 is the constant distribution; handle upstream")
    if level > MAX_VARIANCE_LEVEL:
        raise ValueError(
            f"variance level must be <= {MAX_VARIANCE_LEVEL}, got {level}"
        )
    return max(1, int(round((MAX_VARIANCE_LEVEL / level) ** 2)))


def erlang_volumes(
    mean: float,
    variance_level: float,
    size: int,
    rng: np.random.Generator,
    minimum: float = 4.0,
) -> np.ndarray:
    """Draw ``size`` cluster volumes with the given mean and variance level.

    ``variance_level == 0`` returns constant volumes.  Samples are floored
    at ``minimum`` (a cluster needs at least a 2x2 core to carry any
    coherence signal).
    """
    if mean <= 0:
        raise ValueError(f"mean volume must be positive, got {mean}")
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if variance_level == 0:
        return np.full(size, float(mean))
    shape = variance_level_to_shape(variance_level)
    rate = shape / mean
    samples = erlang(shape, rate, size, rng)
    return np.maximum(samples, minimum)
