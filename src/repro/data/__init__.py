"""Workload generators, dataset substitutes and matrix IO."""

from .categorical import CategoricalEncoding, encode_hybrid
from .distributions import erlang, erlang_volumes, variance_level_to_shape
from .io import (
    load_clusters,
    load_matrix_csv,
    load_matrix_npz,
    load_ratings_triples,
    save_clusters,
    save_matrix_csv,
    save_matrix_npz,
)
from .microarray import (
    FIGURE4_CONDITIONS,
    FIGURE4_GENES,
    FIGURE4_VALUES,
    YeastDataset,
    figure4_cluster,
    figure4_matrix,
    generate_yeast_like,
)
from .movielens import DEFAULT_GENRES, MovieLensDataset, generate_ratings
from .synthetic import SyntheticDataset, generate_embedded, volumes_to_shapes

__all__ = [
    "CategoricalEncoding",
    "DEFAULT_GENRES",
    "FIGURE4_CONDITIONS",
    "FIGURE4_GENES",
    "FIGURE4_VALUES",
    "MovieLensDataset",
    "SyntheticDataset",
    "YeastDataset",
    "encode_hybrid",
    "erlang",
    "erlang_volumes",
    "figure4_cluster",
    "figure4_matrix",
    "generate_embedded",
    "generate_ratings",
    "generate_yeast_like",
    "load_clusters",
    "load_matrix_csv",
    "load_matrix_npz",
    "load_ratings_triples",
    "save_clusters",
    "save_matrix_csv",
    "save_matrix_npz",
    "variance_level_to_shape",
    "volumes_to_shapes",
]
