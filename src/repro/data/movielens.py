"""MovieLens-like collaborative-filtering workload (Section 6.1.1).

The paper runs FLOC on the GroupLens MovieLens dump: 100,000 ratings from
943 users over 1682 movies, every user rating at least 20 movies, ~6% of
the matrix specified, alpha = 0.6.  The dump cannot be fetched offline, so
this generator produces a ratings matrix with the same statistical
signature and -- crucially -- the same *coherence structure* the paper
reports finding:

* movies carry genre labels and a base quality;
* users belong to hidden taste groups; a group holds a shared per-genre
  preference profile (e.g. "rates action movies ~2 points above family
  movies", the exact phenomenon of Section 6.1.1's discovered cluster);
* each user adds an individual bias (the "shifting" the delta-cluster
  model absorbs) plus rating noise, and ratings round to integers on the
  1..10 scale the paper's example uses;
* users rate only a sparse random subset of movies, biased toward their
  group's signature genres so the planted groups meet the occupancy
  threshold.

The ground-truth clusters are (group members) x (movies of the group's
signature genres).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from ..core.rng import RngLike, resolve_rng

__all__ = ["MovieLensDataset", "generate_ratings", "DEFAULT_GENRES"]

DEFAULT_GENRES = (
    "action", "family", "drama", "comedy", "sci-fi", "documentary",
)

RATING_MIN = 1.0
RATING_MAX = 10.0


@dataclass
class MovieLensDataset:
    """A generated ratings matrix plus its hidden structure.

    Attributes
    ----------
    matrix:
        Users x movies, ``NaN`` = unrated, specified values in 1..10.
    groups:
        Ground-truth coherent viewer groups as delta-clusters
        (group users x signature-genre movies).
    movie_genres:
        Genre index per movie.
    genre_names:
        Genre label per genre index.
    user_groups:
        Group index per user (-1 for users outside every group).
    """

    matrix: DataMatrix
    groups: List[DeltaCluster] = field(default_factory=list)
    movie_genres: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))
    genre_names: Tuple[str, ...] = ()
    user_groups: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def n_users(self) -> int:
        return self.matrix.n_rows

    @property
    def n_movies(self) -> int:
        return self.matrix.n_cols


def generate_ratings(
    n_users: int = 943,
    n_movies: int = 1682,
    *,
    n_groups: int = 6,
    group_size: int = 60,
    genres: Sequence[str] = DEFAULT_GENRES,
    signature_genres: int = 2,
    signature_movies: int = 50,
    density: float = 0.06,
    min_ratings: int = 20,
    rating_noise: float = 0.4,
    integer_ratings: bool = True,
    rng: RngLike = None,
) -> MovieLensDataset:
    """Generate the MovieLens-like workload.

    Parameters
    ----------
    n_users, n_movies:
        Matrix shape (the real dump is 943 x 1682).
    n_groups, group_size:
        Hidden coherent viewer groups; group row sets are disjoint.
    genres:
        Genre labels; movies are assigned round-robin-with-shuffle.
    signature_genres:
        How many genres form each group's coherent movie set.
    signature_movies:
        Cap on the number of movies in a group's coherent set (a random
        sample from its signature genres).  Table 1's discovered clusters
        span 36-72 movies; bounding the planted sets keeps the forced
        ratings from dominating the target density.
    density:
        Target fraction of specified ratings (~0.06 in the real dump).
    min_ratings:
        Every user rates at least this many movies ("each user has rated
        at least 20 movies").
    rating_noise:
        Gaussian sigma added before rounding.
    integer_ratings:
        Round to the 1..10 integer scale (the paper's movie example);
        rounding is itself a noise source that keeps group residues in
        the ~0.5 ballpark Table 1 reports.
    rng:
        Seed / generator.

    Returns
    -------
    MovieLensDataset
    """
    if n_users < 1 or n_movies < 1:
        raise ValueError(f"matrix must be non-empty, got {n_users}x{n_movies}")
    if n_groups * group_size > n_users:
        raise ValueError(
            f"{n_groups} disjoint groups of {group_size} users need "
            f"{n_groups * group_size} users, only {n_users} available"
        )
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    if signature_genres < 1 or signature_genres > len(genres):
        raise ValueError(
            f"signature_genres must be in [1, {len(genres)}], "
            f"got {signature_genres}"
        )
    generator = resolve_rng(rng)
    genre_names = tuple(genres)
    n_genres = len(genre_names)

    movie_genres = generator.integers(0, n_genres, size=n_movies)
    movie_quality = generator.uniform(3.0, 8.0, size=n_movies)
    user_bias = generator.normal(0.0, 1.5, size=n_users)

    # Assign disjoint user groups.
    user_groups = np.full(n_users, -1, dtype=int)
    shuffled_users = generator.permutation(n_users)
    for g in range(n_groups):
        members = shuffled_users[g * group_size: (g + 1) * group_size]
        user_groups[members] = g

    # Per-group per-genre preference offsets; group members share them
    # exactly (their ratings then differ only by user bias -> shifting
    # coherence).  Ungrouped users get independent random preferences.
    group_prefs = generator.uniform(-2.5, 2.5, size=(n_groups, n_genres))
    solo_prefs = generator.uniform(-2.5, 2.5, size=(n_users, n_genres))

    full = np.empty((n_users, n_movies))
    for user in range(n_users):
        g = user_groups[user]
        prefs = group_prefs[g] if g >= 0 else solo_prefs[user]
        raw = movie_quality + prefs[movie_genres] + user_bias[user]
        if rating_noise > 0:
            raw = raw + generator.normal(0.0, rating_noise, size=n_movies)
        full[user] = raw
    full = np.clip(full, RATING_MIN, RATING_MAX)
    if integer_ratings:
        full = np.round(full)

    group_movies = _group_movie_sets(
        movie_genres, n_groups, n_genres, signature_genres,
        signature_movies, generator,
    )
    rated = _sparsify(
        n_users, n_movies, density, min_ratings, user_groups,
        group_movies, generator,
    )
    values = np.where(rated, full, np.nan)
    matrix = DataMatrix(values)

    groups = _ground_truth_groups(user_groups, group_movies, n_groups)
    return MovieLensDataset(
        matrix=matrix,
        groups=groups,
        movie_genres=movie_genres,
        genre_names=genre_names,
        user_groups=user_groups,
    )


def _group_signature(g: int, n_genres: int, signature_genres: int) -> np.ndarray:
    """Deterministic signature genres for group ``g`` (wrapping window)."""
    return (g + np.arange(signature_genres)) % n_genres


def _group_movie_sets(
    movie_genres: np.ndarray,
    n_groups: int,
    n_genres: int,
    signature_genres: int,
    signature_movies: int,
    rng: np.random.Generator,
) -> list:
    """The coherent movie set of each group: a bounded random sample of
    its signature genres' movies."""
    sets = []
    for g in range(n_groups):
        signature = _group_signature(g, n_genres, signature_genres)
        pool = np.flatnonzero(np.isin(movie_genres, signature))
        if pool.size > signature_movies:
            pool = rng.choice(pool, size=signature_movies, replace=False)
        sets.append(np.sort(pool))
    return sets


def _sparsify(
    n_users: int,
    n_movies: int,
    density: float,
    min_ratings: int,
    user_groups: np.ndarray,
    group_movies: list,
    rng: np.random.Generator,
) -> np.ndarray:
    """Build the rated-entry mask.

    Group members always rate their group's coherent movie set (so the
    planted cluster is fully specified and trivially meets any alpha);
    everything else is Bernoulli at the rate needed to hit ``density``,
    topped up to ``min_ratings`` per user.
    """
    rated = np.zeros((n_users, n_movies), dtype=bool)
    for g, movies in enumerate(group_movies):
        members = np.flatnonzero(user_groups == g)
        if members.size and movies.size:
            rated[np.ix_(members, movies)] = True

    target_total = int(density * n_users * n_movies)
    already = int(rated.sum())
    remaining_slots = (~rated).sum()
    if target_total > already and remaining_slots > 0:
        fill_rate = min((target_total - already) / remaining_slots, 1.0)
        extra = rng.random((n_users, n_movies)) < fill_rate
        rated |= extra & ~rated

    # Guarantee the minimum per user.
    counts = rated.sum(axis=1)
    for user in np.flatnonzero(counts < min_ratings):
        unrated = np.flatnonzero(~rated[user])
        need = min(min_ratings - counts[user], unrated.size)
        if need > 0:
            rated[user, rng.choice(unrated, size=need, replace=False)] = True
    return rated


def _ground_truth_groups(
    user_groups: np.ndarray,
    group_movies: list,
    n_groups: int,
) -> List[DeltaCluster]:
    clusters = []
    for g in range(n_groups):
        members = np.flatnonzero(user_groups == g)
        movies = group_movies[g]
        if members.size and movies.size:
            clusters.append(DeltaCluster(members, movies))
    return clusters
