"""Categorical attributes (the paper's deferred extension).

Footnote 2 of the paper: "In general, the attributes can take either
numerical or categorical values. ... The scenario of having categorical
attributes or even hybrid attribute types is left to the full version of
this paper."  That full version never appeared, so this module supplies
the natural construction:

* a categorical attribute with values ``{a, b, c, ...}`` becomes one
  **indicator column per value** (one-hot), with a missing categorical
  entry mapping to missing indicators;
* on indicator columns, shifting coherence degenerates to *agreement*:
  a set of objects is coherent on an indicator exactly when they all
  chose (or all did not choose) that value, so the residue of an
  indicator block measures categorical disagreement on a 0..1 scale;
* hybrid matrices mix numeric columns (optionally rescaled so residues
  are commensurate with the 0..1 indicator scale) with encoded blocks.

:class:`CategoricalEncoding` keeps the bookkeeping needed to map a
discovered delta-cluster's encoded columns back to original attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix

__all__ = ["CategoricalEncoding", "encode_hybrid"]

#: Sentinel accepted as "missing" in categorical input.
MISSING_TOKENS = (None, "", "NA", "NaN", "nan")


@dataclass
class CategoricalEncoding:
    """A hybrid matrix encoded for delta-cluster mining, plus its map.

    Attributes
    ----------
    matrix:
        The encoded :class:`DataMatrix` (numeric columns first, then one
        indicator column per categorical value).
    column_of:
        For every encoded column index, the original attribute index it
        came from.
    value_of:
        For every encoded column index, the category value it indicates
        (``None`` for numeric columns).
    numeric_scale:
        The factor numeric columns were divided by (1.0 = untouched).
    """

    matrix: DataMatrix
    column_of: Tuple[int, ...]
    value_of: Tuple[Optional[str], ...]
    numeric_scale: float = 1.0

    def original_columns(self, encoded_cols: Sequence[int]) -> List[int]:
        """Original attribute indices touched by encoded columns."""
        return sorted({self.column_of[j] for j in encoded_cols})

    def describe_cluster(self, cluster: DeltaCluster) -> Dict[int, List[str]]:
        """Per original attribute, the category values a cluster *holds*.

        A set of rows sharing one category is coherent (constant) on
        every indicator of that attribute, so a discovered cluster
        typically contains them all; the values reported here are the
        ones the cluster's rows predominantly take (indicator mean over
        the rows > 0.5).  Numeric attributes map to an empty list (they
        contribute by magnitude, not by value identity).
        """
        out: Dict[int, List[str]] = {}
        rows = np.asarray(cluster.rows, dtype=np.intp)
        for j in cluster.cols:
            original = self.column_of[j]
            value = self.value_of[j]
            out.setdefault(original, [])
            if value is None or rows.size == 0:
                continue
            column = self.matrix.values[rows, j]
            specified = column[~np.isnan(column)]
            if specified.size and float(specified.mean()) > 0.5:
                out[original].append(value)
        return out


def encode_hybrid(
    columns: Sequence[Sequence],
    categorical: Sequence[int],
    *,
    scale_numeric: bool = True,
    row_labels: Optional[Sequence[str]] = None,
) -> CategoricalEncoding:
    """Encode a hybrid column collection into a minable matrix.

    Parameters
    ----------
    columns:
        One sequence per attribute (column-major input); numeric columns
        hold numbers / ``NaN``, categorical ones hold hashable values
        (``None``/``""``/``"NA"`` = missing).
    categorical:
        Indices of the categorical columns.
    scale_numeric:
        Divide each numeric column by its specified-value range so its
        residues are commensurate with the 0..1 indicator scale.  The
        common range factor is recorded in ``numeric_scale`` (per-column
        ranges are folded into the data; 1.0 when nothing was scaled).

    Returns
    -------
    CategoricalEncoding
    """
    if not columns:
        raise ValueError("need at least one column")
    n_rows = len(columns[0])
    for i, column in enumerate(columns):
        if len(column) != n_rows:
            raise ValueError(
                f"column {i} has {len(column)} entries, expected {n_rows}"
            )
    categorical_set = set(categorical)
    for index in categorical_set:
        if not 0 <= index < len(columns):
            raise IndexError(f"categorical index {index} out of range")

    encoded: List[np.ndarray] = []
    column_of: List[int] = []
    value_of: List[Optional[str]] = []

    # Numeric columns first (stable order), then categorical blocks.
    for index, column in enumerate(columns):
        if index in categorical_set:
            continue
        numeric = np.array(
            [np.nan if v is None else float(v) for v in column], dtype=float
        )
        if scale_numeric:
            specified = numeric[~np.isnan(numeric)]
            span = float(specified.max() - specified.min()) if specified.size else 0.0
            if span > 0:
                numeric = numeric / span
        encoded.append(numeric)
        column_of.append(index)
        value_of.append(None)

    for index in sorted(categorical_set):
        column = columns[index]
        present = [
            v for v in column
            if not (v in MISSING_TOKENS or (isinstance(v, float) and np.isnan(v)))
        ]
        values = sorted({str(v) for v in present})
        if not values:
            raise ValueError(f"categorical column {index} is entirely missing")
        for value in values:
            indicator = np.empty(n_rows)
            for row, cell in enumerate(column):
                if cell in MISSING_TOKENS or (
                    isinstance(cell, float) and np.isnan(cell)
                ):
                    indicator[row] = np.nan
                else:
                    indicator[row] = 1.0 if str(cell) == value else 0.0
            encoded.append(indicator)
            column_of.append(index)
            value_of.append(value)

    matrix = DataMatrix(np.column_stack(encoded), row_labels=row_labels)
    return CategoricalEncoding(
        matrix=matrix,
        column_of=tuple(column_of),
        value_of=tuple(value_of),
        numeric_scale=1.0,
    )
