"""Persistence for matrices and clusterings.

Two formats:

* **NPZ** -- lossless binary round-trip of a :class:`DataMatrix`
  (values + optional labels) and of cluster index sets.
* **CSV** -- human-readable matrices where an empty cell means "missing";
  the natural interchange format for ratings tables and expression data.

Plus one durability primitive shared by everything that checkpoints:
:func:`write_json_atomic` (write-temp, fsync, ``os.replace``), the
writer behind the runtime's resumable manifests
(:mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

import csv
import io as _stdlib_io
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix

__all__ = [
    "save_matrix_npz",
    "load_matrix_npz",
    "save_matrix_csv",
    "load_matrix_csv",
    "load_ratings_triples",
    "save_clusters",
    "load_clusters",
    "write_json_atomic",
]

PathLike = Union[str, Path]


def save_matrix_npz(path: PathLike, matrix: DataMatrix) -> None:
    """Write a matrix (and its labels, when present) to ``path``."""
    payload = {"values": matrix.values}
    if matrix.row_labels is not None:
        payload["row_labels"] = np.array(matrix.row_labels)
    if matrix.col_labels is not None:
        payload["col_labels"] = np.array(matrix.col_labels)
    np.savez_compressed(str(path), **payload)


def load_matrix_npz(path: PathLike) -> DataMatrix:
    """Load a matrix written by :func:`save_matrix_npz`."""
    with np.load(str(path), allow_pickle=False) as archive:
        values = archive["values"]
        row_labels = (
            [str(s) for s in archive["row_labels"]]
            if "row_labels" in archive
            else None
        )
        col_labels = (
            [str(s) for s in archive["col_labels"]]
            if "col_labels" in archive
            else None
        )
    return DataMatrix(values, row_labels, col_labels)


def save_matrix_csv(
    path: PathLike, matrix: DataMatrix, header: bool = True
) -> None:
    """Write a matrix as CSV; missing entries become empty cells.

    When ``header`` is true and the matrix has column labels, they form
    the first row (with a leading empty cell when row labels exist).
    """
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        has_row_labels = matrix.row_labels is not None
        if header and matrix.col_labels is not None:
            prefix: List[str] = [""] if has_row_labels else []
            writer.writerow(prefix + list(matrix.col_labels))
        for i in range(matrix.n_rows):
            cells: List[str] = []
            if has_row_labels:
                cells.append(matrix.row_labels[i])
            for j in range(matrix.n_cols):
                value = matrix.values[i, j]
                cells.append("" if np.isnan(value) else repr(float(value)))
            writer.writerow(cells)


def load_matrix_csv(
    path: PathLike,
    header: bool = True,
    row_labels: bool = False,
) -> DataMatrix:
    """Load a CSV matrix; empty cells (and ``NA``/``NaN`` tokens) are missing.

    Parameters
    ----------
    header:
        First row holds column labels.
    row_labels:
        First column holds row labels.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise ValueError(f"{path}: empty CSV file")
    col_names: Optional[List[str]] = None
    if header:
        head = rows.pop(0)
        col_names = head[1:] if row_labels else head
    if not rows:
        raise ValueError(f"{path}: CSV has a header but no data rows")
    row_names: Optional[List[str]] = [] if row_labels else None
    data: List[List[float]] = []
    for row in rows:
        if row_labels:
            row_names.append(row[0])
            cells = row[1:]
        else:
            cells = row
        data.append([_parse_cell(cell) for cell in cells])
    return DataMatrix(data, row_names, col_names)


def _parse_cell(cell: str) -> float:
    text = cell.strip()
    if text == "" or text.upper() in ("NA", "NAN", "NULL"):
        return float("nan")
    return float(text)


def load_ratings_triples(
    path: PathLike,
    delimiter: Optional[str] = None,
    one_indexed: bool = True,
) -> DataMatrix:
    """Load a sparse ratings file of ``user item rating [extra...]`` rows.

    This is the format of the real MovieLens ``u.data`` dump the paper
    uses (tab-separated, 1-indexed ids, a trailing timestamp column that
    is ignored).  The matrix is sized by the largest user/item id; cells
    never rated are missing.

    Parameters
    ----------
    delimiter:
        Field separator; ``None`` splits on arbitrary whitespace.
    one_indexed:
        MovieLens ids start at 1; pass ``False`` for 0-indexed files.
    """
    triples = []
    max_user = -1
    max_item = -1
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(delimiter)
            if len(fields) < 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 'user item rating', "
                    f"got {line!r}"
                )
            user = int(fields[0]) - (1 if one_indexed else 0)
            item = int(fields[1]) - (1 if one_indexed else 0)
            rating = float(fields[2])
            if user < 0 or item < 0:
                raise ValueError(
                    f"{path}:{line_number}: negative id after indexing "
                    f"adjustment; is the file really "
                    f"{'1' if one_indexed else '0'}-indexed?"
                )
            triples.append((user, item, rating))
            max_user = max(max_user, user)
            max_item = max(max_item, item)
    if not triples:
        raise ValueError(f"{path}: no ratings found")
    values = np.full((max_user + 1, max_item + 1), np.nan)
    for user, item, rating in triples:
        values[user, item] = rating
    return DataMatrix(values)


def write_json_atomic(
    path: PathLike,
    obj: object,
    *,
    sort_keys: bool = True,
    indent: Optional[int] = None,
) -> Path:
    """Durably write ``obj`` as JSON to ``path``: all of it or none of it.

    A reader (or a resumed run) never observes a half-written file: the
    document goes to a temporary file in the same directory, is flushed
    and fsynced, and only then renamed over ``path`` with the atomic
    ``os.replace``.  The directory entry is fsynced too where the
    platform allows, so the rename itself survives a crash.  A run
    killed mid-checkpoint therefore leaves either the previous complete
    manifest or the new complete manifest -- never a truncated one.

    Returns the final path.  ``sort_keys=True`` (default) keeps the
    bytes deterministic for a given ``obj``, which checkpoint digests
    rely on.
    """
    path = Path(path)
    text = json.dumps(obj, sort_keys=sort_keys, indent=indent)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:
        return path  # platform cannot open directories (e.g. Windows)
    try:
        os.fsync(dir_fd)
    except OSError:
        pass  # directory fsync is best-effort durability hardening
    finally:
        os.close(dir_fd)
    return path


def save_clusters(path: PathLike, clusters: Sequence[DeltaCluster]) -> None:
    """Write cluster index sets to a compact text format.

    One cluster per two lines: ``rows: i1 i2 ...`` then ``cols: j1 j2 ...``.
    """
    buffer = _stdlib_io.StringIO()
    for cluster in clusters:
        buffer.write("rows: " + " ".join(map(str, cluster.rows)) + "\n")
        buffer.write("cols: " + " ".join(map(str, cluster.cols)) + "\n")
    Path(path).write_text(buffer.getvalue())


def load_clusters(path: PathLike) -> List[DeltaCluster]:
    """Load clusters written by :func:`save_clusters`."""
    lines = [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if len(lines) % 2 != 0:
        raise ValueError(f"{path}: expected rows/cols line pairs")
    clusters = []
    for row_line, col_line in zip(lines[::2], lines[1::2]):
        if not row_line.startswith("rows:") or not col_line.startswith("cols:"):
            raise ValueError(f"{path}: malformed cluster file")
        rows = [int(tok) for tok in row_line[len("rows:"):].split()]
        cols = [int(tok) for tok in col_line[len("cols:"):].split()]
        clusters.append(DeltaCluster(rows, cols))
    return clusters
