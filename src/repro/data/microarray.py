"""Yeast micro-array data: the paper's Figure 4 sample plus a generator.

The paper evaluates on the Tavazoie et al. yeast expression matrix [13]
(2884 genes x 17 conditions; each entry is a scaled logarithm of the
expression ratio).  The original download URL is long dead, so this module
provides:

* the **literal 10 genes x 5 conditions excerpt from Figure 4** of the
  paper, including the perfect delta-cluster (VPS8, EFB1, CYS3) x
  (CH1I, CH1D, CH2B) used throughout Section 3, and
* :func:`generate_yeast_like`, a synthetic generator matching the real
  data's shape and value range (0..600, as in Cheng & Church's scaled
  version) with planted co-expression modules -- genes whose expression
  "rises and falls coherently" under a subset of conditions.

The substitution preserves the code paths the paper exercises: same matrix
shape, same value scale, clusters defined by shifting coherence among
genes, plus optional missing entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..core.cluster import DeltaCluster
from ..core.matrix import DataMatrix
from ..core.rng import RngLike
from .synthetic import SyntheticDataset, generate_embedded

__all__ = [
    "FIGURE4_GENES",
    "FIGURE4_CONDITIONS",
    "FIGURE4_VALUES",
    "figure4_matrix",
    "figure4_cluster",
    "generate_yeast_like",
    "YeastDataset",
]

#: Gene names of the Figure 4 excerpt, in row order.
FIGURE4_GENES = (
    "CTFC3", "VPS8", "EFB1", "SSA1", "FUN14",
    "SPO7", "MDM10", "CYS3", "DEP1", "NTG1",
)

#: Condition names of the Figure 4 excerpt, in column order.
FIGURE4_CONDITIONS = ("CH1I", "CH1B", "CH1D", "CH2I", "CH2B")

#: The raw 10x5 matrix exactly as printed in Figure 4(a) of the paper.
FIGURE4_VALUES = (
    (4392.0, 284.0, 4108.0, 280.0, 228.0),
    (401.0, 281.0, 120.0, 275.0, 298.0),
    (318.0, 280.0, 37.0, 277.0, 215.0),
    (401.0, 292.0, 109.0, 580.0, 238.0),
    (2857.0, 285.0, 2576.0, 271.0, 226.0),
    (228.0, 290.0, 48.0, 285.0, 224.0),
    (538.0, 272.0, 266.0, 277.0, 236.0),
    (322.0, 288.0, 41.0, 278.0, 219.0),
    (312.0, 272.0, 40.0, 273.0, 232.0),
    (329.0, 296.0, 33.0, 274.0, 228.0),
)


def figure4_matrix() -> DataMatrix:
    """The Figure 4(a) matrix with gene/condition labels."""
    return DataMatrix(
        FIGURE4_VALUES,
        row_labels=FIGURE4_GENES,
        col_labels=FIGURE4_CONDITIONS,
    )


def figure4_cluster() -> DeltaCluster:
    """The perfect delta-cluster of Figure 4(b).

    Rows VPS8, EFB1, CYS3 (indices 1, 2, 7); columns CH1I, CH1D, CH2B
    (indices 0, 2, 4).  Its residue against :func:`figure4_matrix` is
    exactly zero, and its bases are the ones worked out in Section 3:
    object bases 273 / 190 / 194, attribute bases 347 / 66 / 244, cluster
    base 219.
    """
    return DeltaCluster(rows=(1, 2, 7), cols=(0, 2, 4))


@dataclass
class YeastDataset:
    """A yeast-like expression matrix with planted co-expression modules."""

    matrix: DataMatrix
    modules: List[DeltaCluster] = field(default_factory=list)

    @property
    def n_genes(self) -> int:
        return self.matrix.n_rows

    @property
    def n_conditions(self) -> int:
        return self.matrix.n_cols


def generate_yeast_like(
    n_genes: int = 2884,
    n_conditions: int = 17,
    n_modules: int = 30,
    *,
    module_shape: Tuple[int, int] = (25, 8),
    noise: float = 8.0,
    missing_fraction: float = 0.0,
    rng: RngLike = None,
) -> YeastDataset:
    """Generate a matrix shaped like the Tavazoie yeast data.

    Values live in the 0..600 range used by the scaled log-ratio version of
    the data (the range Figure 4's excerpt exhibits outside its two
    outlier genes).  Each module is a set of genes showing shifting
    coherence under a subset of conditions, with Gaussian measurement
    noise ``noise`` -- so module residues are small but non-zero, as in the
    real data where the best 100 clusters average residue ~10-12.

    The default 30 modules of 25 genes x 8 conditions fit comfortably in
    the full 2884x17 grid; tests use scaled-down shapes.
    """
    dataset: SyntheticDataset = generate_embedded(
        n_rows=n_genes,
        n_cols=n_conditions,
        n_clusters=n_modules,
        cluster_shape=module_shape,
        noise=noise,
        missing_fraction=missing_fraction,
        background_range=(0.0, 600.0),
        offset_range=(-150.0, 150.0),
        rng=rng,
    )
    return YeastDataset(matrix=dataset.matrix, modules=dataset.embedded)
