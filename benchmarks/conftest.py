"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a scale a
laptop can handle (the scale factors are recorded in EXPERIMENTS.md) and
writes the rendered table to ``benchmarks/results/<name>.txt`` as well as
printing it, so the artifacts survive the pytest run.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable that persists and prints a rendered results table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full mining runs (seconds to minutes); letting
    pytest-benchmark calibrate with repeated rounds would multiply the
    suite's runtime for no statistical benefit.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
