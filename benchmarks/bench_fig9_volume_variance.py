"""Figure 9: iterations/time vs the variance of embedded cluster volumes,
for seed sets of different variances.

Paper setup: clusters embedded in 3000 x 100 with Erlang-distributed
volumes (mean 300); four seed sets whose volumes follow Erlang
distributions of different variances (same mean).  Performance is best
when seed and embedded variances match; seed sets with *divergent*
volumes (high variance) tolerate embedded-volume disparity best.

Here: 300 x 60 with 8 clusters of mean volume 500.  Two seed curves
(variance 0 and variance 3) against embedded variance 0..5.  The shape to
check: the high-variance seed curve degrades less as embedded variance
grows.
"""

import numpy as np
from conftest import once

from repro import Constraints
from repro.eval.experiment import ExperimentConfig, run_trial
from repro.eval.reporting import format_series

EMBEDDED_LEVELS = (0, 1, 2, 3, 4, 5)
SEED_LEVELS = (0.0, 3.0)


def run_cell(embedded_level: float, seed_level: float):
    config = ExperimentConfig(
        n_rows=300,
        n_cols=60,
        n_embedded=8,
        embedded_mean_volume=500.0,
        embedded_variance_level=embedded_level,
        embedded_aspect=1.5,
        noise=3.0,
        k=8,
        seed_mean_volume=500.0,
        seed_variance_level=seed_level,
        ordering="greedy",
        gain_mode="fast",
        residue_target_factor=2.0,
        constraints=Constraints(min_rows=3, min_cols=3),
        max_iterations=60,
    )
    records = [run_trial(config, rng=seed).as_record() for seed in (1, 2)]
    return (
        float(np.mean([r["iterations"] for r in records])),
        float(np.mean([r["time_s"] for r in records])),
    )


def test_fig9_embedded_volume_variance(benchmark, report):
    outcomes = once(
        benchmark,
        lambda: {
            (e, s): run_cell(e, s)
            for e in EMBEDDED_LEVELS
            for s in SEED_LEVELS
        },
    )
    iteration_series = {
        f"iters (seed var {s:g})": [outcomes[(e, s)][0] for e in EMBEDDED_LEVELS]
        for s in SEED_LEVELS
    }
    time_series = {
        f"time_s (seed var {s:g})": [outcomes[(e, s)][1] for e in EMBEDDED_LEVELS]
        for s in SEED_LEVELS
    }
    text = format_series(
        "embedded variance",
        list(EMBEDDED_LEVELS),
        {**iteration_series, **time_series},
        title="Figure 9 -- effect of embedded-volume variance for seed "
              "sets of different variances\n(paper: divergent seed volumes "
              "tolerate embedded disparity best)",
    )
    report("fig9_volume_variance", text)

    for s in SEED_LEVELS:
        iterations = [outcomes[(e, s)][0] for e in EMBEDDED_LEVELS]
        assert max(iterations) <= 60
