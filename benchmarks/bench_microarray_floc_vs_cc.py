"""Section 6.1.2: FLOC vs Cheng & Church on the yeast micro-array.

Paper numbers on the 2884 x 17 yeast matrix, 100 clusters:
  * average residue 10.34 (FLOC) vs 12.54 (Cheng & Church),
  * FLOC's aggregated volume ~20% larger,
  * FLOC's response time an order of magnitude smaller.

Here: the yeast-like generator at 600 x 17 with 12 planted modules (the
real download is dead; see DESIGN.md).  The shape to check: FLOC reaches
a lower-or-equal average residue than the masking baseline at equal or
greater aggregated volume.  Wall-clock comparisons across a C
implementation from 2002 and numpy code do not transfer; both times are
reported but only the quality relation is asserted.
"""

import numpy as np
from conftest import once

from repro import Constraints, find_biclusters, floc, generate_yeast_like
from repro.eval.reporting import format_table


def run_comparison():
    dataset = generate_yeast_like(
        n_genes=600, n_conditions=17, n_modules=12,
        module_shape=(30, 8), noise=5.0, rng=0,
    )
    module_residue = float(np.mean(
        [m.residue(dataset.matrix) for m in dataset.modules]
    ))
    target = 2 * module_residue

    floc_result = floc(
        dataset.matrix, k=14, p=0.15,
        residue_target=target,
        constraints=Constraints(min_rows=4, min_cols=4),
        reseed_rounds=15, gain_mode="fast", ordering="greedy", rng=1,
    )
    floc_clusters = [
        c for c in floc_result.clustering
        if c.residue(dataset.matrix) <= target and c.entry_count() > 32
    ]

    cc_result = find_biclusters(
        dataset.matrix, max(len(floc_clusters), 1),
        delta=target ** 2,
        rng=2, min_rows_for_batch=100, min_cols_for_batch=100,
    )
    cc_clusters = cc_result.to_delta_clusters()
    return dataset, floc_result, floc_clusters, cc_result, cc_clusters


def test_microarray_floc_vs_cheng_church(benchmark, report):
    dataset, floc_result, floc_clusters, cc_result, cc_clusters = once(
        benchmark, run_comparison
    )

    def stats(clusters, elapsed):
        residues = [c.residue(dataset.matrix) for c in clusters]
        volume = sum(c.volume(dataset.matrix) for c in clusters)
        return (
            len(clusters),
            float(np.mean(residues)) if residues else float("nan"),
            volume,
            elapsed,
        )

    floc_stats = stats(floc_clusters, floc_result.elapsed_seconds)
    cc_stats = stats(cc_clusters, cc_result.elapsed_seconds)

    text = format_table(
        [["FLOC", *floc_stats], ["Cheng & Church", *cc_stats]],
        headers=["algorithm", "clusters", "avg residue", "aggregated volume",
                 "time (s)"],
        title="Section 6.1.2 -- FLOC vs the biclustering baseline\n"
              "(paper: residue 10.34 vs 12.54, FLOC volume +20%, "
              "FLOC 10x faster on the authors' C/AIX testbed)",
    )
    report("microarray_floc_vs_cc", text)

    assert floc_clusters, "FLOC must lock clusters"
    # Shape: FLOC's clusters are at least as coherent ...
    assert floc_stats[1] <= cc_stats[1] * 1.3
    # ... at comparable-or-larger aggregated volume.
    assert floc_stats[2] >= cc_stats[2] * 0.8
