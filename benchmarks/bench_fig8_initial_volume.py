"""Figure 8: effect of the initial (seed) cluster volume.

Paper setup: 100 clusters of volume 100 embedded in 3000 x 100; seed
volumes set to (c*3000) x (c*100); the x axis is the difference ratio
(V_init - V_emb) / V_emb.  Both the number of iterations and the response
time are minimized when seeds match the embedded volume (ratio 0) and
grow as seeds become too small or too large.

Here: 8 clusters of volume 600 in 300 x 60; seeds at difference ratios
-0.75 .. +3.  The shape to check: a U-ish curve with its minimum at or
near ratio 0.
"""

import numpy as np
from conftest import once

from repro import Constraints
from repro.eval.experiment import ExperimentConfig, run_trial
from repro.eval.reporting import format_series

EMBEDDED_VOLUME = 600.0
RATIOS = (-0.75, -0.5, 0.0, 1.0, 3.0)


def run_ratio(ratio: float):
    config = ExperimentConfig(
        n_rows=300,
        n_cols=60,
        n_embedded=8,
        embedded_mean_volume=EMBEDDED_VOLUME,
        embedded_aspect=1.5,
        noise=3.0,
        k=8,
        seed_mean_volume=EMBEDDED_VOLUME * (1.0 + ratio),
        seed_variance_level=0.0,
        ordering="greedy",
        gain_mode="fast",
        residue_target_factor=2.0,
        constraints=Constraints(min_rows=3, min_cols=3),
        max_iterations=60,
    )
    records = [run_trial(config, rng=seed).as_record() for seed in (1, 2, 3)]
    return (
        float(np.mean([r["iterations"] for r in records])),
        float(np.mean([r["time_s"] for r in records])),
    )


def test_fig8_initial_cluster_volume(benchmark, report):
    outcomes = once(
        benchmark, lambda: {ratio: run_ratio(ratio) for ratio in RATIOS}
    )
    iterations = [outcomes[r][0] for r in RATIOS]
    times = [outcomes[r][1] for r in RATIOS]
    text = format_series(
        "(Vinit-Vemb)/Vemb",
        list(RATIOS),
        {"iterations": iterations, "time_s": times},
        title="Figure 8 -- effect of the initial cluster volume\n"
              "(paper: iterations and time minimized when seeds match the "
              "embedded volume, ratio 0)",
    )
    report("fig8_initial_volume", text)

    at_zero = outcomes[0.0][0]
    # Shape: matching seeds shouldn't take more iterations than the
    # extremes of the sweep.
    assert at_zero <= max(iterations) + 1e-9
    assert at_zero <= np.mean(iterations) * 1.5
