"""Table 1: statistics of clusters discovered in MovieLens data.

Paper setup: the real 943 x 1682 dump, alpha = 0.6, k in {5, 10, 20},
"less than one minute (6 iterations)".  Reported per cluster: volume,
number of movies, number of viewers, residue, diameter -- residues around
0.5 on the 1..10 rating scale.

Here: the MovieLens-like generator at 300 x 400 (see DESIGN.md for the
substitution).  The shape to check: clusters spanning tens of movies and
tens of viewers, residues well under 1 rating point, a handful of
iterations.
"""

from conftest import once

from repro import Constraints, floc, generate_ratings
from repro.eval.reporting import format_table


def run_movielens(k: int):
    dataset = generate_ratings(
        n_users=300, n_movies=400, n_groups=4, group_size=40,
        signature_movies=40, density=0.08, min_ratings=20, rng=7,
    )
    result = floc(
        dataset.matrix, k=k, p=0.25, alpha=0.6,
        residue_target=0.8,
        constraints=Constraints(min_rows=3, min_cols=3),
        reseed_rounds=8, gain_mode="fast", ordering="greedy", rng=11,
    )
    clusters = [
        c for c in result.clustering
        if c.residue(dataset.matrix) <= 0.8 and c.entry_count() > 25
    ]
    return dataset, result, clusters


def test_table1_movielens(benchmark, report):
    dataset, result, clusters = once(benchmark, lambda: run_movielens(k=6))
    rows = [
        [
            c.volume(dataset.matrix),
            c.n_cols,
            c.n_rows,
            c.residue(dataset.matrix),
            c.diameter(dataset.matrix),
        ]
        for c in sorted(
            clusters, key=lambda c: -c.volume(dataset.matrix)
        )
    ]
    text = format_table(
        rows,
        headers=["cluster volume", "number of movies", "number of viewers",
                 "residue", "diameter"],
        title=(
            "Table 1 -- statistics of discovered MovieLens clusters\n"
            f"(alpha=0.6, k=6, {result.n_iterations} iterations, "
            f"{result.elapsed_seconds:.1f}s; paper: residues 0.47-0.56, "
            "36-72 movies, 48-88 viewers)"
        ),
    )
    report("table1_movielens", text)
    assert clusters, "expected coherent clusters"
    for cluster in clusters:
        assert cluster.residue(dataset.matrix) < 1.0  # paper-scale residues


def test_table1_iteration_count(benchmark, report):
    """The paper reports 6 iterations regardless of k in {5, 10, 20}."""
    def sweep():
        rows = []
        for k in (5, 10, 20):
            dataset = generate_ratings(
                n_users=200, n_movies=250, n_groups=3, group_size=35,
                signature_movies=35, density=0.08, min_ratings=15, rng=7,
            )
            result = floc(
                dataset.matrix, k=k, p=0.25, alpha=0.6,
                residue_target=0.8,
                constraints=Constraints(min_rows=3, min_cols=3),
                gain_mode="fast", ordering="greedy", rng=11,
            )
            rows.append([k, result.n_iterations, result.elapsed_seconds])
        return rows

    rows = once(benchmark, sweep)
    text = format_table(
        rows,
        headers=["k", "iterations", "time (s)"],
        title="Table 1 companion -- iterations vs k (paper: 6 iterations, "
              "< 1 minute for all k)",
    )
    report("table1_iterations", text)
    for __, iterations, __ in rows:
        assert iterations <= 25
