"""Tables 2 and 3: iterations and response time vs matrix size and k.

Paper setup: matrices from 100 x 20 up to 3000 x 100 with 50 embedded
clusters, k in {10, 20, 50, 100}; iterations grow very slowly (5..11) and
response time is roughly linear in matrix volume x k.

Here: the same sweep scaled down 1/4-ish (pure-Python arithmetic instead
of the authors' C on a 333 MHz AIX box): sizes up to 750 x 50, k up to
24, 12 embedded clusters.  The shape to check: iteration counts of order
10 that creep up slowly with size and k, and response time roughly
proportional to volume x k.
"""

from conftest import once

from repro.eval.experiment import run_trial
from repro.eval.reporting import format_table
from repro.obs.perf.workloads import scaling_cell_config

SIZES = [(100, 20), (250, 30), (500, 40), (750, 50)]
KS = [6, 12, 18, 24]


def run_cell(n_rows, n_cols, k, rng):
    # Config construction is shared with the `scaling` suite of
    # `repro bench run` (repro.obs.perf.workloads.scaling_cell_config),
    # so harness baselines and these tables measure the same cells.
    return run_trial(scaling_cell_config(n_rows, n_cols, k), rng=rng)


def run_sweep():
    iteration_rows = []
    time_rows = []
    for k in KS:
        iteration_row = [k]
        time_row = [k]
        for n_rows, n_cols in SIZES:
            trial = run_cell(n_rows, n_cols, k, rng=1)
            iteration_row.append(trial.n_iterations)
            time_row.append(trial.elapsed_seconds)
        iteration_rows.append(iteration_row)
        time_rows.append(time_row)
    return iteration_rows, time_rows


def test_table2_iterations_and_table3_time(benchmark, report):
    iteration_rows, time_rows = once(benchmark, run_sweep)
    size_headers = [f"{r}x{c}" for r, c in SIZES]

    text2 = format_table(
        iteration_rows,
        headers=["k"] + size_headers,
        title="Table 2 -- number of iterations vs matrix size and k\n"
              "(paper: 5..11 iterations, growing slowly with both)",
    )
    report("table2_iterations", text2)

    text3 = format_table(
        time_rows,
        headers=["k"] + size_headers,
        title="Table 3 -- response time (s) vs matrix size and k\n"
              "(paper: roughly linear in matrix volume and k)",
        precision=2,
    )
    report("table3_response_time", text3)

    # Shape assertions.
    all_iterations = [it for row in iteration_rows for it in row[1:]]
    assert max(all_iterations) <= 40, "iterations should stay of order 10"
    # Time grows with matrix volume: the largest size must cost more than
    # the smallest at equal k (allowing generous noise).
    for row in time_rows:
        assert row[-1] > row[1] * 0.8

    # Time grows with k at the largest size.
    largest_col = [row[-1] for row in time_rows]
    assert largest_col[-1] > largest_col[0] * 0.8


def test_table3_linearity_in_volume(benchmark, report):
    """Response time per (volume x k) unit should be roughly flat."""
    def run():
        rates = []
        for (n_rows, n_cols), k in zip(SIZES, (6, 6, 6, 6)):
            trial = run_cell(n_rows, n_cols, k, rng=2)
            volume = n_rows * n_cols
            rates.append([f"{n_rows}x{n_cols}", volume,
                          trial.elapsed_seconds,
                          1e6 * trial.elapsed_seconds / (volume * k)])
        return rates

    rates = once(benchmark, run)
    text = format_table(
        rates,
        headers=["size", "cells", "time (s)", "us per cell*k"],
        title="Table 3 companion -- normalized cost (flat => linear "
              "scaling, as the complexity analysis predicts)",
    )
    report("table3_linearity", text)
    normalized = [row[3] for row in rates]
    # Within an order of magnitude across a 19x volume range.
    assert max(normalized) / max(min(normalized), 1e-9) < 25
