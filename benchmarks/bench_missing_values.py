"""Robustness to missing values (the model's headline generalization).

Not a paper table -- the paper demonstrates missing-value handling only
on the real MovieLens data -- but the claim "the delta-cluster model can
handle the null values seamlessly" deserves a controlled sweep: plant
clusters, knock out a growing fraction of entries, mine with the
matching alpha, and watch recall/precision.
"""

from conftest import once

from repro import Constraints, floc, generate_embedded, recall_precision
from repro.eval.reporting import format_table

MISSING_FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3)


def run_fraction(missing: float):
    dataset = generate_embedded(
        300, 60, 8, cluster_shape=(30, 20), noise=3.0,
        missing_fraction=missing, rng=3,
    )
    target = 2 * dataset.embedded_average_residue()
    result = floc(
        dataset.matrix, k=10, p=0.2, alpha=0.5,
        residue_target=target,
        constraints=Constraints(min_rows=3, min_cols=3),
        reseed_rounds=10, gain_mode="fast", ordering="greedy", rng=5,
    )
    scores = recall_precision(
        dataset.embedded, result.clustering.clusters, dataset.matrix.shape
    )
    return [
        f"{missing:.0%}",
        dataset.matrix.density,
        result.n_iterations,
        scores.recall,
        scores.precision,
    ]


def test_missing_value_robustness(benchmark, report):
    rows = once(
        benchmark, lambda: [run_fraction(m) for m in MISSING_FRACTIONS]
    )
    text = format_table(
        rows,
        headers=["missing", "density", "iterations", "recall", "precision"],
        title="Missing-value robustness (alpha = 0.5)\n"
              "(claim: the model handles null values seamlessly; quality "
              "should degrade gracefully, not collapse)",
    )
    report("missing_values", text)

    recalls = [row[3] for row in rows]
    precisions = [row[4] for row in rows]
    # Graceful degradation: at 20% missing, recovery must still work.
    assert recalls[3] > 0.4
    assert min(precisions) > 0.7
