"""Micro-benchmarks of the core primitives.

Not paper artifacts -- these pin the per-operation costs that the
complexity analysis of Section 4.2 is built from: the O(n*m) residue
scan, the exact toggle evaluation, and the O(k*m) vectorized fast-gain
batch.  Useful for spotting performance regressions; these DO use
pytest-benchmark's repeated rounds since each call is microseconds.
"""

import numpy as np
import pytest

from repro.core.actions import evaluate_toggle
from repro.core.gain_engine import _BLOCK, ResidueBackend
from repro.core.residue import mean_abs_residue
from repro.obs.perf.workloads import make_primitives_payload


@pytest.fixture(scope="module")
def payload():
    # One code path: the same payload backs the `primitives` suite of
    # `repro bench run`, so these timings and the harness counters
    # always describe identical work.
    return make_primitives_payload()


def test_mean_abs_residue_120x16(benchmark, payload):
    values, row_member, col_member, __ = payload
    sub = values[np.ix_(np.flatnonzero(row_member), np.flatnonzero(col_member))]
    result = benchmark(mean_abs_residue, sub)
    assert result >= 0.0


def test_exact_toggle_evaluation(benchmark, payload):
    values, row_member, col_member, __ = payload
    residue, volume = benchmark(
        evaluate_toggle, values, row_member, col_member, "row", 400
    )
    assert volume > 0


def test_fast_candidate_batch_16_clusters(benchmark, payload):
    __, __, __, state = payload
    new_res, new_vol, line_res, line_counts, widths = benchmark(
        state.candidate_parts_batch, "row", 400
    )
    assert new_res.shape == (16,)
    assert np.isfinite(new_res).all()
    assert (widths > 0).all()


def test_fast_candidate_single(benchmark, payload):
    __, __, __, state = payload
    residue, volume = benchmark(state.fast_candidate, "row", 400, 0)
    assert np.isfinite(residue)


def test_refresh_cluster(benchmark, payload):
    __, __, __, state = payload
    benchmark(state.refresh_cluster, 0)
    assert state.volumes[0] >= 0


def test_exact_lane_full(benchmark, payload):
    __, __, __, state = payload
    backend = ResidueBackend()
    lane = benchmark(backend.exact_lane, state, "row", 0)
    assert lane.new_residues.shape == (600,)
    assert np.isfinite(lane.new_residues).all()


def test_exact_lane_block(benchmark, payload):
    __, __, __, state = payload
    backend = ResidueBackend()
    ctx = backend.exact_context(state, "row", 0)
    sel = np.arange(_BLOCK, dtype=np.intp)
    lane = benchmark(backend.exact_lane, state, "row", 0, sel=sel, ctx=ctx)
    assert lane.new_residues.shape == (_BLOCK,)
    assert np.isfinite(lane.new_residues).all()


def test_exact_context_build(benchmark, payload):
    __, __, __, state = payload
    backend = ResidueBackend()
    ctx = benchmark(backend.exact_context, state, "row", 0)
    assert ctx.m > 0


def test_estimate_lane(benchmark, payload):
    __, __, __, state = payload
    backend = ResidueBackend()
    lane = benchmark(backend.estimate_lane, state, "row", 0)
    assert lane.new_residues.shape == (600,)
