"""Figure 10: FLOC vs the alternative (subspace clustering) algorithm.

Paper setup: 3000 objects, k = 100, attribute count swept; the
alternative algorithm (derived attributes + CLIQUE + clique mapping,
Section 4.4) blows up so fast it can only be plotted up to 100
attributes, while FLOC's time grows gently.

Here: 200 objects, attributes swept 6..14 (the derived dimensionality is
quadratic: 15..91 derived attributes).  The shape to check: the
alternative algorithm's response time grows much faster with the
attribute count than FLOC's -- the crossover happens within the sweep.
"""

import time

from conftest import once

from repro import Constraints, floc, generate_embedded
from repro.subspace.derived import alternative_delta_clusters
from repro.eval.reporting import format_series

ATTRIBUTE_COUNTS = (6, 8, 10, 12, 14)
N_OBJECTS = 200


def run_point(n_attributes: int):
    dataset = generate_embedded(
        N_OBJECTS, n_attributes, 4,
        cluster_shape=(20, max(3, n_attributes // 2)),
        noise=3.0, rng=3,
    )
    target = 2 * max(dataset.embedded_average_residue(), 1.0)

    started = time.perf_counter()
    floc(
        dataset.matrix, k=4, p=0.25,
        residue_target=target,
        constraints=Constraints(min_rows=3, min_cols=3),
        gain_mode="fast", ordering="greedy", rng=5,
    )
    floc_seconds = time.perf_counter() - started

    started = time.perf_counter()
    alternative_delta_clusters(
        dataset.matrix, xi=15, tau=0.05, min_rows=5, min_cols=3,
        max_dims=6,
    )
    alternative_seconds = time.perf_counter() - started
    return floc_seconds, alternative_seconds


def test_fig10_floc_vs_alternative(benchmark, report):
    outcomes = once(
        benchmark, lambda: {n: run_point(n) for n in ATTRIBUTE_COUNTS}
    )
    floc_times = [outcomes[n][0] for n in ATTRIBUTE_COUNTS]
    alternative_times = [outcomes[n][1] for n in ATTRIBUTE_COUNTS]
    text = format_series(
        "attributes",
        list(ATTRIBUTE_COUNTS),
        {"floc_s": floc_times, "alternative_s": alternative_times},
        title="Figure 10 -- FLOC vs the alternative algorithm\n"
              "(paper: the alternative's time explodes with the attribute "
              "count; FLOC grows gently)",
        precision=3,
    )
    report("fig10_alternative", text)

    # Shape: the alternative's growth factor across the sweep dwarfs
    # FLOC's.
    alternative_growth = alternative_times[-1] / max(alternative_times[0], 1e-9)
    floc_growth = floc_times[-1] / max(floc_times[0], 1e-9)
    assert alternative_growth > 2 * floc_growth
    # And at the widest point the alternative is the slower algorithm.
    assert alternative_times[-1] > floc_times[-1]
