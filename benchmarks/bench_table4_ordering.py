"""Table 4: clustering quality vs action ordering.

Paper numbers -- residue / recall / precision:
    fixed     12.5 / 0.75 / 0.77
    random    11.5 / 0.82 / 0.84
    weighted  11.0 / 0.86 / 0.88

The shape to check: fixed < random < weighted on recall and precision
(random buys ~10%, weighted ~5% more).  The greedy extension is included
as an extra row; it is not part of the paper's comparison.

Workload: the recoverable synthetic regime (see DESIGN.md) -- 300 x 60
matrix, 10 embedded 30 x 20 clusters, averaged over seeds.
"""

import numpy as np
from conftest import once

from repro import Constraints, floc, generate_embedded, recall_precision
from repro.eval.reporting import format_table

ORDERINGS = ("fixed", "random", "weighted", "greedy")
N_TRIALS = 3


def run_ordering(ordering: str):
    residues, recalls, precisions = [], [], []
    for seed in range(N_TRIALS):
        dataset = generate_embedded(
            300, 60, 10, cluster_shape=(30, 20), noise=3.0, rng=3 + seed
        )
        target = 2 * dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, k=12, p=0.2, ordering=ordering,
            residue_target=target,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=10, gain_mode="fast", rng=100 + seed,
        )
        locked = [
            c for c in result.clustering
            if c.residue(dataset.matrix) <= target and c.entry_count() > 36
        ]
        if locked:
            residues.append(float(np.mean(
                [c.residue(dataset.matrix) for c in locked]
            )))
        scores = recall_precision(
            dataset.embedded, result.clustering.clusters, dataset.matrix.shape
        )
        recalls.append(scores.recall)
        precisions.append(scores.precision)
    return (
        float(np.mean(residues)) if residues else float("nan"),
        float(np.mean(recalls)),
        float(np.mean(precisions)),
    )


def test_table4_action_ordering(benchmark, report):
    results = once(
        benchmark,
        lambda: {ordering: run_ordering(ordering) for ordering in ORDERINGS},
    )
    rows = [
        [ordering, *results[ordering]]
        for ordering in ORDERINGS
    ]
    text = format_table(
        rows,
        headers=["ordering", "residue", "recall", "precision"],
        title="Table 4 -- quality vs action order\n"
              "(paper: fixed 0.75/0.77 < random 0.82/0.84 < weighted "
              "0.86/0.88; greedy is this implementation's extension)",
    )
    report("table4_ordering", text)

    # Shape: the paper's ranking on recall.
    assert results["random"][1] >= results["fixed"][1] - 0.05
    assert results["weighted"][1] >= results["fixed"][1] - 0.05
