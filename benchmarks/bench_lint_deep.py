"""Timing guard for the whole-program analyzer itself.

``repro lint --deep src/`` runs in CI on every push, so the analyzer
must not rot into something slow: building the symbol table, the call
graph, and running the four fixpoint rules over the full tree is
AST-only work and should stay well under a second.  The smoke assertion
uses a deliberately generous budget (CI machines are noisy) -- it
exists to catch accidental quadratic blowups, not to pin milliseconds.
"""

import time
from pathlib import Path

from repro.devtools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Generous wall-time ceiling for one --deep pass over src/ (seconds).
#: Local runs take ~0.3 s; a 20x cushion keeps CI noise out while still
#: failing loudly if the analyzer picks up super-linear behaviour.
DEEP_BUDGET_SECONDS = 10.0


def test_deep_lint_over_src_completes_within_budget(benchmark):
    def run():
        return lint_paths([str(SRC)], deep=True)

    start = time.perf_counter()
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    assert report.violations == []
    assert report.deep_stats is not None
    assert elapsed < DEEP_BUDGET_SECONDS, (
        f"--deep over src/ took {elapsed:.2f}s "
        f"(budget {DEEP_BUDGET_SECONDS}s); the analyzer has rotted"
    )
