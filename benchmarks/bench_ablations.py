"""Ablations over this implementation's design choices (DESIGN.md §4).

Not paper tables -- these quantify the deltas introduced by:

* ``gain_mode``: exact O(n*m) re-evaluation vs the O(m) fast estimate;
* ``mandatory_moves``: the paper's perform-even-negative rule vs
  skip-non-positive;
* ``reseed_rounds``: 0 (paper-literal single Phase 2) vs 10.
"""

from conftest import once

from repro import Constraints, floc, generate_embedded, recall_precision
from repro.eval.reporting import format_table


def workload(rng=3):
    dataset = generate_embedded(
        300, 60, 10, cluster_shape=(30, 20), noise=3.0, rng=rng
    )
    return dataset, 2 * dataset.embedded_average_residue()


def run_variant(**overrides):
    dataset, target = workload()
    kwargs = dict(
        k=12, p=0.2, residue_target=target,
        constraints=Constraints(min_rows=3, min_cols=3),
        reseed_rounds=10, gain_mode="fast", ordering="greedy", rng=5,
    )
    kwargs.update(overrides)
    result = floc(dataset.matrix, **kwargs)
    scores = recall_precision(
        dataset.embedded, result.clustering.clusters, dataset.matrix.shape
    )
    return [
        result.elapsed_seconds,
        result.n_iterations,
        scores.recall,
        scores.precision,
    ]


def test_ablation_gain_mode(benchmark, report):
    rows = once(benchmark, lambda: [
        ["fast"] + run_variant(gain_mode="fast"),
        ["exact"] + run_variant(gain_mode="exact"),
    ])
    text = format_table(
        rows,
        headers=["gain mode", "time (s)", "iterations", "recall", "precision"],
        title="Ablation -- exact vs fast gain evaluation\n"
              "(fast trades the O(n*m) per-candidate scan for an O(m) "
              "frozen-bases estimate; the acted cluster's ledger stays "
              "exact either way)",
    )
    report("ablation_gain_mode", text)
    fast_row, exact_row = rows
    assert fast_row[1] < exact_row[1], "fast mode must be faster"
    assert fast_row[3] > 0.5, "fast mode must stay accurate"


def test_ablation_mandatory_moves(benchmark, report):
    rows = once(benchmark, lambda: [
        ["skip non-positive (default)"] + run_variant(mandatory_moves=False),
        ["mandatory (paper-literal)"] + run_variant(mandatory_moves=True),
    ])
    text = format_table(
        rows,
        headers=["policy", "time (s)", "iterations", "recall", "precision"],
        title="Ablation -- negative-gain best actions\n"
              "(the paper performs them and relies on snapshots; at "
              "reproduction scale the mandatory additions of unfitting "
              "rows drown the snapshot signal)",
    )
    report("ablation_mandatory_moves", text)
    skip_row, __ = rows
    assert skip_row[3] > 0.5


def test_ablation_reseed_rounds(benchmark, report):
    rows = once(benchmark, lambda: [
        [rounds] + run_variant(reseed_rounds=rounds)
        for rounds in (0, 5, 10, 20)
    ])
    text = format_table(
        rows,
        headers=["reseed rounds", "time (s)", "iterations", "recall",
                 "precision"],
        title="Ablation -- reseed rounds\n"
              "(0 = paper-literal single Phase 2; each extra round gives "
              "dead seeds a fresh draw while locked clusters persist)",
    )
    report("ablation_reseed_rounds", text)
    recalls = [row[3] for row in rows]
    assert recalls[-1] >= recalls[0], "reseeding must not hurt recall"
