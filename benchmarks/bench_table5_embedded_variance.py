"""Table 5: quality vs the variance of embedded cluster volumes.

Paper setup: 100 clusters of mean volume 300 (average residue 5) embedded
in 3000 x 100; embedded volumes follow an Erlang distribution whose
variance level sweeps 0..5; seeds drawn with variance level 3.  Reported:
residue ~11, recall 0.86-0.87, precision 0.87-0.90, *flat across the
sweep* -- volume disparity costs efficiency, not quality.

Here: 10 clusters of mean volume 600 in 300 x 60 (aspect 1.5 so clusters
stay wide enough to be recoverable).  The shape to check: recall and
precision roughly flat as the variance level grows.
"""

import numpy as np
from conftest import once

from repro import Constraints
from repro.eval.experiment import ExperimentConfig, run_trial
from repro.eval.reporting import format_table

VARIANCE_LEVELS = (0, 1, 2, 3, 4, 5)


def run_level(level: float):
    config = ExperimentConfig(
        n_rows=300,
        n_cols=60,
        n_embedded=8,
        embedded_mean_volume=500.0,
        embedded_variance_level=level,
        embedded_aspect=1.5,
        noise=3.0,
        k=10,
        p=0.2,
        seed_mean_volume=500.0,
        seed_variance_level=3.0,
        ordering="greedy",
        gain_mode="fast",
        residue_target_factor=2.0,
        reseed_rounds=10,
        constraints=Constraints(min_rows=3, min_cols=3),
    )
    records = [run_trial(config, rng=seed).as_record() for seed in (1, 2)]
    return {
        key: float(np.mean([r[key] for r in records])) for key in records[0]
    }


def test_table5_embedded_volume_variance(benchmark, report):
    summaries = once(
        benchmark,
        lambda: {level: run_level(level) for level in VARIANCE_LEVELS},
    )
    rows = [
        [level,
         summaries[level]["residue"],
         summaries[level]["recall"],
         summaries[level]["precision"]]
        for level in VARIANCE_LEVELS
    ]
    text = format_table(
        rows,
        headers=["variance", "residue", "recall", "precision"],
        title="Table 5 -- quality vs embedded-volume variance\n"
              "(paper: recall 0.86-0.87 and precision 0.87-0.90, flat "
              "across variance 0..5)",
    )
    report("table5_embedded_variance", text)

    recalls = [summaries[level]["recall"] for level in VARIANCE_LEVELS]
    precisions = [summaries[level]["precision"] for level in VARIANCE_LEVELS]
    # Shape: quality does not collapse as volumes become disparate.
    assert min(precisions) > 0.5
    assert max(recalls) - min(recalls) < 0.5
