"""Tracing overhead guard: the disabled tracer must cost < 5% of a run.

FLOC's hot loops are permanently instrumented (spans around gain
evaluation and performed actions, metric write paths).  With no tracer
attached every one of those sites degenerates to a flag check or a
shared no-op span, but "negligible" must be *measured*, not assumed --
this bench reconstructs the disabled-path cost from first principles:

1. time the standard run (no tracer) -- min of several repeats;
2. run once fully traced to count every span / metric call site the run
   actually executes;
3. micro-time each disabled operation (no-op span cycle, ``inc``,
   ``observe`` on the null tracer);
4. assert  (count x unit cost)  <  5% of the run time.

The reconstruction is deliberately pessimistic: it charges every call
site at its micro-benchmarked cost with no allowance for what the
un-instrumented code would have paid anyway.
"""

import io
import time

from repro.core.floc import floc
from repro.data.synthetic import generate_embedded
from repro.obs import NULL_TRACER, IterationEvent, JsonlSink, \
    MetricsRegistry, OtlpJsonSink, RingBufferSink, StatsdSink, Tracer, \
    WorkCounters


def _standard_run(matrix, tracer=None, work=None):
    """The 'standard FLOC run' the 5% budget is measured against."""
    return floc(
        matrix, k=8, p=0.2, residue_target=2.0, gain_mode="fast",
        ordering="weighted", reseed_rounds=1, rng=0, tracer=tracer,
        work=work,
    )


def _best_of(func, repeats=3):
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


def _unit_cost(operation, reps=200_000, repeats=3):
    """Best-of-N per-operation cost: a single timing loop is at the
    mercy of one scheduler hiccup, which used to fail the 5% budget
    spuriously; the min over repeats is the honest disabled-path cost."""
    best = float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        for __ in range(reps):
            operation()
        best = min(best, (time.perf_counter() - started) / reps)
    return best


def test_disabled_tracer_overhead_under_5_percent(report):
    dataset = generate_embedded(
        200, 40, 5, cluster_shape=(25, 12), noise=1.0, rng=0
    )
    matrix = dataset.matrix

    run_time = _best_of(lambda: _standard_run(matrix))

    # Count the instrumentation sites the run actually executes, and
    # the deterministic work totals (machine-independent context the
    # wall-clock numbers can be normalized against).
    work = WorkCounters()
    traced = _standard_run(
        matrix,
        tracer=Tracer(sinks=[RingBufferSink(capacity=2_000_000)],
                      metrics=MetricsRegistry()),
        work=work,
    )
    spans = traced.trace_summary["spans"]
    counters = traced.metrics["counters"]
    n_spans = sum(entry["count"] for entry in spans.values())
    n_observes = spans.get("gain_eval", {"count": 0})["count"]
    n_incs = (
        counters.get("actions_blocked_by_constraint", 0)
        + counters.get("seeds_generated", 0)
    )

    # Disabled-path unit costs.
    def span_cycle():
        with NULL_TRACER.span("gain_eval"):
            pass

    event = IterationEvent(index=0, residue=1.0)
    span_cost = _unit_cost(span_cycle)
    inc_cost = _unit_cost(lambda: NULL_TRACER.inc("x"))
    observe_cost = _unit_cost(lambda: NULL_TRACER.observe("x", 1.0))
    emit_cost = _unit_cost(lambda: NULL_TRACER.emit(event))

    overhead = (
        n_spans * span_cost
        + n_observes * observe_cost
        + n_incs * inc_cost
    )
    fraction = overhead / run_time

    report("overhead_tracing", "\n".join([
        "disabled-tracer overhead reconstruction",
        f"standard run            : {run_time * 1e3:9.2f} ms",
        f"spans executed          : {n_spans:9d} x {span_cost * 1e9:6.1f} ns",
        f"observe() calls         : {n_observes:9d} x {observe_cost * 1e9:6.1f} ns",
        f"inc() calls             : {n_incs:9d} x {inc_cost * 1e9:6.1f} ns",
        f"emit() unit cost        : {emit_cost * 1e9:9.1f} ns (guarded sites)",
        f"reconstructed overhead  : {overhead * 1e3:9.3f} ms "
        f"({100 * fraction:.2f}% of the run)",
        f"work (deterministic)    : {work.total()} units "
        f"(toggle_evals={work.toggle_evals}, "
        f"cells_scanned={work.cells_scanned}, sweeps={work.sweeps})",
    ]))

    assert fraction < 0.05, (
        f"disabled tracer costs {100 * fraction:.2f}% of a standard run "
        f"(budget: 5%)"
    )


class _NullTransport:
    """Datagram transport that formats-and-drops (isolates CPU cost)."""

    def sendto(self, data, address):
        return len(data)

    def close(self):
        pass


def test_exporter_sink_write_cost_within_budget(report):
    """Attaching an exporter sink must also fit the 5% budget.

    Same reconstruction style as the disabled-path test: count the
    records a standard traced run emits, micro-time one ``write()`` per
    exporter, and charge every record at that unit cost.  The statsd
    cost excludes the kernel sendto (null transport) -- the budget
    governs the formatting/encoding work FLOC pays inline; the UDP send
    is fire-and-forget.
    """
    dataset = generate_embedded(
        200, 40, 5, cluster_shape=(25, 12), noise=1.0, rng=0
    )
    matrix = dataset.matrix

    run_time = _best_of(lambda: _standard_run(matrix))
    traced = _standard_run(
        matrix,
        tracer=Tracer(sinks=[RingBufferSink(capacity=2_000_000)],
                      metrics=MetricsRegistry()),
    )
    n_records = sum(traced.trace_summary["events"].values())

    # A representative record: actions dominate every trace.
    record = {
        "type": "action", "kind": "row", "index": 17, "cluster": 3,
        "is_removal": False, "gain": 1.25, "residue": 2.5, "volume": 120,
        "restart": 0,
    }
    sinks = {
        "jsonl": JsonlSink(io.StringIO()),
        "statsd": StatsdSink(transport=_NullTransport()),
        "otlp_json": OtlpJsonSink(io.StringIO()),
    }
    lines = [f"exporter-sink per-record write cost ({n_records} records/run)"]
    worst_fraction = 0.0
    for name, sink in sinks.items():
        cost = _unit_cost(lambda s=sink: s.write(record), reps=20_000)
        fraction = n_records * cost / run_time
        worst_fraction = max(worst_fraction, fraction)
        lines.append(
            f"{name:<10}: {cost * 1e6:7.2f} us/record "
            f"-> {100 * fraction:5.2f}% of the run"
        )
        sink.close()
    report("overhead_exporters", "\n".join(lines))

    assert worst_fraction < 0.05, (
        f"worst exporter sink costs {100 * worst_fraction:.2f}% of a "
        f"standard run (budget: 5%)"
    )


def _serialized(result):
    """Canonical bytes for a pooled mining result (parity contract)."""
    import json

    payload = {
        "clustering": [[list(c.rows), list(c.cols)]
                       for c in result.clustering],
        "histories": [run.history for run in result.runs],
        "initial_residues": [run.initial_residue for run in result.runs],
    }
    return json.dumps(payload, sort_keys=True)


def test_supervised_session_tracing_overhead_and_parity(report):
    """Session tracing on the supervised runtime: < 5% and bit-identical.

    Same reconstruction style as the single-process tests, applied to
    the cross-process path (PR 10): an untraced supervised run sets the
    budget baseline; a traced run (``session_trace=True``) provides the
    real shard record counts; one durable ``flush_every=1`` shard write
    is micro-timed; and the charge  (records x unit write cost)  must
    stay under 5% of the untraced run.  The traced run's pooled result
    must also serialize bit-identically to the untraced run's --
    telemetry and trace shards are observation, never input.
    """
    import shutil
    import tempfile
    from pathlib import Path

    from repro.data.synthetic import generate_embedded
    from repro.obs.sinks import read_jsonl
    from repro.obs.session import TRACES_DIRNAME
    from repro.runtime import RunConfig, run_supervised

    dataset = generate_embedded(
        120, 24, 3, cluster_shape=(18, 8), noise=1.0, rng=0
    )
    matrix = dataset.matrix
    config = RunConfig(
        residue_target=2.0, n_restarts=4, root_seed=9, k=4,
        max_iterations=12, min_volume=16, workers=2, max_retries=0,
    )
    scratch = Path(tempfile.mkdtemp(prefix="bench-session-trace-"))
    try:
        def untraced_run():
            run_dir = scratch / "untraced"
            shutil.rmtree(run_dir, ignore_errors=True)
            return run_supervised(matrix, config, run_dir=run_dir)

        untraced, run_time = None, float("inf")
        for __ in range(3):
            started = time.perf_counter()
            out = untraced_run()
            elapsed = time.perf_counter() - started
            if elapsed < run_time:
                untraced, run_time = out, elapsed
        assert untraced.ok

        traced = run_supervised(
            matrix, config, run_dir=scratch / "traced", session_trace=True
        )
        assert traced.ok

        # Parity: shard-writing workers compute the identical result.
        assert _serialized(traced.result) == _serialized(untraced.result)

        # Real record counts from the shards the traced run wrote.
        traces = traced.run_dir / TRACES_DIRNAME
        shard_records = sum(
            len(read_jsonl(shard))
            for shard in traces.glob("trace_*.jsonl")
            if shard.name != "trace_session.jsonl"
        )

        # Unit cost of one durable shard write (flush_every=1, the
        # worker configuration) at a representative record size.
        record = {
            "type": "action", "kind": "row", "index": 17, "cluster": 3,
            "is_removal": False, "gain": 1.25, "restart": 0, "attempt": 0,
            "ts": 0.123456, "seq": 42,
        }
        sink = JsonlSink(scratch / "unit.jsonl", flush_every=1)
        write_cost = _unit_cost(lambda: sink.write(record), reps=20_000)
        sink.close()

        overhead = shard_records * write_cost
        fraction = overhead / run_time
        report("overhead_session_tracing", "\n".join([
            "supervised session-tracing overhead reconstruction",
            f"untraced supervised run : {run_time * 1e3:9.2f} ms",
            f"shard records written   : {shard_records:9d} x "
            f"{write_cost * 1e6:6.2f} us",
            f"reconstructed overhead  : {overhead * 1e3:9.3f} ms "
            f"({100 * fraction:.2f}% of the run)",
            "traced == untraced      : bit-identical pooled results",
        ]))
        assert fraction < 0.05, (
            f"session tracing costs {100 * fraction:.2f}% of an untraced "
            f"supervised run (budget: 5%)"
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
