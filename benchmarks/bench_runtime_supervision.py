"""Supervision overhead: what fault tolerance costs, and what it buys.

The `repro.runtime` supervisor adds process-pool dispatch, durable
digest-verified checkpoints, and finalize-from-disk pooling on top of
the plain in-process restart loop.  That machinery must stay cheap
relative to the mining it protects, and the parallel path must actually
pay for itself.  This bench measures, on one workload:

1. the plain in-process `run_restart` loop + pooling (the floor --
   the same seed-addressable restarts the supervisor dispatches, so
   the clusterings are directly comparable);
2. single-worker supervised mining (checkpoint + verify overhead);
3. multi-worker supervised mining (the speedup fault tolerance enables);
4. resume of a completed run (the cost of "nothing left to do").

The overhead budget is deliberately loose (supervision may cost up to
60% of the floor on this laptop-sized workload — process spawn and
durable fsyncs amortize over runs minutes long, not seconds) but it is
*asserted*, so a regression that makes checkpointing accidentally
quadratic or re-executes completed restarts fails the suite rather than
silently taxing every supervised run.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.core.mining import pool_mining_results, run_restart
from repro.data.synthetic import generate_embedded
from repro.runtime import RunConfig, resume_run, run_supervised

N_RESTARTS = 4
WORKERS = 2


def _workload():
    dataset = generate_embedded(
        120, 24, 3, cluster_shape=(18, 8), noise=1.0, rng=0
    )
    config = RunConfig(
        residue_target=2.0, n_restarts=N_RESTARTS, root_seed=9, k=4,
        max_iterations=12, min_volume=16, workers=1, max_retries=0,
    )
    return dataset.matrix, config


def _timed(func):
    started = time.perf_counter()
    out = func()
    return out, time.perf_counter() - started


def test_supervision_overhead_and_parallel_payoff(report):
    matrix, config = _workload()
    scratch = Path(tempfile.mkdtemp(prefix="bench-runtime-"))
    try:
        # 1. The unsupervised floor: same restarts, no supervision.
        def _plain_loop():
            runs = [
                run_restart(
                    matrix, restart,
                    residue_target=config.residue_target,
                    root_seed=config.root_seed, k=config.k,
                    max_iterations=config.max_iterations,
                )
                for restart in range(N_RESTARTS)
            ]
            return pool_mining_results(
                matrix, runs, residue_target=config.residue_target,
                min_volume=config.min_volume,
            )

        plain, plain_s = _timed(_plain_loop)

        # 2. Supervised, serial: pure fault-tolerance overhead.
        serial, serial_s = _timed(lambda: run_supervised(
            matrix, config, run_dir=scratch / "serial"))

        # 3. Supervised, parallel: the payoff.
        from dataclasses import replace
        par_config = replace(config, workers=WORKERS)
        parallel, parallel_s = _timed(lambda: run_supervised(
            matrix, par_config, run_dir=scratch / "parallel"))

        # 4. Resume with everything checkpointed: near-free.
        resumed, resume_s = _timed(lambda: resume_run(
            matrix, scratch / "serial"))

        assert serial.ok and parallel.ok and resumed.ok
        assert resumed.executed == []

        shapes = lambda r: [(c.rows, c.cols) for c in r.clustering]  # noqa: E731
        assert shapes(serial.result) == shapes(plain)
        assert shapes(parallel.result) == shapes(plain)
        assert shapes(resumed.result) == shapes(plain)

        overhead = serial_s / plain_s - 1.0
        speedup = serial_s / parallel_s

        report("runtime_supervision", "\n".join([
            f"supervised mining overhead/payoff "
            f"({N_RESTARTS} restarts, {WORKERS} workers)",
            f"plain restart loop      : {plain_s * 1e3:9.1f} ms",
            f"supervised, 1 worker    : {serial_s * 1e3:9.1f} ms "
            f"({100 * overhead:+.1f}% vs plain)",
            f"supervised, {WORKERS} workers   : {parallel_s * 1e3:9.1f} ms "
            f"({speedup:.2f}x vs 1 worker)",
            f"resume (all done)       : {resume_s * 1e3:9.1f} ms",
            "clusterings             : identical across all four paths",
        ]))

        assert overhead < 0.60, (
            f"supervision costs {100 * overhead:.1f}% over the plain loop "
            f"(budget: 60%)"
        )
        assert resume_s < serial_s, "resume must not re-execute restarts"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
