"""Supervision overhead: what fault tolerance costs, and what it buys.

The `repro.runtime` supervisor adds process-pool dispatch, durable
digest-verified checkpoints, and finalize-from-disk pooling on top of
the plain in-process restart loop.  That machinery must stay cheap
relative to the mining it protects, and the parallel path must actually
pay for itself.  This bench measures, on one workload:

1. the plain in-process `run_restart` loop + pooling (the floor --
   the same seed-addressable restarts the supervisor dispatches, so
   the clusterings are directly comparable);
2. single-worker supervised mining (checkpoint + verify overhead);
3. multi-worker supervised mining (the speedup fault tolerance enables);
4. resume of a completed run (the cost of "nothing left to do").

The overhead budget is deliberately loose (supervision may cost up to
60% of the floor on this laptop-sized workload — process spawn and
durable fsyncs amortize over runs minutes long, not seconds) but it is
*asserted*, so a regression that makes checkpointing accidentally
quadratic or re-executes completed restarts fails the suite rather than
silently taxing every supervised run.
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.core.mining import pool_mining_results, run_restart
from repro.data.synthetic import generate_embedded
from repro.obs import WorkCounters
from repro.runtime import RunConfig, resume_run, run_supervised

N_RESTARTS = 4
WORKERS = 2
N_REPEATS = 3


def _workload():
    dataset = generate_embedded(
        120, 24, 3, cluster_shape=(18, 8), noise=1.0, rng=0
    )
    config = RunConfig(
        residue_target=2.0, n_restarts=N_RESTARTS, root_seed=9, k=4,
        max_iterations=12, min_volume=16, workers=1, max_retries=0,
    )
    return dataset.matrix, config


def _timed(func, repeats=N_REPEATS):
    """Best-of-N wall-clock timing.

    A single run bakes one scheduler hiccup or cold page cache straight
    into the overhead ratio, which used to fail the budget assertion
    spuriously; the min over repeats is the honest cost.  The runs are
    deterministic, so every repeat returns the same value.
    """
    best_out, best_s = None, float("inf")
    for __ in range(repeats):
        started = time.perf_counter()
        out = func()
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_out, best_s = out, elapsed
    return best_out, best_s


def test_supervision_overhead_and_parallel_payoff(report):
    matrix, config = _workload()
    scratch = Path(tempfile.mkdtemp(prefix="bench-runtime-"))
    try:
        # 1. The unsupervised floor: same restarts, no supervision.
        # Each restart counts its work so the floor's deterministic
        # totals are comparable against every supervised path below.
        def _plain_loop():
            runs = [
                run_restart(
                    matrix, restart,
                    residue_target=config.residue_target,
                    root_seed=config.root_seed, k=config.k,
                    max_iterations=config.max_iterations,
                    work=WorkCounters(),
                )
                for restart in range(N_RESTARTS)
            ]
            return pool_mining_results(
                matrix, runs, residue_target=config.residue_target,
                min_volume=config.min_volume,
            )

        plain, plain_s = _timed(_plain_loop)

        # 2. Supervised, serial: pure fault-tolerance overhead.  A run
        # directory cannot be created twice, so each repeat gets a fresh
        # one; any of them serves as the resume target afterwards.
        serial_dirs = iter(
            scratch / f"serial{i}" for i in range(N_REPEATS)
        )
        serial, serial_s = _timed(lambda: run_supervised(
            matrix, config, run_dir=next(serial_dirs)))

        # 3. Supervised, parallel: the payoff.
        from dataclasses import replace
        par_config = replace(config, workers=WORKERS)
        parallel_dirs = iter(
            scratch / f"parallel{i}" for i in range(N_REPEATS)
        )
        parallel, parallel_s = _timed(lambda: run_supervised(
            matrix, par_config, run_dir=next(parallel_dirs)))

        # 4. Resume with everything checkpointed: near-free (and
        # idempotent, so repeats can share the directory).
        resumed, resume_s = _timed(lambda: resume_run(
            matrix, scratch / "serial0"))

        assert serial.ok and parallel.ok and resumed.ok
        assert resumed.executed == []

        shapes = lambda r: [(c.rows, c.cols) for c in r.clustering]  # noqa: E731
        assert shapes(serial.result) == shapes(plain)
        assert shapes(parallel.result) == shapes(plain)
        assert shapes(resumed.result) == shapes(plain)

        # The deterministic work totals must agree across all four
        # paths: supervised restarts always count, their counters ride
        # the checkpoint records, and pooling sums per-restart objects
        # -- so plain, serial, parallel and resumed see identical work.
        assert plain.work is not None
        for pooled in (serial.result, parallel.result, resumed.result):
            assert pooled.work is not None
            assert pooled.work.as_dict() == plain.work.as_dict()

        overhead = serial_s / plain_s - 1.0
        speedup = serial_s / parallel_s

        report("runtime_supervision", "\n".join([
            f"supervised mining overhead/payoff "
            f"({N_RESTARTS} restarts, {WORKERS} workers)",
            f"plain restart loop      : {plain_s * 1e3:9.1f} ms",
            f"supervised, 1 worker    : {serial_s * 1e3:9.1f} ms "
            f"({100 * overhead:+.1f}% vs plain)",
            f"supervised, {WORKERS} workers   : {parallel_s * 1e3:9.1f} ms "
            f"({speedup:.2f}x vs 1 worker)",
            f"resume (all done)       : {resume_s * 1e3:9.1f} ms",
            "clusterings             : identical across all four paths",
            f"work (deterministic)    : {plain.work.total()} units "
            f"(toggle_evals={plain.work.toggle_evals}, "
            f"cells_scanned={plain.work.cells_scanned}) "
            "-- identical across all four paths",
        ]))

        assert overhead < 0.60, (
            f"supervision costs {100 * overhead:.1f}% over the plain loop "
            f"(budget: 60%)"
        )
        assert resume_s < serial_s, "resume must not re-execute restarts"
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
