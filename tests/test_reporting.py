"""Unit tests for the plain-text table renderer."""

import pytest

from repro.eval.reporting import (
    format_histogram,
    format_records,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            [[1, 2.5], [30, 4.125]], headers=["a", "b"], precision=2
        )
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert set(lines[1]) == {"-"}
        assert lines[2].split() == ["1", "2.50"]
        assert lines[3].split() == ["30", "4.12"]

    def test_title(self):
        text = format_table([[1]], headers=["x"], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="cells"):
            format_table([[1, 2]], headers=["only"])

    def test_string_cells(self):
        text = format_table([["fixed", 0.75]], headers=["order", "recall"])
        assert "fixed" in text

    def test_precision(self):
        text = format_table([[1.23456]], headers=["v"], precision=4)
        assert "1.2346" in text


class TestFormatRecords:
    def test_selects_columns_in_order(self):
        records = [
            {"recall": 0.8, "precision": 0.9, "extra": 1},
            {"recall": 0.7, "precision": 0.85, "extra": 2},
        ]
        text = format_records(records, ["precision", "recall"])
        header = text.splitlines()[0].split()
        assert header == ["precision", "recall"]
        assert "0.90" in text

    def test_missing_column_rejected(self):
        with pytest.raises(KeyError, match="missing"):
            format_records([{"a": 1}], ["a", "b"])


class TestFormatSeries:
    def test_figure_layout(self):
        text = format_series(
            "n_attributes",
            [50, 100],
            {"floc_s": [1.0, 2.0], "alternative_s": [10.0, 80.0]},
        )
        lines = text.splitlines()
        assert lines[0].split() == ["n_attributes", "floc_s", "alternative_s"]
        assert lines[2].split() == ["50", "1.00", "10.00"]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [1, 2], {"y": [1.0]})


class TestFormatHistogram:
    def test_bars_scale_to_peak(self):
        text = format_histogram([0.0, 1.0, 2.0], [2, 4], width=8)
        lines = text.splitlines()
        assert "####" in lines[-2]      # 2/4 of width 8
        assert "########" in lines[-1]  # the peak bucket
        assert "[0, 1)" in lines[-2]
        assert "[1, 2]" in lines[-1]    # last bucket is closed

    def test_all_zero_counts_render(self):
        text = format_histogram([0.0, 1.0], [0])
        assert "#" not in text

    def test_title_shown(self):
        text = format_histogram([0.0, 1.0], [3], title="gains")
        assert text.splitlines()[0] == "gains"

    def test_edge_count_validated(self):
        with pytest.raises(ValueError, match="edges"):
            format_histogram([0.0, 1.0], [1, 2])
