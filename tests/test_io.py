"""Unit tests for matrix and cluster persistence."""

import json

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.matrix import DataMatrix
from repro.data.io import (
    load_clusters,
    load_matrix_csv,
    load_matrix_npz,
    load_ratings_triples,
    save_clusters,
    save_matrix_csv,
    save_matrix_npz,
    write_json_atomic,
)

NAN = float("nan")


@pytest.fixture
def labeled_matrix():
    return DataMatrix(
        [[1.5, NAN, 3.0], [4.0, 5.5, NAN]],
        row_labels=["r0", "r1"],
        col_labels=["a", "b", "c"],
    )


class TestNpzRoundTrip:
    def test_values_and_labels(self, tmp_path, labeled_matrix):
        path = tmp_path / "matrix.npz"
        save_matrix_npz(path, labeled_matrix)
        loaded = load_matrix_npz(path)
        assert loaded == labeled_matrix
        assert loaded.row_labels == ("r0", "r1")
        assert loaded.col_labels == ("a", "b", "c")

    def test_unlabeled(self, tmp_path):
        matrix = DataMatrix(np.eye(3))
        path = tmp_path / "plain.npz"
        save_matrix_npz(path, matrix)
        loaded = load_matrix_npz(path)
        assert loaded == matrix
        assert loaded.row_labels is None


class TestCsvRoundTrip:
    def test_full_round_trip(self, tmp_path, labeled_matrix):
        path = tmp_path / "matrix.csv"
        save_matrix_csv(path, labeled_matrix)
        loaded = load_matrix_csv(path, header=True, row_labels=True)
        assert loaded == labeled_matrix
        assert loaded.col_labels == ("a", "b", "c")
        assert loaded.row_labels == ("r0", "r1")

    def test_missing_becomes_empty_cell(self, tmp_path, labeled_matrix):
        path = tmp_path / "matrix.csv"
        save_matrix_csv(path, labeled_matrix)
        text = path.read_text()
        assert ",," in text or text.rstrip().endswith(",")

    def test_no_header_no_labels(self, tmp_path):
        matrix = DataMatrix([[1.0, 2.0], [3.0, NAN]])
        path = tmp_path / "bare.csv"
        save_matrix_csv(path, matrix, header=False)
        loaded = load_matrix_csv(path, header=False)
        assert loaded == matrix

    def test_na_tokens_parsed_as_missing(self, tmp_path):
        path = tmp_path / "na.csv"
        path.write_text("1.0,NA\nNaN,4.0\n")
        loaded = load_matrix_csv(path, header=False)
        assert loaded.n_specified == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_matrix_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data"):
            load_matrix_csv(path, header=True)


class TestRatingsTriples:
    """The MovieLens u.data format: 'user item rating timestamp'."""

    def test_basic_parse(self, tmp_path):
        path = tmp_path / "u.data"
        path.write_text("1\t1\t5\t881250949\n1\t2\t3\t881250949\n2\t1\t4\t0\n")
        matrix = load_ratings_triples(path)
        assert matrix.shape == (2, 2)
        assert matrix.values[0, 0] == 5.0
        assert matrix.values[0, 1] == 3.0
        assert matrix.values[1, 0] == 4.0
        assert np.isnan(matrix.values[1, 1])

    def test_zero_indexed(self, tmp_path):
        path = tmp_path / "ratings.txt"
        path.write_text("0 0 2.5\n1 2 4.0\n")
        matrix = load_ratings_triples(path, one_indexed=False)
        assert matrix.shape == (2, 3)
        assert matrix.values[0, 0] == 2.5

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ratings.txt"
        path.write_text("# header\n\n1 1 3\n")
        matrix = load_ratings_triples(path)
        assert matrix.shape == (1, 1)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(ValueError, match="user item rating"):
            load_ratings_triples(path)

    def test_bad_indexing_detected(self, tmp_path):
        path = tmp_path / "zero.txt"
        path.write_text("0 1 3\n")
        with pytest.raises(ValueError, match="indexed"):
            load_ratings_triples(path, one_indexed=True)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no ratings"):
            load_ratings_triples(path)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "csvish.txt"
        path.write_text("1,1,5\n2,2,1\n")
        matrix = load_ratings_triples(path, delimiter=",")
        assert matrix.shape == (2, 2)


class TestClusterRoundTrip:
    def test_round_trip(self, tmp_path):
        clusters = [
            DeltaCluster((0, 2, 5), (1, 3)),
            DeltaCluster((1,), (0, 1, 2)),
        ]
        path = tmp_path / "clusters.txt"
        save_clusters(path, clusters)
        loaded = load_clusters(path)
        assert loaded == clusters

    def test_empty_list(self, tmp_path):
        path = tmp_path / "none.txt"
        save_clusters(path, [])
        assert load_clusters(path) == []

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("rows: 1 2\n")
        with pytest.raises(ValueError, match="pairs"):
            load_clusters(path)

    def test_wrong_prefix_rejected(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("rows: 1\nrows: 2\n")
        with pytest.raises(ValueError, match="malformed"):
            load_clusters(path)


class TestWriteJsonAtomic:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        obj = {"b": [1, 2], "a": {"nested": True}, "x": 1.5}
        write_json_atomic(path, obj)
        assert json.loads(path.read_text()) == obj

    def test_replaces_existing_file(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_json_atomic(path, {"version": 1})
        write_json_atomic(path, {"version": 2})
        assert json.loads(path.read_text()) == {"version": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_json_atomic(path, {"ok": True})
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        obj = {"z": 1, "a": 2, "m": [3, 4]}
        write_json_atomic(a, obj)
        write_json_atomic(b, dict(reversed(list(obj.items()))))
        assert a.read_bytes() == b.read_bytes()

    def test_unserializable_object_leaves_target_untouched(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_json_atomic(path, {"version": 1})
        with pytest.raises(TypeError):
            write_json_atomic(path, {"bad": object()})
        assert json.loads(path.read_text()) == {"version": 1}
