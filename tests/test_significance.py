"""Unit tests for the cluster significance permutation test."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.matrix import DataMatrix
from repro.data.synthetic import generate_embedded
from repro.eval.significance import (
    empirical_residue_distribution,
    residue_significance,
)


class TestNullDistribution:
    def test_shape_and_positivity(self):
        rng = np.random.default_rng(0)
        matrix = DataMatrix(rng.uniform(0, 100, size=(40, 20)))
        null = empirical_residue_distribution(matrix, (5, 4), 50, rng=1)
        assert null.shape == (50,)
        assert (null >= 0).all()

    def test_validation(self):
        matrix = DataMatrix(np.ones((4, 4)))
        with pytest.raises(ValueError, match="shape"):
            empirical_residue_distribution(matrix, (0, 2), 10)
        with pytest.raises(ValueError, match="exceeds"):
            empirical_residue_distribution(matrix, (10, 2), 10)
        with pytest.raises(ValueError, match="n_samples"):
            empirical_residue_distribution(matrix, (2, 2), 0)

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(0)
        matrix = DataMatrix(rng.uniform(0, 100, size=(30, 15)))
        a = empirical_residue_distribution(matrix, (4, 4), 20, rng=7)
        b = empirical_residue_distribution(matrix, (4, 4), 20, rng=7)
        assert (a == b).all()


class TestSignificance:
    def test_planted_cluster_significant(self):
        dataset = generate_embedded(
            150, 30, 2, cluster_shape=(20, 10), noise=2.0, rng=3
        )
        report = residue_significance(
            dataset.matrix, dataset.embedded[0], n_samples=100, rng=0
        )
        assert report.p_value < 0.02
        assert report.z_score < -1.0
        assert report.cluster_residue < report.null_mean

    def test_random_cluster_not_significant(self):
        rng = np.random.default_rng(1)
        matrix = DataMatrix(rng.uniform(0, 100, size=(80, 20)))
        cluster = DeltaCluster(range(10), range(6))
        report = residue_significance(matrix, cluster, n_samples=100, rng=2)
        assert report.p_value > 0.05

    def test_p_value_strictly_positive(self):
        dataset = generate_embedded(
            100, 20, 1, cluster_shape=(15, 8), rng=4
        )
        report = residue_significance(
            dataset.matrix, dataset.embedded[0], n_samples=50, rng=5
        )
        assert report.p_value > 0.0

    def test_empty_cluster_rejected(self):
        matrix = DataMatrix(np.ones((4, 4)))
        with pytest.raises(ValueError, match="empty"):
            residue_significance(matrix, DeltaCluster((), ()))

    def test_report_fields(self):
        rng = np.random.default_rng(6)
        matrix = DataMatrix(rng.normal(size=(30, 10)))
        report = residue_significance(
            matrix, DeltaCluster(range(5), range(4)), n_samples=30, rng=7
        )
        assert report.n_samples == 30
        assert report.null_std >= 0.0
