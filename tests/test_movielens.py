"""Unit tests for the MovieLens-like ratings generator (Section 6.1.1)."""

import numpy as np
import pytest

from repro.data.movielens import DEFAULT_GENRES, generate_ratings


def small_dataset(**overrides):
    defaults = dict(
        n_users=120,
        n_movies=200,
        n_groups=3,
        group_size=25,
        signature_movies=30,
        density=0.15,
        min_ratings=10,
        rng=0,
    )
    defaults.update(overrides)
    return generate_ratings(**defaults)


class TestValidation:
    def test_empty_matrix(self):
        with pytest.raises(ValueError, match="non-empty"):
            generate_ratings(n_users=0, n_movies=10)

    def test_groups_fit(self):
        with pytest.raises(ValueError, match="disjoint groups"):
            generate_ratings(n_users=10, n_movies=20, n_groups=3, group_size=5)

    def test_density_range(self):
        with pytest.raises(ValueError, match="density"):
            small_dataset(density=0.0)

    def test_signature_genres_range(self):
        with pytest.raises(ValueError, match="signature_genres"):
            small_dataset(signature_genres=0)


class TestShapeStatistics:
    def test_shape(self):
        dataset = small_dataset()
        assert dataset.matrix.shape == (120, 200)
        assert dataset.n_users == 120
        assert dataset.n_movies == 200

    def test_rating_scale(self):
        dataset = small_dataset()
        specified = dataset.matrix.values[dataset.matrix.mask]
        assert specified.min() >= 1.0
        assert specified.max() <= 10.0

    def test_integer_ratings_by_default(self):
        dataset = small_dataset()
        specified = dataset.matrix.values[dataset.matrix.mask]
        assert np.allclose(specified, np.round(specified))

    def test_continuous_ratings_option(self):
        dataset = small_dataset(integer_ratings=False)
        specified = dataset.matrix.values[dataset.matrix.mask]
        assert not np.allclose(specified, np.round(specified))

    def test_min_ratings_per_user(self):
        dataset = small_dataset(min_ratings=15)
        counts = dataset.matrix.mask.sum(axis=1)
        assert (counts >= 15).all()

    def test_density_near_target(self):
        dataset = small_dataset(density=0.15)
        assert dataset.matrix.density == pytest.approx(0.15, abs=0.05)

    def test_density_floor_from_planted_structure(self):
        # The forced group blocks set a floor: asking for less density
        # than the planted structure needs yields the floor, not less.
        dataset = small_dataset(density=0.01)
        forced = sum(g.entry_count() for g in dataset.groups)
        assert dataset.matrix.n_specified >= forced

    def test_deterministic(self):
        a = small_dataset(rng=7)
        b = small_dataset(rng=7)
        assert a.matrix == b.matrix


class TestHiddenStructure:
    def test_groups_disjoint(self):
        dataset = small_dataset()
        seen = set()
        for group in dataset.groups:
            assert seen.isdisjoint(group.rows)
            seen.update(group.rows)

    def test_group_assignments_consistent(self):
        dataset = small_dataset()
        for g, cluster in enumerate(dataset.groups):
            for user in cluster.rows:
                assert dataset.user_groups[user] == g

    def test_group_clusters_fully_rated(self):
        # Members always rate their signature-genre movies, so the planted
        # cluster is fully specified (trivially meets any alpha).
        dataset = small_dataset()
        for cluster in dataset.groups:
            sub_mask = dataset.matrix.mask[np.ix_(cluster.rows, cluster.cols)]
            assert sub_mask.all()

    def test_group_coherence_is_strong(self):
        # Within a group, ratings differ by per-user offsets only (plus
        # rounding): the delta-cluster residue must be far below the
        # residue of a random same-shaped submatrix.
        dataset = small_dataset(rng=3)
        cluster = dataset.groups[0]
        group_residue = cluster.residue(dataset.matrix)
        assert group_residue < 0.8  # rounding + noise only
        rng = np.random.default_rng(0)
        random_rows = rng.choice(120, size=cluster.n_rows, replace=False)
        from repro.core.cluster import DeltaCluster

        random_cluster = DeltaCluster(random_rows, cluster.cols)
        random_residue = random_cluster.residue(dataset.matrix)
        assert group_residue < 0.6 * random_residue

    def test_genre_metadata(self):
        dataset = small_dataset()
        assert dataset.genre_names == DEFAULT_GENRES
        assert dataset.movie_genres.shape == (200,)
        assert dataset.movie_genres.min() >= 0
        assert dataset.movie_genres.max() < len(DEFAULT_GENRES)

    def test_ungrouped_users_marked(self):
        dataset = small_dataset()
        grouped = {u for g in dataset.groups for u in g.rows}
        for user in range(120):
            if user not in grouped:
                assert dataset.user_groups[user] == -1
