"""Unit tests for the fixed / random / weighted action orders (Sec. 5.2)."""

import numpy as np
import pytest

from repro.core.ordering import (
    ORDERINGS,
    action_slots,
    fixed_order,
    make_order,
    random_order,
    weighted_order,
)


class TestSlots:
    def test_rows_then_cols(self):
        slots = action_slots(2, 3)
        assert slots == [
            ("row", 0), ("row", 1),
            ("col", 0), ("col", 1), ("col", 2),
        ]

    def test_fixed_order_is_canonical(self):
        assert fixed_order(2, 2) == action_slots(2, 2)


class TestRandomOrder:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        slots = action_slots(10, 5)
        shuffled = random_order(slots, rng)
        assert sorted(shuffled) == sorted(slots)

    def test_usually_differs_from_fixed(self):
        rng = np.random.default_rng(1)
        slots = action_slots(20, 10)
        assert random_order(slots, rng) != slots

    def test_deterministic_given_seed(self):
        slots = action_slots(8, 8)
        first = random_order(slots, np.random.default_rng(42))
        second = random_order(slots, np.random.default_rng(42))
        assert first == second

    def test_zero_swaps_identity(self):
        slots = action_slots(5, 5)
        assert random_order(slots, np.random.default_rng(0), swaps=0) == slots

    def test_negative_swaps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            random_order(action_slots(2, 2), np.random.default_rng(0), swaps=-1)

    def test_short_lists_unchanged(self):
        rng = np.random.default_rng(0)
        assert random_order([("row", 0)], rng) == [("row", 0)]


class TestWeightedOrder:
    def test_is_permutation(self):
        rng = np.random.default_rng(0)
        slots = action_slots(10, 5)
        gains = list(np.linspace(-1, 1, len(slots)))
        shuffled = weighted_order(slots, gains, rng)
        assert sorted(shuffled) == sorted(slots)

    def test_gains_length_checked(self):
        with pytest.raises(ValueError, match="gains"):
            weighted_order(action_slots(3, 3), [1.0], np.random.default_rng(0))

    def test_high_gain_tends_to_front(self):
        # Statistically, the maximum-gain slot should sit earlier than the
        # minimum-gain slot most of the time.
        slots = action_slots(15, 15)
        gains = [0.0] * len(slots)
        gains[0] = 10.0   # ('row', 0): best
        gains[-1] = -10.0  # ('col', 14): worst
        wins = 0
        trials = 60
        for seed in range(trials):
            order = weighted_order(slots, gains, np.random.default_rng(seed))
            if order.index(("row", 0)) < order.index(("col", 14)):
                wins += 1
        assert wins > trials * 0.75

    def test_front_loads_vs_uniform(self):
        # The mean position of the best slot must be earlier under the
        # weighted scheme than under the uniform shuffle.
        slots = action_slots(20, 20)
        gains = [0.0] * len(slots)
        gains[5] = 100.0
        weighted_positions = []
        uniform_positions = []
        for seed in range(40):
            w = weighted_order(slots, gains, np.random.default_rng(seed))
            u = random_order(slots, np.random.default_rng(seed))
            weighted_positions.append(w.index(("row", 5)))
            uniform_positions.append(u.index(("row", 5)))
        assert np.mean(weighted_positions) < np.mean(uniform_positions)

    def test_blocked_gains_handled(self):
        slots = action_slots(4, 4)
        gains = [float("-inf")] * len(slots)
        gains[0] = 1.0
        order = weighted_order(slots, gains, np.random.default_rng(0))
        assert sorted(order) == sorted(slots)

    def test_equal_gains_behaves_like_random(self):
        slots = action_slots(10, 10)
        gains = [2.0] * len(slots)
        order = weighted_order(slots, gains, np.random.default_rng(3))
        assert sorted(order) == sorted(slots)


class TestDispatch:
    def test_known_orderings(self):
        assert set(ORDERINGS) == {"fixed", "random", "weighted", "greedy"}

    def test_greedy_sorts_descending(self):
        from repro.core.ordering import greedy_order

        slots = action_slots(2, 2)
        gains = [0.5, 2.0, float("-inf"), 1.0]
        order = greedy_order(slots, gains)
        assert order == [("row", 1), ("col", 1), ("row", 0), ("col", 0)]

    def test_greedy_ties_keep_canonical_order(self):
        from repro.core.ordering import greedy_order

        slots = action_slots(3, 0)
        order = greedy_order(slots, [1.0, 1.0, 1.0])
        assert order == slots

    def test_greedy_length_checked(self):
        from repro.core.ordering import greedy_order

        with pytest.raises(ValueError, match="gains"):
            greedy_order(action_slots(2, 2), [1.0])

    def test_make_order_fixed(self):
        slots = action_slots(3, 2)
        assert make_order("fixed", slots, [], np.random.default_rng(0)) == slots

    def test_make_order_unknown(self):
        with pytest.raises(ValueError, match="unknown ordering"):
            make_order("sorted", [], [], np.random.default_rng(0))

    def test_make_order_random_and_weighted(self):
        slots = action_slots(6, 6)
        rng = np.random.default_rng(0)
        assert sorted(make_order("random", slots, [], rng)) == sorted(slots)
        gains = [0.0] * len(slots)
        assert sorted(make_order("weighted", slots, gains, rng)) == sorted(slots)
