"""Chaos tests: crash mid-run, resume, and demand bit-identical results.

The determinism contract under test (docs/ROBUSTNESS.md): a run that is
killed and corrupted partway through, then resumed with the faults gone,
pools to *exactly* the clustering an uninterrupted run produces -- same
clusters, same history floats, same serialized bytes.
"""

import json

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.runtime import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    RunConfig,
    resume_run,
    run_supervised,
)

pytestmark = pytest.mark.runtime


@pytest.fixture
def matrix():
    rng = np.random.default_rng(21)
    values = rng.normal(size=(16, 8))
    values[:7, :5] += 3.5
    return DataMatrix(values)


@pytest.fixture
def config():
    return RunConfig(residue_target=1.5, n_restarts=4, root_seed=5, k=2,
                     max_iterations=4, min_volume=9, workers=2,
                     max_retries=0)


def serialized(result):
    """Canonical bytes for a pooled mining result, like the on-disk path."""
    payload = {
        "clustering": [[list(c.rows), list(c.cols)]
                       for c in result.clustering],
        "histories": [run.history for run in result.runs],
        "initial_residues": [run.initial_residue for run in result.runs],
    }
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(autouse=True)
def _no_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


class TestCrashResumeParity:
    def test_kill_and_corrupt_then_resume_is_bit_identical(
            self, matrix, config, tmp_path, monkeypatch):
        # Ground truth: an uninterrupted run.
        baseline = run_supervised(matrix, config, run_dir=tmp_path / "a")
        assert baseline.ok

        # Chaos run: one worker dies, another's checkpoint is garbled,
        # and with max_retries=0 nothing recovers in-run.
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="kill", restart=2),
            FaultSpec(site="checkpoint", kind="corrupt", restart=1),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        crashed = run_supervised(matrix, config, run_dir=tmp_path / "b")
        assert not crashed.ok
        assert crashed.degradation is not None
        missing = set(crashed.degradation.missing)
        assert {1, 2} <= missing

        # The faults clear (the "process restarted" scenario) and we
        # resume: only the lost restarts re-execute.
        monkeypatch.delenv(FAULT_PLAN_ENV)
        resumed = resume_run(matrix, tmp_path / "b")
        assert resumed.ok
        assert set(resumed.executed) == missing
        assert set(resumed.skipped) == set(range(4)) - missing

        assert serialized(resumed.result) == serialized(baseline.result)

    def test_flaky_run_with_retries_matches_clean_run(
            self, matrix, config, tmp_path, monkeypatch):
        from dataclasses import replace
        retrying = replace(config, max_retries=2)

        baseline = run_supervised(matrix, retrying, run_dir=tmp_path / "a")
        assert baseline.ok

        # Every fault kind at once, each recoverable within the retry
        # budget -- the run should self-heal with no degradation.
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="error", restart=0),
            FaultSpec(site="worker_start", kind="kill", restart=2),
            FaultSpec(site="checkpoint", kind="corrupt", restart=3),
        ))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        flaky = run_supervised(matrix, retrying, run_dir=tmp_path / "b",
                               sleep=lambda _s: None)
        assert flaky.ok
        assert flaky.degradation is None
        assert serialized(flaky.result) == serialized(baseline.result)

    def test_double_crash_then_resume(self, matrix, config, tmp_path,
                                      monkeypatch):
        baseline = run_supervised(matrix, config, run_dir=tmp_path / "a")

        plan = FaultPlan((FaultSpec(site="worker_start", kind="kill",
                                    restart=3, attempts=10),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        first = run_supervised(matrix, config, run_dir=tmp_path / "b")
        assert not first.ok
        banked = set(range(4)) - set(first.degradation.missing)
        # Second attempt still faulted: resume makes no progress on 3
        # (a pool kill may also collaterally fail same-wave peers) but
        # never loses what is already banked.
        second = resume_run(matrix, tmp_path / "b")
        assert not second.ok
        assert 3 in second.degradation.missing
        assert set(second.skipped) >= banked

        monkeypatch.delenv(FAULT_PLAN_ENV)
        third = resume_run(matrix, tmp_path / "b")
        assert third.ok
        assert 3 in third.executed
        assert serialized(third.result) == serialized(baseline.result)
