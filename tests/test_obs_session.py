"""Tests for repro.obs.session: cross-process trace shards + merge."""

import json

import pytest

from repro.obs.events import IterationEvent, SeedEvent, TaskEvent
from repro.obs.session import (
    SESSION_TRACE_FILENAME,
    TRACE_SCHEMA,
    TRACES_DIRNAME,
    SessionTrace,
    TraceContext,
    collect_session,
    merge_session,
    open_worker_tracer,
    session_id_for,
    worker_shard_path,
)
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import NULL_TRACER, Tracer


def _write_shard(path, meta, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(meta)] + [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _meta(process, anchor_local, anchor_session, session="abc123"):
    return {
        "type": "trace_meta",
        "schema": TRACE_SCHEMA,
        "session": session,
        "process": process,
        "clock_anchor_local": anchor_local,
        "clock_anchor_session": anchor_session,
    }


class TestSessionId:
    def test_deterministic(self, tmp_path):
        identity = {"root_seed": 5, "k": 2}
        a = session_id_for(identity, tmp_path)
        b = session_id_for({"k": 2, "root_seed": 5}, tmp_path)
        assert a == b
        assert len(a) == 16
        int(a, 16)  # hex

    def test_varies_with_identity_and_run_dir(self, tmp_path):
        base = session_id_for({"root_seed": 5}, tmp_path)
        assert session_id_for({"root_seed": 6}, tmp_path) != base
        assert session_id_for({"root_seed": 5}, tmp_path / "other") != base


class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(session="s", parent_span="task:3:0",
                           anchor_session=1.25)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_missing_fields_default(self):
        ctx = TraceContext.from_dict({})
        assert ctx.session == ""
        assert ctx.anchor_session == 0.0

    @pytest.mark.parametrize("anchor", ["soon", None, True, [1.0]])
    def test_non_numeric_anchor_rejected(self, anchor):
        with pytest.raises(ValueError, match="anchor_session"):
            TraceContext.from_dict({"anchor_session": anchor})


class TestWorkerShard:
    def test_shard_path_naming(self, tmp_path):
        path = worker_shard_path(tmp_path, 3, 1)
        assert path == tmp_path / TRACES_DIRNAME / "trace_worker_00003_01.jsonl"

    def test_open_worker_tracer_writes_meta_first(self, tmp_path):
        ctx = TraceContext(session="s1", parent_span="task:7:0",
                           anchor_session=0.5)
        tracer = open_worker_tracer(tmp_path, ctx, 7, 0)
        tracer.emit(SeedEvent(cluster=0))
        # flush_every=1: the shard is tailable before close.
        lines = worker_shard_path(tmp_path, 7, 0).read_text().splitlines()
        tracer.close()
        meta = json.loads(lines[0])
        assert meta["type"] == "trace_meta"
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["session"] == "s1"
        assert meta["process"] == "worker:00007:00"
        assert meta["parent_span"] == "task:7:0"
        assert meta["clock_anchor_session"] == 0.5
        assert isinstance(meta["clock_anchor_local"], float)
        event = json.loads(lines[1])
        assert event["type"] == "seed"
        # Stamped and contextualised for the merge.
        assert event["seq"] == 0
        assert isinstance(event["ts"], float)
        assert event["restart"] == 7
        assert event["attempt"] == 0

    def test_accepts_context_dict(self, tmp_path):
        tracer = open_worker_tracer(
            tmp_path, {"session": "s2", "parent_span": "task:0:0",
                       "anchor_session": 0.0}, 0, 0)
        tracer.close()
        meta = json.loads(
            worker_shard_path(tmp_path, 0, 0).read_text().splitlines()[0])
        assert meta["session"] == "s2"


class TestSessionTraceLifecycle:
    def test_attach_with_disabled_tracer_leaves_null_tracer_alone(
        self, tmp_path
    ):
        session = SessionTrace.create(tmp_path, {"root_seed": 1})
        tracer = session.attach(NULL_TRACER)
        try:
            assert tracer is not NULL_TRACER
            assert tracer.enabled
            assert tracer.stamp
            assert NULL_TRACER.sinks == []
            assert NULL_TRACER.stamp is False
            assert not NULL_TRACER.enabled
        finally:
            session.detach()

    def test_attach_detach_restores_enabled_tracer(self, tmp_path):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        session = SessionTrace.create(tmp_path, {"root_seed": 1})
        attached = session.attach(tracer)
        assert attached is tracer
        assert tracer.stamp
        assert len(tracer.sinks) == 2
        tracer.emit(TaskEvent(restart=0, status="dispatched"))
        session.detach()
        assert tracer.sinks == [ring]
        assert tracer.stamp is False
        # The shard received the event alongside the original sink.
        shard = tmp_path / TRACES_DIRNAME / "trace_supervisor.jsonl"
        types = [json.loads(line)["type"]
                 for line in shard.read_text().splitlines()]
        assert types == ["trace_meta", "task"]
        assert len(ring.records) == 1

    def test_supervisor_shard_generations(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        for expected_name, expected_process in (
            ("trace_supervisor.jsonl", "supervisor"),
            ("trace_supervisor_01.jsonl", "supervisor:01"),
            ("trace_supervisor_02.jsonl", "supervisor:02"),
        ):
            session = SessionTrace.create(tmp_path, {"root_seed": 1})
            session.attach(NULL_TRACER)
            session.detach()
            meta = json.loads(
                (traces / expected_name).read_text().splitlines()[0])
            assert meta["process"] == expected_process
        # "." sorts before "_", so generation order survives sorted glob.
        names = sorted(p.name for p in traces.glob("trace_supervisor*.jsonl"))
        assert names == ["trace_supervisor.jsonl",
                         "trace_supervisor_01.jsonl",
                         "trace_supervisor_02.jsonl"]

    def test_task_context_uses_session_time(self, tmp_path):
        session = SessionTrace.create(tmp_path, {"root_seed": 1})
        session.attach(NULL_TRACER)
        try:
            ctx = TraceContext.from_dict(session.task_context(3, 1))
            assert ctx.session == session.session_id
            assert ctx.parent_span == "task:3:1"
            assert 0.0 <= ctx.anchor_session < 60.0
        finally:
            session.detach()


class TestCollectSession:
    def test_clock_alignment_across_processes(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        # Supervisor clock reads 100.0 at session time 0.
        _write_shard(
            traces / "trace_supervisor.jsonl",
            _meta("supervisor", 100.0, 0.0),
            [{"type": "task", "status": "dispatched", "ts": 100.5, "seq": 0}],
        )
        # Worker clock reads 50.0 when the session clock reads 0.2.
        _write_shard(
            traces / "trace_worker_00000_00.jsonl",
            _meta("worker:00000:00", 50.0, 0.2),
            [{"type": "seed", "ts": 50.1, "seq": 0}],
        )
        meta, records = collect_session(tmp_path)
        assert meta["session"] == "abc123"
        assert meta["processes"] == ["supervisor", "worker:00000:00"]
        assert meta["n_records"] == 2
        assert meta["skipped_shards"] == []
        assert meta["corrupt_lines"] == {}
        # Worker event at session time 0.3 sorts before supervisor 0.5.
        assert [r["type"] for r in records] == ["seed", "task"]
        assert records[0]["ts"] == pytest.approx(0.3)
        assert records[0]["process"] == "worker:00000:00"
        assert records[1]["ts"] == pytest.approx(0.5)

    def test_ties_broken_by_process_then_seq(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        _write_shard(
            traces / "trace_supervisor.jsonl",
            _meta("supervisor", 0.0, 0.0),
            [{"type": "task", "ts": 1.0, "seq": 1},
             {"type": "task", "ts": 1.0, "seq": 0}],
        )
        _write_shard(
            traces / "trace_worker_00000_00.jsonl",
            _meta("worker:00000:00", 0.0, 0.0),
            [{"type": "seed", "ts": 1.0, "seq": 0}],
        )
        _, records = collect_session(tmp_path)
        assert [(r["process"], r["seq"]) for r in records] == [
            ("supervisor", 0), ("supervisor", 1), ("worker:00000:00", 0),
        ]

    def test_unstamped_record_falls_back_to_anchor(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        _write_shard(
            traces / "trace_worker_00000_00.jsonl",
            _meta("worker:00000:00", 10.0, 0.75),
            [{"type": "seed"}],
        )
        _, records = collect_session(tmp_path)
        assert records[0]["ts"] == pytest.approx(0.75)
        assert records[0]["seq"] == 0

    def test_metaless_shard_skipped_not_fatal(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        _write_shard(
            traces / "trace_supervisor.jsonl",
            _meta("supervisor", 0.0, 0.0),
            [{"type": "task", "ts": 1.0, "seq": 0}],
        )
        bad = traces / "trace_worker_00001_00.jsonl"
        bad.write_text('{"type": "seed", "ts": 1.0}\n', encoding="utf-8")
        meta, records = collect_session(tmp_path)
        assert meta["skipped_shards"] == ["trace_worker_00001_00.jsonl"]
        assert [r["type"] for r in records] == ["task"]

    def test_truncated_final_line_skipped_and_reported(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        shard = traces / "trace_worker_00000_00.jsonl"
        _write_shard(
            shard,
            _meta("worker:00000:00", 0.0, 0.0),
            [{"type": "seed", "ts": 1.0, "seq": 0}],
        )
        # Simulate a worker killed mid-write: partial trailing line.
        with shard.open("a", encoding="utf-8") as handle:
            handle.write('{"type": "iter')
        meta, records = collect_session(tmp_path)
        assert meta["corrupt_lines"] == {"trace_worker_00000_00.jsonl": [3]}
        assert [r["type"] for r in records] == ["seed"]

    def test_empty_traces_dir(self, tmp_path):
        (tmp_path / TRACES_DIRNAME).mkdir()
        meta, records = collect_session(tmp_path)
        assert records == []
        assert meta["processes"] == []
        assert meta["n_records"] == 0


class TestMergeSession:
    def _populate(self, tmp_path):
        traces = tmp_path / TRACES_DIRNAME
        _write_shard(
            traces / "trace_supervisor.jsonl",
            _meta("supervisor", 100.0, 0.0),
            [{"type": "task", "status": "dispatched", "ts": 100.1, "seq": 0},
             {"type": "task", "status": "completed", "ts": 100.9, "seq": 1}],
        )
        _write_shard(
            traces / "trace_worker_00000_00.jsonl",
            _meta("worker:00000:00", 7.0, 0.15),
            [{"type": "seed", "ts": 7.05, "seq": 0},
             {"type": "iteration", "ts": 7.5, "seq": 1}],
        )

    def test_merge_layout_and_determinism(self, tmp_path):
        self._populate(tmp_path)
        out_a = merge_session(tmp_path, tmp_path / "a.jsonl")
        out_b = merge_session(tmp_path, tmp_path / "b.jsonl")
        assert out_a.read_bytes() == out_b.read_bytes()
        lines = out_a.read_text().splitlines()
        head = json.loads(lines[0])
        assert head["type"] == "session_meta"
        assert head["n_records"] == 4
        types = [json.loads(line)["type"] for line in lines[1:]]
        assert types == ["task", "seed", "iteration", "task"]
        # Sorted keys on every line.
        for line in lines:
            payload = json.loads(line)
            assert line == json.dumps(payload, sort_keys=True)

    def test_default_output_path(self, tmp_path):
        self._populate(tmp_path)
        out = merge_session(tmp_path)
        assert out == tmp_path / TRACES_DIRNAME / SESSION_TRACE_FILENAME
        assert out.is_file()

    def test_end_to_end_in_process(self, tmp_path):
        """Supervisor + simulated worker tracers merge into one session."""
        session = SessionTrace.create(tmp_path, {"root_seed": 9})
        tracer = session.attach(NULL_TRACER)
        tracer.emit(TaskEvent(restart=0, status="dispatched"))
        ctx = session.task_context(0, 0)
        worker = open_worker_tracer(tmp_path, ctx, 0, 0)
        worker.emit(SeedEvent(cluster=0))
        worker.emit(IterationEvent(index=0, residue=1.0))
        worker.close()
        tracer.emit(TaskEvent(restart=0, status="completed"))
        session.detach()
        out = session.merge()
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines[0]["session"] == session.session_id
        assert lines[0]["processes"] == ["supervisor", "worker:00000:00"]
        assert lines[0]["skipped_shards"] == []
        types = [line["type"] for line in lines[1:]]
        assert sorted(types) == ["iteration", "seed", "task", "task"]
        # Session time starts at attach: every aligned ts is sane.
        for line in lines[1:]:
            assert 0.0 <= line["ts"] < 60.0
