"""Public-surface sanity: exports exist, __all__ lists are honest, and
the example scripts at least compile."""

import importlib
import pathlib
import py_compile

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.baselines",
    "repro.subspace",
    "repro.data",
    "repro.eval",
]

MODULES = [
    "repro.cli",
    "repro.core.matrix",
    "repro.core.rng",
    "repro.core.residue",
    "repro.core.cluster",
    "repro.core.clustering",
    "repro.core.actions",
    "repro.core.ordering",
    "repro.core.seeding",
    "repro.core.constraints",
    "repro.core.floc",
    "repro.core.predict",
    "repro.core.mining",
    "repro.baselines.cheng_church",
    "repro.baselines.pearson",
    "repro.subspace.grid",
    "repro.subspace.clique",
    "repro.subspace.cover",
    "repro.subspace.graph",
    "repro.subspace.derived",
    "repro.data.synthetic",
    "repro.data.movielens",
    "repro.data.microarray",
    "repro.data.categorical",
    "repro.data.distributions",
    "repro.data.io",
    "repro.eval.metrics",
    "repro.eval.experiment",
    "repro.eval.reporting",
    "repro.eval.significance",
    "repro.devtools",
    "repro.devtools.lint",
    "repro.devtools.rules",
]


def test_previously_unexported_names_are_public():
    """Regression: DCL005 found these public names missing from __all__."""
    from repro.core import ordering
    from repro.data import microarray
    from repro.eval import experiment

    assert "greedy_order" in ordering.__all__
    assert "YeastDataset" in microarray.__all__
    assert "generate_workload" in experiment.__all__


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{name} has no __all__")
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_public_symbols_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if isinstance(obj, type) or (
            callable(obj) and not _is_type_alias(obj)
        ):
            assert getattr(obj, "__doc__", None), (
                f"{name}.{symbol} lacks a docstring"
            )


def _is_type_alias(obj):
    # typing aliases like Seed = Tuple[np.ndarray, np.ndarray] are
    # "callable" but carry typing's docstring, not their own.
    return getattr(obj, "__module__", "") == "typing"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 4


@pytest.mark.parametrize(
    "path", EXAMPLES, ids=lambda p: p.name
)
def test_examples_compile(path):
    py_compile.compile(str(path), doraise=True)
