"""Self-tests for the whole-program analyzer (``repro lint --deep``).

Covers the three analysis layers (symbol table, call graph, dataflow)
plus the four transitive rules DCL010-DCL013.  Each rule gets at least
one *transitive* positive fixture -- a violation spread across two
modules that no single-file AST rule could see -- alongside negative,
suppression, and path-scoping cases, following the
``tests/test_devtools_lint.py`` pattern.  A golden-file test pins the
call graph of a small synthetic package, and a determinism test asserts
two ``--deep --format json`` runs over the real ``src/`` tree are
byte-identical.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.callgraph import build_callgraph, render_reach
from repro.devtools.dataflow import (
    DEEP_RULES,
    all_deep_rules,
    deep_lint,
    propagate,
    witness_chain,
)
from repro.devtools.lint import lint_paths, main
from repro.devtools.symbols import build_project, module_name_for_path

pytestmark = pytest.mark.devtools

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
DATA = Path(__file__).resolve().parent / "data"

CORE_A = "src/repro/core/alpha.py"
CORE_B = "src/repro/core/beta.py"
OTHER_A = "src/repro/data/alpha.py"
OTHER_B = "src/repro/data/beta.py"


def deep_codes(files, select=None):
    violations, _ = deep_lint(files, all_deep_rules(select))
    return [v.rule for v in violations]


def write_tree(tmp_path, files):
    """Materialize a ``{relpath: source}`` dict under ``tmp_path``."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


# ----------------------------------------------------------------------
# Symbol table
# ----------------------------------------------------------------------
class TestSymbols:
    def test_module_name_from_src_layout(self):
        assert module_name_for_path("src/repro/core/floc.py") == (
            "repro.core.floc"
        )
        assert module_name_for_path("/tmp/x/src/repro/core/__init__.py") == (
            "repro.core"
        )

    def test_relative_import_resolution(self):
        files = {
            "src/repro/core/alpha.py": (
                "from .beta import helper\n"
                "from ..obs.events import Event\n"
                "__all__ = []\n"
            ),
            "src/repro/core/beta.py": "__all__ = ['helper']\n"
            "def helper():\n    return 1\n",
        }
        project = build_project(files)
        module = project.modules["repro.core.alpha"]
        assert module.imports["helper"] == "repro.core.beta.helper"
        assert module.imports["Event"] == "repro.obs.events.Event"
        resolution = project.resolve_callable("repro.core.beta.helper")
        assert resolution.function is not None
        assert resolution.function.qualname == "repro.core.beta.helper"

    def test_reexport_chain_is_chased(self):
        files = {
            "src/pkg/__init__.py": "from .impl import work\n__all__ = ['work']\n",
            "src/pkg/impl.py": "__all__ = ['work']\ndef work():\n    return 0\n",
            "src/app.py": (
                "import pkg\n__all__ = []\n"
                "def run():\n    return pkg.work()\n"
            ),
        }
        project = build_project(files)
        graph = build_callgraph(project)
        callees = [s.callee for s in graph.nodes["app.run"].calls]
        assert callees == ["pkg.impl.work"]

    def test_unanalyzed_project_module_is_accounted(self):
        project = build_project(
            {"src/repro/core/alpha.py": "__all__ = []\n"}
        )
        resolution = project.resolve_callable("repro.core.missing.fn")
        assert not resolution.resolved
        assert resolution.reason == "unanalyzed-module"


# ----------------------------------------------------------------------
# Call graph
# ----------------------------------------------------------------------
_GOLDEN_FILES = {
    "src/mypkg/__init__.py": "",
    "src/mypkg/util.py": (
        "import time\n"
        "__all__ = ['tick']\n"
        "def tick():\n"
        "    return time.perf_counter()\n"
    ),
    "src/mypkg/app.py": (
        "from .util import tick\n"
        "__all__ = ['Runner', 'main']\n"
        "class Runner:\n"
        "    def __init__(self):\n"
        "        self.count = 0\n"
        "    def go(self):\n"
        "        self.count = self.count + 1\n"
        "        return tick()\n"
        "def main(callback):\n"
        "    runner = Runner()\n"
        "    callback()\n"
        "    return runner.go()\n"
    ),
}


class TestCallGraph:
    def test_golden_file(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        payload = json.dumps(graph.to_dict(), indent=2, sort_keys=True)
        golden = (DATA / "callgraph_golden.json").read_text()
        assert payload == golden, (
            "call graph drifted from tests/data/callgraph_golden.json; "
            "if the change is intended, regenerate the golden file"
        )

    def test_method_dispatch_and_constructor_edges(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        main_calls = [s.callee for s in graph.nodes["mypkg.app.main"].calls]
        assert "mypkg.app.Runner.__init__" in main_calls
        assert "mypkg.app.Runner.go" in main_calls
        go_calls = [s.callee for s in graph.nodes["mypkg.app.Runner.go"].calls]
        assert go_calls == ["mypkg.util.tick"]

    def test_unresolved_accounting(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        reasons = [
            u.reason for u in graph.nodes["mypkg.app.main"].unresolved
        ]
        assert reasons == ["callable-parameter"]
        stats = graph.stats()
        assert stats["unresolved_calls"]["by_reason"] == {
            "callable-parameter": 1
        }
        assert stats["functions"] == 4

    def test_external_calls_are_canonical(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        assert "time.perf_counter" in (
            graph.nodes["mypkg.util.tick"].external_calls
        )

    def test_transitive_callees(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        assert graph.transitive_callees("mypkg.app.main") == [
            "mypkg.app.Runner.__init__",
            "mypkg.app.Runner.go",
            "mypkg.util.tick",
        ]

    def test_render_reach_matches_suffix(self):
        graph = build_callgraph(build_project(_GOLDEN_FILES))
        lines, matched = render_reach(graph, "main")
        assert matched
        assert lines[0] == "mypkg.app.main"
        assert any("mypkg.util.tick" in line for line in lines)
        _, matched = render_reach(graph, "nope")
        assert not matched


# ----------------------------------------------------------------------
# Fixpoint propagation
# ----------------------------------------------------------------------
class TestPropagate:
    def test_witness_chain_is_deterministic(self):
        files = {
            "src/repro/core/alpha.py": (
                "from .beta import middle\n__all__ = []\n"
                "def top():\n    return middle()\n"
            ),
            "src/repro/core/beta.py": (
                "import time\n__all__ = []\n"
                "def middle():\n    return leaf()\n"
                "def leaf():\n    return time.perf_counter()\n"
            ),
        }
        graph = build_callgraph(build_project(files))
        tainted = propagate(graph, {"repro.core.beta.leaf": "clock"})
        chain = witness_chain(tainted, "repro.core.alpha.top")
        assert chain == [
            "repro.core.alpha.top",
            "repro.core.beta.middle",
            "repro.core.beta.leaf",
        ]

    def test_follow_filter_stops_taint(self):
        files = {
            "src/repro/core/alpha.py": (
                "from .beta import consume\n__all__ = []\n"
                "def threaded(rng):\n    return consume(rng=rng)\n"
            ),
            "src/repro/core/beta.py": (
                "__all__ = []\n"
                "def consume(rng=None):\n    return rng\n"
            ),
        }
        graph = build_callgraph(build_project(files))
        tainted = propagate(
            graph,
            {"repro.core.beta.consume": "rng"},
            follow=lambda site: not site.passes_rng,
        )
        assert "repro.core.alpha.threaded" not in tainted


# ----------------------------------------------------------------------
# DCL010 -- transitive wall-clock reach from core
# ----------------------------------------------------------------------
class TestTransitiveWallClock:
    FILES = {
        CORE_A: (
            "from .beta import helper\n__all__ = []\n"
            "def run(x):\n    return helper(x)\n"
        ),
        CORE_B: (
            "import time\n__all__ = []\n"
            "def helper(x):\n    return x + time.perf_counter()\n"
        ),
    }

    def test_transitive_reach_fires_in_core(self):
        violations, _ = deep_lint(self.FILES, all_deep_rules(["DCL010"]))
        assert [v.rule for v in violations] == ["DCL010"]
        v = violations[0]
        # The *caller* that only reaches the clock through another
        # module is flagged -- invisible to any single-file rule.
        assert v.path == CORE_A
        assert "time.perf_counter" in v.message
        assert "run -> helper" in v.message

    def test_direct_reader_is_left_to_dcl002(self):
        violations, _ = deep_lint(self.FILES, all_deep_rules(["DCL010"]))
        assert all(v.path != CORE_B for v in violations)

    def test_clean_chain_is_silent(self):
        files = {
            CORE_A: (
                "from .beta import helper\n__all__ = []\n"
                "def run(x):\n    return helper(x)\n"
            ),
            CORE_B: "__all__ = []\ndef helper(x):\n    return x * 2\n",
        }
        assert deep_codes(files, ["DCL010"]) == []

    def test_path_scoping_outside_core(self):
        files = {
            OTHER_A: self.FILES[CORE_A],
            OTHER_B: self.FILES[CORE_B],
        }
        assert deep_codes(files, ["DCL010"]) == []

    def test_line_level_suppression(self, tmp_path):
        files = dict(self.FILES)
        files[CORE_A] = files[CORE_A].replace(
            "def run(x):", "def run(x):  # dcl: disable=DCL010"
        )
        write_tree(tmp_path, files)
        report = lint_paths([str(tmp_path)], deep=True)
        assert "DCL010" not in [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# DCL011 -- RNG threading closure
# ----------------------------------------------------------------------
class TestRngThreading:
    FILES = {
        CORE_B: (
            "__all__ = ['consume']\n"
            "def consume(data, rng=None):\n    return data\n"
        ),
        CORE_A: (
            "from .beta import consume\n__all__ = []\n"
            "def middle(data):\n    return consume(data)\n"
            "def outer(data):\n    return middle(data)\n"
        ),
    }

    def test_unthreaded_chain_fires_transitively(self):
        violations, _ = deep_lint(self.FILES, all_deep_rules(["DCL011"]))
        paths_lines = {(v.path, v.rule) for v in violations}
        # Both the direct caller and -- transitively -- its caller are
        # flagged: 'outer' never mentions an RNG in its own file/AST.
        assert paths_lines == {(CORE_A, "DCL011")}
        assert len(violations) == 2
        assert any("outer" in v.message for v in violations)
        assert any("middle" in v.message for v in violations)

    def test_explicit_pass_is_clean(self):
        files = {
            CORE_B: self.FILES[CORE_B],
            CORE_A: (
                "from .beta import consume\n__all__ = []\n"
                "def middle(data, rng=None):\n    return consume(data, rng)\n"
                "def outer(data, rng=None):\n"
                "    return middle(data, rng=rng)\n"
            ),
        }
        assert deep_codes(files, ["DCL011"]) == []

    def test_consumer_itself_not_flagged(self):
        assert all(
            v.path != CORE_B
            for v in deep_lint(self.FILES, all_deep_rules(["DCL011"]))[0]
        )

    def test_path_scoping_outside_core(self):
        files = {
            OTHER_B: self.FILES[CORE_B],
            OTHER_A: self.FILES[CORE_A].replace(".beta", ".beta"),
        }
        assert deep_codes(files, ["DCL011"]) == []

    def test_line_level_suppression(self, tmp_path):
        files = dict(self.FILES)
        files[CORE_A] = (
            "from .beta import consume\n__all__ = []\n"
            "def middle(data):\n"
            "    return consume(data)  # dcl: disable=DCL011\n"
            "def outer(data):\n"
            "    return middle(data)  # dcl: disable=DCL011\n"
        )
        write_tree(tmp_path, files)
        report = lint_paths([str(tmp_path)], deep=True)
        assert "DCL011" not in [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# DCL012 -- ndarray parameter mutation
# ----------------------------------------------------------------------
class TestNdarrayMutation:
    def test_slice_assignment_fires(self):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(member: np.ndarray) -> None:\n"
                "    member[0] = True\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == ["DCL012"]

    def test_mutation_through_alias_fires(self):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(member: np.ndarray) -> None:\n"
                "    view = member[:5]\n"
                "    view += 1\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == ["DCL012"]

    def test_mutator_method_and_out_fire(self):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(a: np.ndarray, b: np.ndarray) -> None:\n"
                "    a.sort()\n"
                "    np.add(b, 1, out=b)\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == ["DCL012", "DCL012"]

    def test_copy_kills_the_alias(self):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(member: np.ndarray) -> np.ndarray:\n"
                "    member = member.copy()\n"
                "    member[0] = True\n"
                "    return member\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == []

    def test_state_class_exemption_is_cross_module(self):
        # The *State class lives in another module: a per-file rule
        # could not know the annotation names a state-owning class.
        files = {
            CORE_B: (
                "__all__ = ['MiningState']\n"
                "class MiningState:\n"
                "    def __init__(self):\n"
                "        self.buffers = {}\n"
            ),
            CORE_A: (
                "import numpy as np\n"
                "from .beta import MiningState\n__all__ = []\n"
                "def step(state: MiningState, member: np.ndarray) -> None:\n"
                "    member[0] = True\n"
            ),
        }
        violations, _ = deep_lint(files, all_deep_rules(["DCL012"]))
        assert [v.rule for v in violations] == ["DCL012"]
        assert "'member'" in violations[0].message

    def test_self_owned_buffers_are_exempt(self):
        files = {
            CORE_A: (
                "__all__ = ['State']\n"
                "class State:\n"
                "    def toggle(self, index):\n"
                "        self.member[index] = not self.member[index]\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == []

    def test_path_scoping_outside_core(self):
        files = {
            OTHER_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(member: np.ndarray) -> None:\n"
                "    member[0] = True\n"
            )
        }
        assert deep_codes(files, ["DCL012"]) == []

    def test_line_level_suppression(self, tmp_path):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(member: np.ndarray) -> None:\n"
                "    member[0] = True  # dcl: disable=DCL012\n"
            )
        }
        write_tree(tmp_path, files)
        report = lint_paths([str(tmp_path)], deep=True)
        assert "DCL012" not in [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# DCL013 -- float equality in core
# ----------------------------------------------------------------------
class TestFloatEquality:
    def test_float_literal_fires(self):
        files = {
            CORE_A: (
                "__all__ = []\n"
                "def f(x):\n    return x == 0.5\n"
            )
        }
        assert deep_codes(files, ["DCL013"]) == ["DCL013"]

    def test_nan_and_float_call_fire(self):
        files = {
            CORE_A: (
                "import numpy as np\n__all__ = []\n"
                "def f(x):\n"
                "    return x != np.nan or x == float('1.5')\n"
            )
        }
        # Two comparisons on the line -> two findings.
        assert deep_codes(files, ["DCL013"]) == ["DCL013", "DCL013"]

    def test_float_return_across_modules_fires(self):
        # The operand's floatness lives in another module's return
        # annotation -- invisible to a single-file rule.
        files = {
            CORE_B: (
                "__all__ = ['residue']\n"
                "def residue(sub) -> float:\n    return 0.0\n"
            ),
            CORE_A: (
                "from .beta import residue\n__all__ = []\n"
                "def is_best(sub, best):\n"
                "    return residue(sub) == best\n"
            ),
        }
        violations, _ = deep_lint(files, all_deep_rules(["DCL013"]))
        assert [v.rule for v in violations] == ["DCL013"]
        assert violations[0].path == CORE_A
        assert "repro.core.beta.residue" in violations[0].message

    def test_integer_comparison_is_clean(self):
        files = {
            CORE_A: (
                "__all__ = []\n"
                "def f(x):\n    return x == 5 and x != 'a'\n"
            )
        }
        assert deep_codes(files, ["DCL013"]) == []

    def test_path_scoping_outside_core(self):
        files = {
            OTHER_A: (
                "__all__ = []\n"
                "def f(x):\n    return x == 0.5\n"
            )
        }
        assert deep_codes(files, ["DCL013"]) == []

    def test_line_level_suppression(self, tmp_path):
        files = {
            CORE_A: (
                "__all__ = []\n"
                "def f(x):\n"
                "    return x == 0.5  # dcl: disable=DCL013\n"
            )
        }
        write_tree(tmp_path, files)
        report = lint_paths([str(tmp_path)], deep=True)
        assert "DCL013" not in [v.rule for v in report.violations]


# ----------------------------------------------------------------------
# Engine / registry / real tree
# ----------------------------------------------------------------------
class TestDeepEngine:
    def test_deep_registry_is_complete(self):
        assert [cls.code for cls in DEEP_RULES] == [
            "DCL010", "DCL011", "DCL012", "DCL013",
        ]

    def test_list_rules_includes_deep(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DCL010", "DCL011", "DCL012", "DCL013"):
            assert code in out
        assert "(deep)" in out

    def test_select_deep_code_runs_only_that_rule(self, tmp_path, capsys):
        write_tree(tmp_path, TestTransitiveWallClock.FILES)
        status = main(
            [str(tmp_path), "--deep", "--select", "DCL010",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["rule_counts"] == {"DCL010": 1}

    def test_real_tree_is_deep_clean(self):
        report = lint_paths([str(SRC)], deep=True)
        assert report.violations == []
        assert report.parse_errors == []
        assert report.deep_stats is not None
        assert report.deep_stats["functions"] > 400
        stats = report.deep_stats["unresolved_calls"]
        assert stats["total"] > 0  # conservatism is visible, not silent
        assert report.suppression_warnings == []
        assert report.stale_suppressions == []

    def test_deep_json_runs_are_byte_identical(self):
        cmd = [
            sys.executable, "-m", "repro.devtools.lint",
            str(SRC), "--deep", "--format", "json",
        ]
        runs = [
            subprocess.run(
                cmd,
                capture_output=True,
                cwd=str(REPO_ROOT),
                env={
                    "PYTHONPATH": str(SRC),
                    "PATH": "/usr/bin:/bin",
                    # Different hash seeds must not change the report.
                    "PYTHONHASHSEED": seed,
                },
            )
            for seed in ("0", "424242")
        ]
        assert runs[0].returncode == 0, runs[0].stdout + runs[0].stderr
        assert runs[0].stdout == runs[1].stdout
        payload = json.loads(runs[0].stdout)
        assert payload["deep"]["unresolved_calls"]["total"] > 0
        assert payload["rule_counts"] == {}

    def test_cli_deep_subcommand(self):
        from repro.cli import main as cli_main

        assert cli_main(["lint", "--deep", str(SRC)]) == 0

    def test_cli_call_graph_subcommand(self, capsys):
        from repro.cli import main as cli_main

        status = cli_main(
            ["lint", "--call-graph", "mine_delta_clusters", str(SRC)]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "repro.core.mining.mine_delta_clusters" in out
        assert "repro.core.rng.resolve_rng [rng]" in out
