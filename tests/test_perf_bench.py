"""Bench harness: documents, baselines, and the regression gate.

Covers :mod:`repro.obs.perf.bench` (workload execution with an injected
clock, document serialization, tolerance parsing, baseline comparison),
the workload registry (:mod:`repro.obs.perf.workloads`), and the
``repro bench`` CLI front end -- including the acceptance criterion that
two runs of the smoke suite at the same seed produce byte-identical
``work`` sections and a passing compare.
"""

import json

import pytest

from repro.cli import main
from repro.obs.perf import bench
from repro.obs.perf.bench import (
    BENCH_SCHEMA,
    compare_documents,
    document_bytes,
    load_document,
    parse_tolerance,
    record_path,
    run_suite,
    run_workload,
    write_document,
)
from repro.obs.perf.workloads import (
    Workload,
    get_workload,
    iter_workloads,
    suite_names,
    workload_names,
)

pytestmark = pytest.mark.perf


def fake_clock():
    """Deterministic strictly-increasing stub clock."""
    state = {"t": 0.0}

    def tick():
        state["t"] += 0.5
        return state["t"]

    return tick


def make_document(suite="smoke", work=None, times=None, env=None):
    """Hand-built minimal document for comparison tests."""
    work = work if work is not None else {"wl": {"toggle_evals": 100}}
    times = times if times is not None else {"wl": 1.0}
    return {
        "schema": BENCH_SCHEMA,
        "suite": suite,
        "environment": env or {"python": "3.x"},
        "timing": {
            name: {"best_time_s": t, "times_s": [t], "repeats": 1}
            for name, t in times.items()
        },
        "work": work,
        "details": {},
    }


class TestRegistry:
    def test_builtin_suites_present(self):
        assert "smoke" in suite_names()
        smoke = workload_names("smoke")
        assert "smoke_floc_exact" in smoke
        assert "smoke_floc_fast" in smoke
        assert "smoke_mining" in smoke

    def test_iter_workloads_sorted_and_filtered(self):
        names = [w.name for w in iter_workloads("smoke")]
        assert names == sorted(names)
        assert all("smoke" in w.suites for w in iter_workloads("smoke"))

    def test_get_workload_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("no_such_workload")


class TestRunWorkload:
    def test_best_of_n_with_stub_clock(self):
        calls = []

        def runner(work):
            work.toggles += 3
            calls.append(1)
            return {"answer": 42}

        workload = Workload(
            name="stub", description="", suites=("test",), runner=runner
        )
        record = run_workload(workload, repeats=3, clock=fake_clock())
        assert len(calls) == 3
        # Stub clock: every repetition measures exactly 0.5s.
        assert record["times_s"] == [0.5, 0.5, 0.5]
        assert record["best_time_s"] == 0.5
        assert record["work"] == {
            **{k: 0 for k in record["work"]}, "toggles": 3,
        }
        assert record["details"] == {"answer": 42}

    def test_nondeterministic_workload_rejected(self):
        state = {"n": 0}

        def runner(work):
            state["n"] += 1
            work.toggles += state["n"]
            return {}

        workload = Workload(
            name="flaky", description="", suites=("test",), runner=runner
        )
        with pytest.raises(RuntimeError, match="not deterministic"):
            run_workload(workload, repeats=2, clock=fake_clock())

    def test_repeats_must_be_positive(self):
        workload = Workload(
            name="x", description="", suites=("test",),
            runner=lambda work: {},
        )
        with pytest.raises(ValueError):
            run_workload(workload, repeats=0, clock=fake_clock())


class TestDocuments:
    @pytest.fixture(scope="class")
    def smoke_docs(self):
        """Two smoke-suite runs -- the byte-identity acceptance check."""
        return (
            run_suite("smoke", repeats=1, clock=fake_clock()),
            run_suite("smoke", repeats=1, clock=fake_clock()),
        )

    def test_schema_and_sections(self, smoke_docs):
        doc, _ = smoke_docs
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["suite"] == "smoke"
        assert set(doc["timing"]) == set(doc["work"]) == set(doc["details"])
        for counters in doc["work"].values():
            assert all(isinstance(v, int) for v in counters.values())

    def test_work_sections_byte_identical_across_runs(self, smoke_docs):
        first, second = smoke_docs
        assert json.dumps(first["work"], sort_keys=True) == json.dumps(
            second["work"], sort_keys=True
        )
        assert first["details"] == second["details"]

    def test_compare_of_twin_runs_passes(self, smoke_docs):
        first, second = smoke_docs
        result = compare_documents(first, second)
        assert result.ok
        assert any("work counters match" in line for line in result.lines)

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="no workloads"):
            run_suite("no_such_suite", clock=fake_clock())

    def test_write_and_load_round_trip(self, tmp_path):
        doc = make_document()
        path = write_document(doc, tmp_path / "sub" / "BENCH_smoke.json")
        assert path.read_bytes() == document_bytes(doc)
        assert load_document(path) == doc

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        with pytest.raises(ValueError, match="unsupported bench schema"):
            load_document(path)
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_document(path)

    def test_record_path_is_content_addressed(self, tmp_path):
        doc = make_document()
        first = record_path(tmp_path, doc)
        assert first == record_path(tmp_path, doc)
        assert first.name.startswith("bench_smoke_")
        changed = make_document(work={"wl": {"toggle_evals": 101}})
        assert record_path(tmp_path, changed) != first


class TestParseTolerance:
    @pytest.mark.parametrize("text,expected", [
        ("20%", 0.2), ("0.2", 0.2), ("0", 0.0), ("150%", 1.5),
        ("none", None), ("inf", None), ("INFINITY", None), ("off", None),
        (None, None), (0.3, 0.3),
    ])
    def test_accepted_forms(self, text, expected):
        assert parse_tolerance(text) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_tolerance("-5%")


class TestCompareDocuments:
    def test_identical_documents_pass(self):
        doc = make_document()
        assert compare_documents(doc, doc).ok

    def test_work_drift_is_regression_in_both_directions(self):
        old = make_document(work={"wl": {"toggle_evals": 100}})
        for drifted in (99, 101):
            new = make_document(work={"wl": {"toggle_evals": drifted}})
            result = compare_documents(old, new)
            assert not result.ok
            [regression] = result.regressions
            assert "toggle_evals" in regression
            assert f"100 -> {drifted}" in regression
            assert result.render().count("REGRESSION") == 1

    def test_work_tolerance_allows_small_drift(self):
        old = make_document(work={"wl": {"toggle_evals": 100}})
        new = make_document(work={"wl": {"toggle_evals": 104}})
        assert compare_documents(old, new, tol_work=0.05).ok
        assert not compare_documents(old, new, tol_work=0.01).ok
        assert compare_documents(old, new, tol_work=None).ok

    def test_slowdown_beyond_budget_is_regression(self):
        old = make_document(times={"wl": 1.0})
        slow = make_document(times={"wl": 1.5})
        result = compare_documents(old, slow, tol_time=0.2)
        assert not result.ok
        assert "exceeds +20% budget" in result.regressions[0]
        assert compare_documents(old, slow, tol_time=0.6).ok
        assert compare_documents(old, slow, tol_time=None).ok

    def test_speedup_is_never_a_regression(self):
        old = make_document(times={"wl": 1.0})
        fast = make_document(times={"wl": 0.1})
        assert compare_documents(old, fast, tol_time=0.0).ok

    def test_removed_workload_is_regression_added_is_not(self):
        old = make_document(work={"a": {"toggles": 1}, "b": {"toggles": 2}})
        new = make_document(work={"a": {"toggles": 1}, "c": {"toggles": 3}})
        result = compare_documents(old, new)
        assert any("b: workload missing" in r for r in result.regressions)
        assert not any(r.startswith("c:") for r in result.regressions)
        assert any("c: new workload" in line for line in result.lines)

    def test_environment_diffs_are_informational(self):
        old = make_document(env={"python": "3.11"})
        new = make_document(env={"python": "3.12"})
        result = compare_documents(old, new)
        assert result.ok
        assert any("environment.python" in line for line in result.lines)


class TestBenchCli:
    def test_list_prints_registry(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "smoke_floc_fast" in out

    def test_list_unknown_suite_is_usage_error(self, capsys):
        assert main(["bench", "list", "--suite", "nope"]) == 2
        assert "no workloads" in capsys.readouterr().err

    def test_run_twice_and_compare(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = [
            "bench", "run", "--suite", "smoke", "--repeats", "1",
            "--results-dir", str(tmp_path / "results"),
        ]
        assert main(args + ["--out", str(tmp_path / "first.json")]) == 0
        assert main(args + ["--out", str(tmp_path / "second.json")]) == 0
        capsys.readouterr()

        first = load_document(tmp_path / "first.json")
        second = load_document(tmp_path / "second.json")
        assert json.dumps(first["work"], sort_keys=True) == json.dumps(
            second["work"], sort_keys=True
        )
        # Per-run records landed content-addressed under --results-dir.
        records = sorted((tmp_path / "results").glob("bench_smoke_*.json"))
        assert records

        # Same-seed runs must pass the gate even with timing ungated
        # only on the work side.
        assert main([
            "bench", "compare",
            str(tmp_path / "first.json"), str(tmp_path / "second.json"),
            "--tol-time", "none",
        ]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_detects_counter_drift(self, tmp_path, capsys):
        old = make_document(work={"wl": {"toggle_evals": 100}})
        new = make_document(work={"wl": {"toggle_evals": 90}})
        old_path = write_document(old, tmp_path / "old.json")
        new_path = write_document(new, tmp_path / "new.json")
        assert main([
            "bench", "compare", str(old_path), str(new_path),
            "--tol-time", "none",
        ]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err

    def test_compare_missing_file_is_usage_error(self, tmp_path, capsys):
        doc_path = write_document(make_document(), tmp_path / "ok.json")
        assert main([
            "bench", "compare", str(doc_path),
            str(tmp_path / "missing.json"),
        ]) == 2
        assert capsys.readouterr().err

    def test_bad_tolerance_is_usage_error(self, tmp_path, capsys):
        path = write_document(make_document(), tmp_path / "doc.json")
        assert main([
            "bench", "compare", str(path), str(path),
            "--tol-work=-3%",
        ]) == 2
