"""Unit tests for the Erlang volume distribution (Section 6.2)."""

import numpy as np
import pytest

from repro.data.distributions import erlang, erlang_volumes, variance_level_to_shape


class TestErlang:
    def test_moments(self):
        rng = np.random.default_rng(0)
        shape, rate = 4, 0.5
        samples = erlang(shape, rate, 200_000, rng)
        assert samples.mean() == pytest.approx(shape / rate, rel=0.02)
        assert samples.var() == pytest.approx(shape / rate ** 2, rel=0.05)

    def test_positive(self):
        rng = np.random.default_rng(1)
        assert (erlang(2, 1.0, 1000, rng) > 0).all()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="shape"):
            erlang(0, 1.0, 10, rng)
        with pytest.raises(ValueError, match="rate"):
            erlang(1, 0.0, 10, rng)


class TestVarianceLevels:
    def test_level_zero_constant(self):
        rng = np.random.default_rng(2)
        volumes = erlang_volumes(300.0, 0, 50, rng)
        assert (volumes == 300.0).all()

    def test_higher_level_more_spread(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        narrow = erlang_volumes(300.0, 1, 5000, rng_a)
        wide = erlang_volumes(300.0, 5, 5000, rng_b)
        assert wide.std() > 2 * narrow.std()

    def test_mean_preserved_across_levels(self):
        rng = np.random.default_rng(4)
        for level in (1, 2, 3, 4):
            volumes = erlang_volumes(300.0, level, 100_000, rng)
            assert volumes.mean() == pytest.approx(300.0, rel=0.05)

    def test_minimum_floor(self):
        rng = np.random.default_rng(5)
        volumes = erlang_volumes(10.0, 5, 10_000, rng, minimum=4.0)
        assert volumes.min() >= 4.0

    def test_shape_mapping(self):
        assert variance_level_to_shape(5) == 1
        assert variance_level_to_shape(1) == 25
        with pytest.raises(ValueError, match="constant"):
            variance_level_to_shape(0)
        with pytest.raises(ValueError, match="<= 5"):
            variance_level_to_shape(6)

    def test_validation(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ValueError, match="mean"):
            erlang_volumes(0.0, 1, 10, rng)
        with pytest.raises(ValueError, match="size"):
            erlang_volumes(10.0, 1, -1, rng)
