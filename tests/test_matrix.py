"""Unit tests for the DataMatrix substrate."""

import numpy as np
import pytest

from repro.core.matrix import DataMatrix

NAN = float("nan")


class TestConstruction:
    def test_basic_shape(self):
        m = DataMatrix([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert m.shape == (3, 2)
        assert m.n_rows == 3
        assert m.n_cols == 2

    def test_copies_input(self):
        buffer = np.ones((2, 2))
        m = DataMatrix(buffer)
        buffer[0, 0] = 99.0
        assert m.values[0, 0] == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            DataMatrix([1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            DataMatrix(np.empty((0, 3)))

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            DataMatrix([[1.0, float("inf")]])

    def test_nan_allowed_as_missing(self):
        m = DataMatrix([[1.0, NAN]])
        assert m.n_specified == 1

    def test_labels_length_checked(self):
        with pytest.raises(ValueError, match="row_labels"):
            DataMatrix([[1.0, 2.0]], row_labels=["a", "b"])
        with pytest.raises(ValueError, match="col_labels"):
            DataMatrix([[1.0, 2.0]], col_labels=["x"])

    def test_labels_stored_as_strings(self):
        m = DataMatrix([[1.0, 2.0]], row_labels=[7], col_labels=["a", "b"])
        assert m.row_labels == ("7",)
        assert m.col_labels == ("a", "b")

    def test_integer_input_coerced_to_float(self):
        m = DataMatrix([[1, 2], [3, 4]])
        assert m.values.dtype == np.float64


class TestMaskAndDensity:
    def test_mask_marks_specified(self):
        m = DataMatrix([[1.0, NAN], [NAN, 4.0]])
        assert m.mask.tolist() == [[True, False], [False, True]]

    def test_density(self):
        m = DataMatrix([[1.0, NAN], [NAN, 4.0]])
        assert m.density == pytest.approx(0.5)

    def test_full_density(self):
        m = DataMatrix([[1.0, 2.0]])
        assert m.density == 1.0
        assert m.n_specified == 2


class TestSubmatrixAndOccupancy:
    def setup_method(self):
        self.m = DataMatrix(
            [[1.0, 2.0, 3.0], [NAN, 5.0, 6.0], [7.0, NAN, NAN]]
        )

    def test_submatrix_values(self):
        sub = self.m.submatrix([0, 2], [0, 2])
        assert sub[0, 0] == 1.0
        assert sub[0, 1] == 3.0
        assert np.isnan(sub[1, 1])

    def test_submatrix_is_copy(self):
        sub = self.m.submatrix([0], [0])
        sub[0, 0] = 42.0
        assert self.m.values[0, 0] == 1.0

    def test_row_occupancy(self):
        occ = self.m.row_occupancy([0, 1, 2], [0, 1, 2])
        assert occ.tolist() == [1.0, pytest.approx(2 / 3), pytest.approx(1 / 3)]

    def test_col_occupancy(self):
        occ = self.m.col_occupancy([0, 1, 2], [0, 1, 2])
        assert occ.tolist() == [
            pytest.approx(2 / 3),
            pytest.approx(2 / 3),
            pytest.approx(2 / 3),
        ]

    def test_occupancy_empty_axis(self):
        assert self.m.row_occupancy([0], []).tolist() == [1.0]
        assert self.m.col_occupancy([], [0]).tolist() == [1.0]


class TestTransforms:
    def test_log_transform_turns_products_into_shifts(self):
        # Amplification coherence: row2 = 2 * row1 becomes a shift of log 2.
        m = DataMatrix([[1.0, 2.0, 4.0], [2.0, 4.0, 8.0]])
        logged = m.log_transform()
        diff = logged.values[1] - logged.values[0]
        assert np.allclose(diff, np.log(2.0))

    def test_log_transform_preserves_missing(self):
        m = DataMatrix([[1.0, NAN]])
        logged = m.log_transform()
        assert np.isnan(logged.values[0, 1])

    def test_log_transform_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            DataMatrix([[0.0, 1.0]]).log_transform()

    def test_log_transform_offset(self):
        m = DataMatrix([[0.0, 1.0]])
        logged = m.log_transform(offset=1.0)
        assert logged.values[0, 0] == pytest.approx(0.0)

    def test_with_mask_knocks_out_entries(self):
        m = DataMatrix([[1.0, 2.0], [3.0, 4.0]])
        masked = m.with_mask(np.array([[True, False], [True, True]]))
        assert masked.n_specified == 3
        assert np.isnan(masked.values[0, 1])

    def test_with_mask_shape_checked(self):
        m = DataMatrix([[1.0, 2.0]])
        with pytest.raises(ValueError, match="shape"):
            m.with_mask(np.array([True]))

    def test_drop_missing_rows(self):
        m = DataMatrix([[1.0, NAN], [3.0, 4.0]])
        kept = m.drop_missing_rows(min_fraction=0.9)
        assert kept.shape == (1, 2)
        assert kept.values[0, 0] == 3.0

    def test_drop_missing_rows_all_filtered(self):
        m = DataMatrix([[NAN, NAN]])
        with pytest.raises(ValueError, match="survive"):
            m.drop_missing_rows(0.5)

    def test_drop_missing_rows_keeps_labels(self):
        m = DataMatrix(
            [[1.0, NAN], [3.0, 4.0]], row_labels=["a", "b"], col_labels=["x", "y"]
        )
        kept = m.drop_missing_rows(0.9)
        assert kept.row_labels == ("b",)
        assert kept.col_labels == ("x", "y")


class TestEquality:
    def test_equal_matrices(self):
        a = DataMatrix([[1.0, NAN]])
        b = DataMatrix([[1.0, NAN]])
        assert a == b

    def test_different_values(self):
        assert DataMatrix([[1.0]]) != DataMatrix([[2.0]])

    def test_different_shapes(self):
        assert DataMatrix([[1.0]]) != DataMatrix([[1.0, 2.0]])

    def test_missing_vs_specified(self):
        assert DataMatrix([[NAN]]) != DataMatrix([[1.0]])

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(DataMatrix([[1.0]]))

    def test_repr_mentions_shape(self):
        assert "(2, 1)" in repr(DataMatrix([[1.0], [2.0]]))
