"""Work-counter cost model: deterministic, inert, and conserved.

The acceptance contract for :mod:`repro.obs.perf.counters`:

* **parity** -- a counted run produces bit-identical clusterings,
  histories and action counts to an uncounted run (counting never draws
  from the RNG or branches the algorithm);
* **determinism** -- two counted runs at the same seed produce equal
  counters (no wall-clock, no machine dependence);
* **conservation** -- counters aggregate without double-counting across
  the shared-accumulator path (``mine_delta_clusters``), the per-object
  path (supervised restarts), ``perf.*`` metric mirroring, and the
  checkpoint round-trip.
"""

import numpy as np
import pytest

from repro.core.floc import floc
from repro.core.matrix import DataMatrix
from repro.core.mining import mine_delta_clusters, pool_mining_results, run_restart
from repro.obs import MetricsRegistry, Tracer, WorkCounters, WORK_COUNTER_FIELDS

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(2)
    values = rng.uniform(0, 100, size=(40, 12))
    values[:12, :5] = (
        50.0
        + rng.uniform(-15, 15, 12)[:, None]
        + rng.uniform(-15, 15, 5)[None, :]
    )
    return DataMatrix(values)


class TestWorkCounters:
    def test_starts_at_zero(self):
        work = WorkCounters()
        assert work.total() == 0
        assert work.as_dict() == {name: 0 for name in WORK_COUNTER_FIELDS}

    def test_keyword_init_and_unknown_key(self):
        work = WorkCounters(residue_evals=3, sweeps=2)
        assert work.residue_evals == 3
        assert work.sweeps == 2
        assert work.total() == 5
        with pytest.raises(ValueError, match="wall_clock"):
            WorkCounters(wall_clock=1)

    def test_as_dict_preserves_field_order(self):
        assert tuple(WorkCounters().as_dict()) == WORK_COUNTER_FIELDS

    def test_merge_and_copy(self):
        a = WorkCounters(toggles=2, cells_scanned=10)
        b = WorkCounters(toggles=1, sweeps=4)
        snapshot = a.copy()
        assert a.merge(b) is a
        assert a.toggles == 3 and a.sweeps == 4 and a.cells_scanned == 10
        # copy() was unaffected by the merge.
        assert snapshot.toggles == 2 and snapshot.sweeps == 0

    def test_equality_and_iteration(self):
        a = WorkCounters(batch_evals=7)
        b = WorkCounters(batch_evals=7)
        assert a == b and hash(a) == hash(b)
        assert dict(a) == a.as_dict()
        assert "batch_evals=7" in repr(a)


class TestParity:
    """Counting must not perturb the algorithm in any observable way."""

    @pytest.mark.parametrize("gain_mode", ["exact", "fast"])
    def test_counted_run_identical_to_uncounted(self, matrix, gain_mode):
        kwargs = dict(
            k=3, residue_target=2.0, gain_mode=gain_mode,
            reseed_rounds=2, max_iterations=10, rng=7,
        )
        plain = floc(matrix, **kwargs)
        counted = floc(matrix, work=WorkCounters(), **kwargs)
        assert plain.history == counted.history
        assert plain.n_actions == counted.n_actions
        assert plain.n_iterations == counted.n_iterations
        assert [
            (c.rows, c.cols) for c in plain.clustering
        ] == [(c.rows, c.cols) for c in counted.clustering]

    def test_uncounted_run_has_no_work(self, matrix):
        result = floc(matrix, k=3, residue_target=2.0, rng=7,
                      max_iterations=5)
        assert result.work is None

    def test_counted_runs_are_deterministic(self, matrix):
        totals = []
        for __ in range(2):
            work = WorkCounters()
            floc(matrix, k=3, residue_target=2.0, gain_mode="fast",
                 reseed_rounds=2, max_iterations=10, rng=7, work=work)
            totals.append(work.as_dict())
        assert totals[0] == totals[1]
        assert sum(totals[0].values()) > 0

    def test_expected_counters_move(self, matrix):
        exact = WorkCounters()
        floc(matrix, k=3, residue_target=2.0, gain_mode="exact",
             max_iterations=8, rng=7, work=exact)
        assert exact.residue_evals > 0
        assert exact.cells_scanned > 0
        assert exact.toggle_evals > 0
        assert exact.sweeps > 0

        fast = WorkCounters()
        floc(matrix, k=3, residue_target=2.0, gain_mode="fast",
             max_iterations=8, rng=7, work=fast)
        assert fast.batch_evals > 0
        # The fast path amortizes: k toggle evaluations per batch call.
        assert fast.toggle_evals >= 3 * fast.batch_evals


class TestMetricsMirroring:
    def test_perf_metrics_equal_work_deltas(self, matrix):
        work = WorkCounters()
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        floc(matrix, k=3, residue_target=2.0, gain_mode="fast",
             max_iterations=8, rng=7, tracer=tracer, work=work)
        tracer.close()
        counters = metrics.snapshot()["counters"]
        for name, value in work:
            if value:
                assert counters[f"perf.{name}"] == value
            else:
                assert f"perf.{name}" not in counters

    def test_shared_accumulator_mirrors_per_run_deltas(self, matrix):
        # The same WorkCounters object across two runs: each run must
        # inc perf.* by its own delta, so the registry total equals the
        # accumulated counters -- never double-counts the carry-over.
        work = WorkCounters()
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        for seed in (7, 8):
            floc(matrix, k=3, residue_target=2.0, gain_mode="fast",
                 max_iterations=8, rng=seed, tracer=tracer, work=work)
        tracer.close()
        counters = metrics.snapshot()["counters"]
        for name, value in work:
            assert counters.get(f"perf.{name}", 0) == value


class TestAggregation:
    def test_mining_shares_one_accumulator(self, matrix):
        work = WorkCounters()
        result = mine_delta_clusters(
            matrix, 2.0, k=3, n_restarts=3, min_volume=9,
            reseed_rounds=2, rng=0, work=work,
        )
        assert work.total() > 0
        # Pooling merges the shared object exactly once (identity
        # dedup), returning an equal but fresh counter set.
        assert result.work is not None
        assert result.work == work
        assert result.work is not work

    def test_pooling_sums_distinct_per_run_objects(self, matrix):
        runs = [
            run_restart(
                matrix, restart, residue_target=2.0, root_seed=11,
                k=3, reseed_rounds=2, max_iterations=8,
                work=WorkCounters(),
            )
            for restart in range(3)
        ]
        pooled = pool_mining_results(
            matrix, runs, residue_target=2.0, min_volume=9
        )
        assert pooled.work is not None
        expected = WorkCounters()
        for run in runs:
            expected.merge(run.work)
        assert pooled.work == expected

    def test_pooling_without_counting_yields_none(self, matrix):
        runs = [
            run_restart(
                matrix, restart, residue_target=2.0, root_seed=11,
                k=3, reseed_rounds=2, max_iterations=8,
            )
            for restart in range(2)
        ]
        pooled = pool_mining_results(
            matrix, runs, residue_target=2.0, min_volume=9
        )
        assert pooled.work is None


class TestCheckpointRoundTrip:
    def test_work_survives_record_round_trip(self, matrix):
        from repro.runtime.checkpoint import record_to_result, result_to_record

        work = WorkCounters()
        result = run_restart(
            matrix, 0, residue_target=2.0, root_seed=11, k=3,
            reseed_rounds=2, max_iterations=8, work=work,
        )
        record = result_to_record(0, result)
        assert record["work"] == work.as_dict()
        restored = record_to_result(record, matrix)
        assert restored.work == work
        assert restored.work is not work

    def test_uncounted_record_omits_work(self, matrix):
        from repro.runtime.checkpoint import record_to_result, result_to_record

        result = run_restart(
            matrix, 0, residue_target=2.0, root_seed=11, k=3,
            reseed_rounds=2, max_iterations=8,
        )
        record = result_to_record(0, result)
        assert "work" not in record
        assert record_to_result(record, matrix).work is None
