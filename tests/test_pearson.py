"""Unit tests for the Pearson-R baseline and its documented failure mode."""

import numpy as np
import pytest

from repro.baselines.pearson import correlation_groups, pairwise_pearson, pearson_r
from repro.core.matrix import DataMatrix

NAN = float("nan")


class TestPearsonR:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_shift_invariant(self):
        a = np.array([1.0, 5.0, 2.0, 8.0])
        assert pearson_r(a, a + 100.0) == pytest.approx(1.0)

    def test_constant_vector_zero(self):
        assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0

    def test_missing_handled_jointly(self):
        a = [1.0, 2.0, NAN, 4.0]
        b = [2.0, 4.0, 6.0, NAN]
        # Joint support = indices 0, 1: perfectly correlated.
        assert pearson_r(a, b) == pytest.approx(1.0)

    def test_too_few_joint_entries(self):
        assert pearson_r([1.0, NAN], [NAN, 2.0]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            pearson_r([1.0], [1.0, 2.0])

    def test_paper_genre_example(self):
        """Section 3's motivating failure: strong within-genre coherence,
        near-zero global Pearson R."""
        viewer1 = np.array([8.0, 7.0, 9.0, 2.0, 2.0, 3.0])
        viewer2 = np.array([2.0, 1.0, 3.0, 8.0, 8.0, 9.0])
        global_r = pearson_r(viewer1, viewer2)
        assert abs(global_r) < 0.999  # far from +1 despite local coherence
        assert global_r < 0  # actually anti-correlated globally
        # Within each genre the viewers agree perfectly (offset only).
        assert pearson_r(viewer1[:3], viewer2[:3]) == pytest.approx(1.0)
        assert pearson_r(viewer1[3:], viewer2[3:]) == pytest.approx(1.0)


class TestPairwise:
    def test_symmetric_with_unit_diagonal(self):
        rng = np.random.default_rng(0)
        matrix = DataMatrix(rng.normal(size=(5, 8)))
        r = pairwise_pearson(matrix)
        assert np.allclose(r, r.T)
        assert np.allclose(np.diag(r), 1.0)

    def test_values_in_range(self):
        rng = np.random.default_rng(1)
        r = pairwise_pearson(rng.normal(size=(6, 10)))
        assert (r <= 1.0 + 1e-9).all()
        assert (r >= -1.0 - 1e-9).all()


class TestCorrelationGroups:
    def test_groups_partition_rows(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(10, 6))
        groups = correlation_groups(matrix, threshold=0.99)
        flattened = sorted(i for group in groups for i in group)
        assert flattened == list(range(10))

    def test_shifted_rows_grouped(self):
        base = np.array([1.0, 5.0, 2.0, 8.0, 3.0])
        matrix = np.vstack([base, base + 10, base - 3, -base])
        groups = correlation_groups(matrix, threshold=0.95)
        assert tuple(sorted(groups[0])) == (0, 1, 2)

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            correlation_groups(np.ones((2, 2)), threshold=2.0)
