"""Unit tests for the graph substrate (union-find, Bron-Kerbosch)."""

import pytest

from repro.subspace.graph import Graph, UnionFind, maximal_cliques


class TestUnionFind:
    def test_singletons(self):
        forest = UnionFind()
        forest.add("a")
        forest.add("b")
        assert forest.find("a") != forest.find("b")
        assert len(forest) == 2

    def test_union_merges(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(2, 3)
        assert forest.find(1) == forest.find(3)

    def test_groups(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(3, 4)
        forest.add(5)
        groups = sorted(sorted(g) for g in forest.groups())
        assert groups == [[1, 2], [3, 4], [5]]

    def test_find_inserts_new(self):
        forest = UnionFind()
        assert forest.find("x") == "x"
        assert "x" in forest

    def test_idempotent_union(self):
        forest = UnionFind()
        forest.union(1, 2)
        forest.union(1, 2)
        assert len(forest.groups()) == 1


class TestGraph:
    def test_add_edge_creates_vertices(self):
        g = Graph()
        g.add_edge("a", "b")
        assert g.vertices == {"a", "b"}
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")

    def test_no_self_loops(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_edge_count(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        g.add_edge(1, 2)  # duplicate
        assert g.n_edges() == 2

    def test_neighbors(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(1, 3)
        assert g.neighbors(1) == {2, 3}
        assert g.neighbors(2) == {1}

    def test_isolated_vertex(self):
        g = Graph()
        g.add_vertex("solo")
        assert g.neighbors("solo") == frozenset()
        assert len(g) == 1


class TestMaximalCliques:
    def build(self, edges, vertices=()):
        g = Graph()
        for v in vertices:
            g.add_vertex(v)
        for a, b in edges:
            g.add_edge(a, b)
        return g

    def test_triangle(self):
        g = self.build([(1, 2), (2, 3), (1, 3)])
        assert maximal_cliques(g) == [frozenset({1, 2, 3})]

    def test_triangle_plus_pendant(self):
        g = self.build([(1, 2), (2, 3), (1, 3), (3, 4)])
        cliques = set(maximal_cliques(g))
        assert cliques == {frozenset({1, 2, 3}), frozenset({3, 4})}

    def test_min_size_filter(self):
        g = self.build([(1, 2), (2, 3), (1, 3), (3, 4)])
        cliques = maximal_cliques(g, min_size=3)
        assert cliques == [frozenset({1, 2, 3})]

    def test_figure7_shape(self):
        """The paper's Figure 7(b): conditions 2I, 2D(=1D), 2B form a
        clique; implying a delta-cluster on those three conditions."""
        # Vertices: 1I, 1D, 2B plus a couple of stray edges.
        g = self.build([
            ("1I", "1D"), ("1I", "2B"), ("1D", "2B"),  # the clique
            ("1B", "2I"),
        ])
        cliques = set(maximal_cliques(g, min_size=3))
        assert frozenset({"1I", "1D", "2B"}) in cliques

    def test_disconnected_components(self):
        g = self.build([(1, 2), (3, 4)])
        assert set(maximal_cliques(g)) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_complete_graph(self):
        vertices = list(range(6))
        edges = [(a, b) for a in vertices for b in vertices if a < b]
        g = self.build(edges)
        assert maximal_cliques(g) == [frozenset(vertices)]

    def test_empty_graph(self):
        assert maximal_cliques(Graph()) == []

    def test_isolated_vertices_are_cliques(self):
        g = self.build([], vertices=["a", "b"])
        assert set(maximal_cliques(g)) == {frozenset({"a"}), frozenset({"b"})}

    def test_min_size_validated(self):
        with pytest.raises(ValueError, match="min_size"):
            maximal_cliques(Graph(), min_size=0)
