"""Edge cases and regression guards across modules."""

import numpy as np
import pytest

from repro import (
    Constraints,
    DataMatrix,
    DeltaCluster,
    floc,
    generate_embedded,
)
from repro.core.clustering import Clustering
from repro.core.floc import GAIN_MODES
from repro.core.ordering import ORDERINGS
from repro.eval.experiment import ExperimentConfig, run_trial

NAN = float("nan")


class TestTinyMatrices:
    def test_floc_on_2x2(self):
        matrix = DataMatrix([[1.0, 2.0], [3.0, 4.0]])
        result = floc(matrix, 1, p=1.0, rng=0)
        assert len(result.clustering) == 1

    def test_floc_on_single_column_matrix_rejected_by_floor(self):
        matrix = DataMatrix([[1.0], [2.0], [3.0]])
        with pytest.raises(ValueError, match="too small"):
            floc(matrix, 1, p=0.5, rng=0)

    def test_single_cluster_whole_matrix_seed(self):
        rng = np.random.default_rng(0)
        matrix = DataMatrix(rng.normal(size=(6, 4)))
        result = floc(matrix, 1, p=1.0, rng=1, max_iterations=5)
        assert result.n_iterations >= 1

    def test_k_larger_than_matrix_rows(self):
        rng = np.random.default_rng(1)
        matrix = DataMatrix(rng.normal(size=(5, 5)))
        result = floc(matrix, 8, p=0.5, rng=2, max_iterations=5)
        assert len(result.clustering) == 8


class TestHighlyMissingData:
    def test_floc_survives_80_percent_missing(self):
        dataset = generate_embedded(
            60, 20, 1, cluster_shape=(10, 8), missing_fraction=0.8, rng=3
        )
        result = floc(dataset.matrix, 2, p=0.4, rng=4, max_iterations=10)
        assert len(result.clustering) == 2

    def test_cluster_of_fully_missing_region(self):
        values = np.full((6, 6), NAN)
        values[3:, 3:] = 1.0
        matrix = DataMatrix(values)
        cluster = DeltaCluster((0, 1), (0, 1))  # entirely missing block
        assert cluster.volume(matrix) == 0
        assert cluster.residue(matrix) == 0.0
        assert cluster.diameter(matrix) == 0.0

    def test_clustering_statistics_with_missing(self):
        values = np.full((4, 4), NAN)
        values[0, 0] = 1.0
        matrix = DataMatrix(values)
        clustering = Clustering(matrix, [DeltaCluster((0, 1), (0, 1))])
        assert clustering.total_volume() == 1
        assert clustering.average_residue() == 0.0


class TestConstantData:
    def test_constant_matrix_residue_zero(self):
        matrix = DataMatrix(np.full((8, 6), 42.0))
        cluster = DeltaCluster(range(8), range(6))
        assert cluster.residue(matrix) == 0.0

    def test_floc_on_constant_matrix(self):
        matrix = DataMatrix(np.full((10, 8), 1.0))
        result = floc(matrix, 2, p=0.4, rng=5, max_iterations=5)
        assert result.average_residue == 0.0


class TestParameterMatrix:
    """Every (ordering, gain_mode, target?) combination must run."""

    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("gain_mode", GAIN_MODES)
    @pytest.mark.parametrize("target", [None, 5.0])
    def test_combination_runs(self, ordering, gain_mode, target):
        dataset = generate_embedded(
            40, 12, 1, cluster_shape=(8, 6), noise=1.0, rng=6
        )
        result = floc(
            dataset.matrix, 2, p=0.3,
            ordering=ordering, gain_mode=gain_mode, residue_target=target,
            rng=7, max_iterations=8,
        )
        assert len(result.clustering) == 2
        assert result.n_iterations <= 8


class TestExperimentConfigExtras:
    def test_residue_target_factor_scales_to_embedded(self):
        config = ExperimentConfig(
            n_rows=60, n_cols=15, n_embedded=2, embedded_shape=(8, 6),
            noise=1.0, k=2, p=0.3, residue_target_factor=2.0,
            reseed_rounds=2, ordering="greedy", gain_mode="fast",
            max_iterations=15,
        )
        result = run_trial(config, rng=0)
        assert result.n_iterations >= 1
        assert 0.0 <= result.recall <= 1.0

    def test_explicit_target_takes_precedence(self):
        config = ExperimentConfig(
            n_rows=50, n_cols=12, n_embedded=1, embedded_shape=(8, 6),
            noise=1.0, k=2, p=0.3,
            residue_target=3.0, residue_target_factor=99.0,
            max_iterations=10,
        )
        result = run_trial(config, rng=1)
        assert result.n_iterations >= 1

    def test_mandatory_moves_forwarded(self):
        config = ExperimentConfig(
            n_rows=40, n_cols=10, n_embedded=1, embedded_shape=(6, 5),
            noise=1.0, k=2, p=0.3, mandatory_moves=True, max_iterations=6,
        )
        result = run_trial(config, rng=2)
        assert result.n_actions > 0


class TestExtremeValues:
    def test_large_magnitudes(self):
        rng = np.random.default_rng(8)
        matrix = DataMatrix(rng.uniform(1e9, 2e9, size=(20, 8)))
        result = floc(matrix, 1, p=0.4, rng=9, max_iterations=5)
        assert np.isfinite(result.average_residue)

    def test_negative_values(self):
        rng = np.random.default_rng(10)
        matrix = DataMatrix(rng.uniform(-500, -100, size=(20, 8)))
        result = floc(matrix, 1, p=0.4, rng=11, max_iterations=5)
        assert result.average_residue >= 0.0

    def test_mixed_scale_columns(self):
        rng = np.random.default_rng(12)
        values = rng.normal(size=(20, 6))
        values[:, 0] *= 1e6
        matrix = DataMatrix(values)
        cluster = DeltaCluster(range(20), range(6))
        assert np.isfinite(cluster.residue(matrix))


class TestOverlappingPlantedColumns:
    def test_clusters_sharing_columns_recovered(self):
        # Planted clusters share columns heavily (rows are disjoint by
        # construction); overlap-aware mining must still separate them.
        rng = np.random.default_rng(13)
        values = rng.uniform(0, 600, size=(120, 20))
        shared_cols = np.arange(12)
        for block, rows in enumerate((range(0, 30), range(30, 60))):
            rows = np.array(list(rows))
            values[np.ix_(rows, shared_cols)] = (
                100.0 * (block + 1)
                + rng.uniform(-50, 50, size=rows.size)[:, None]
                + rng.uniform(-50, 50, size=shared_cols.size)[None, :]
            )
        matrix = DataMatrix(values)
        result = floc(
            matrix, 4, p=0.3, rng=14, residue_target=1.0,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=8, gain_mode="fast", ordering="greedy",
        )
        hits = 0
        for rows in (set(range(0, 30)), set(range(30, 60))):
            for cluster in result.clustering:
                if len(set(cluster.rows) & rows) >= 25 and cluster.n_cols >= 10:
                    hits += 1
                    break
        assert hits == 2
