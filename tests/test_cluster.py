"""Unit tests for DeltaCluster (Definitions 3.1-3.2, Figure 3)."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.matrix import DataMatrix

NAN = float("nan")


def figure3a_matrix() -> DataMatrix:
    """The sparse 3x4 submatrix of Figure 3(a) -- NOT a 0.6-cluster."""
    return DataMatrix(
        [
            [1.0, NAN, 3.0, NAN],
            [NAN, 4.0, NAN, 5.0],
            [NAN, 3.0, 4.0, NAN],
        ]
    )


def figure3b_matrix() -> DataMatrix:
    """The denser 3x4 submatrix of Figure 3(b) -- a 0.6-cluster."""
    return DataMatrix(
        [
            [1.0, NAN, 3.0, 3.0],
            [3.0, 4.0, 5.0, NAN],
            [NAN, 3.0, 4.0, 4.0],
        ]
    )


class TestFigure3Occupancy:
    """The paper's alpha = 0.6 worked example."""

    def test_figure3a_violates_alpha(self):
        cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3))
        assert not cluster.occupancy_ok(figure3a_matrix(), alpha=0.6)

    def test_figure3b_satisfies_alpha(self):
        cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3))
        assert cluster.occupancy_ok(figure3b_matrix(), alpha=0.6)

    def test_alpha_zero_always_passes(self):
        cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3))
        assert cluster.occupancy_ok(figure3a_matrix(), alpha=0.0)

    def test_alpha_validation(self):
        cluster = DeltaCluster(rows=(0,), cols=(0,))
        with pytest.raises(ValueError, match="alpha"):
            cluster.occupancy_ok(figure3a_matrix(), alpha=1.5)


class TestStructure:
    def test_indices_sorted_and_deduped(self):
        cluster = DeltaCluster(rows=(3, 1, 3), cols=(2, 0))
        assert cluster.rows == (1, 3)
        assert cluster.cols == (0, 2)

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            DeltaCluster(rows=(-1,), cols=(0,))

    def test_empty_cluster(self):
        cluster = DeltaCluster(rows=(), cols=(0, 1))
        assert cluster.is_empty
        assert cluster.n_rows == 0

    def test_equality_and_hash(self):
        a = DeltaCluster((0, 1), (2,))
        b = DeltaCluster((1, 0), (2,))
        assert a == b
        assert hash(a) == hash(b)
        assert a != DeltaCluster((0,), (2,))

    def test_out_of_range_detected_on_evaluation(self):
        matrix = DataMatrix([[1.0, 2.0]])
        cluster = DeltaCluster(rows=(5,), cols=(0,))
        with pytest.raises(IndexError):
            cluster.volume(matrix)


class TestVolume:
    def test_fully_specified(self):
        matrix = DataMatrix(np.ones((4, 5)))
        cluster = DeltaCluster(rows=(0, 1), cols=(0, 1, 2))
        assert cluster.volume(matrix) == 6

    def test_missing_reduce_volume(self):
        matrix = figure3b_matrix()
        cluster = DeltaCluster(rows=(0, 1, 2), cols=(0, 1, 2, 3))
        assert cluster.volume(matrix) == 9  # 12 cells, 3 missing

    def test_empty_cluster_volume_zero(self):
        matrix = DataMatrix([[1.0]])
        assert DeltaCluster((), (0,)).volume(matrix) == 0


class TestResidue:
    def test_perfect_cluster(self):
        rows = np.array([0.0, 5.0, -2.0])
        cols = np.array([10.0, 20.0, 30.0, 40.0])
        matrix = DataMatrix(rows[:, None] + cols[None, :])
        cluster = DeltaCluster((0, 1, 2), (0, 1, 2, 3))
        assert cluster.residue(matrix) == pytest.approx(0.0, abs=1e-9)

    def test_empty_cluster_residue_zero(self):
        matrix = DataMatrix([[1.0]])
        assert DeltaCluster((), ()).residue(matrix) == 0.0

    def test_residues_shape(self):
        matrix = DataMatrix(np.arange(12, dtype=float).reshape(3, 4))
        cluster = DeltaCluster((0, 2), (1, 3))
        assert cluster.residues(matrix).shape == (2, 2)


class TestDiameter:
    def test_single_point_zero(self):
        matrix = DataMatrix([[1.0, 2.0], [5.0, 9.0]])
        cluster = DeltaCluster((0,), (0, 1))
        assert cluster.diameter(matrix) == 0.0

    def test_two_points(self):
        matrix = DataMatrix([[0.0, 0.0], [3.0, 4.0]])
        cluster = DeltaCluster((0, 1), (0, 1))
        assert cluster.diameter(matrix) == pytest.approx(5.0)

    def test_missing_dimension_ignored(self):
        matrix = DataMatrix([[0.0, NAN], [3.0, NAN]])
        cluster = DeltaCluster((0, 1), (0, 1))
        assert cluster.diameter(matrix) == pytest.approx(3.0)

    def test_empty_zero(self):
        matrix = DataMatrix([[1.0]])
        assert DeltaCluster((), ()).diameter(matrix) == 0.0


class TestOverlap:
    def test_no_overlap(self):
        a = DeltaCluster((0, 1), (0, 1))
        b = DeltaCluster((2, 3), (0, 1))
        assert a.overlap_entries(b) == 0
        assert a.overlap_fraction(b) == 0.0

    def test_partial_overlap(self):
        a = DeltaCluster((0, 1), (0, 1))
        b = DeltaCluster((1, 2), (1, 2))
        assert a.overlap_entries(b) == 1
        assert a.overlap_fraction(b) == pytest.approx(0.25)

    def test_containment_gives_full_fraction(self):
        small = DeltaCluster((0,), (0, 1))
        big = DeltaCluster((0, 1, 2), (0, 1, 2))
        assert small.overlap_fraction(big) == pytest.approx(1.0)

    def test_symmetry(self):
        a = DeltaCluster((0, 1, 2), (0, 1))
        b = DeltaCluster((1, 2), (1, 2, 3))
        assert a.overlap_fraction(b) == b.overlap_fraction(a)

    def test_contains(self):
        cluster = DeltaCluster((0, 2), (1,))
        assert cluster.contains(0, 1)
        assert not cluster.contains(1, 1)
        assert not cluster.contains(0, 0)
