"""Unit tests for the synthetic embedded-cluster generator (Section 6.2)."""

import numpy as np
import pytest

from repro.data.synthetic import generate_embedded, volumes_to_shapes


class TestValidation:
    def test_empty_matrix(self):
        with pytest.raises(ValueError, match="non-empty"):
            generate_embedded(0, 10, 1)

    def test_negative_clusters(self):
        with pytest.raises(ValueError, match="n_clusters"):
            generate_embedded(10, 10, -1)

    def test_missing_fraction_range(self):
        with pytest.raises(ValueError, match="missing_fraction"):
            generate_embedded(10, 10, 1, missing_fraction=1.0)

    def test_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            generate_embedded(10, 10, 1, noise=-1.0)

    def test_volume_and_shape_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            generate_embedded(
                50, 20, 1, mean_volume=50.0, cluster_shape=(5, 5)
            )

    def test_too_many_clusters(self):
        with pytest.raises(ValueError, match="disjoint-row"):
            generate_embedded(10, 10, 4, cluster_shape=(5, 5))

    def test_background_range_checked(self):
        with pytest.raises(ValueError, match="background_range"):
            generate_embedded(10, 10, 0, background_range=(5.0, 5.0))


class TestGroundTruth:
    def test_cluster_count_and_shape(self):
        dataset = generate_embedded(100, 20, 3, cluster_shape=(10, 5), rng=0)
        assert dataset.n_embedded == 3
        for cluster in dataset.embedded:
            assert cluster.n_rows == 10
            assert cluster.n_cols == 5

    def test_rows_disjoint(self):
        dataset = generate_embedded(100, 20, 4, cluster_shape=(10, 5), rng=1)
        seen = set()
        for cluster in dataset.embedded:
            assert seen.isdisjoint(cluster.rows)
            seen.update(cluster.rows)

    def test_noiseless_clusters_are_perfect(self):
        dataset = generate_embedded(80, 16, 3, cluster_shape=(8, 6), rng=2)
        for cluster in dataset.embedded:
            assert cluster.residue(dataset.matrix) == pytest.approx(0.0, abs=1e-9)
        assert dataset.embedded_average_residue() == pytest.approx(0.0, abs=1e-9)

    def test_noise_raises_residue(self):
        noiseless = generate_embedded(80, 16, 2, cluster_shape=(8, 6), rng=3)
        noisy = generate_embedded(
            80, 16, 2, cluster_shape=(8, 6), noise=5.0, rng=3
        )
        assert noisy.embedded_average_residue() > noiseless.embedded_average_residue()
        assert noisy.noise == 5.0

    def test_zero_clusters(self):
        dataset = generate_embedded(20, 10, 0, rng=4)
        assert dataset.embedded == []
        assert dataset.embedded_average_residue() == 0.0

    def test_deterministic(self):
        a = generate_embedded(50, 10, 2, cluster_shape=(5, 4), rng=42)
        b = generate_embedded(50, 10, 2, cluster_shape=(5, 4), rng=42)
        assert a.matrix == b.matrix
        assert a.embedded == b.embedded


class TestVolumeDistribution:
    def test_mean_volume_followed(self):
        dataset = generate_embedded(
            400, 60, 8, mean_volume=120.0, volume_variance_level=0.0, rng=5
        )
        cells = [c.entry_count() for c in dataset.embedded]
        assert np.mean(cells) == pytest.approx(120.0, rel=0.35)

    def test_variance_spreads_volumes(self):
        constant = generate_embedded(
            600, 60, 6, mean_volume=150.0, volume_variance_level=0.0, rng=6
        )
        spread = generate_embedded(
            600, 60, 6, mean_volume=150.0, volume_variance_level=5.0, rng=6
        )
        constant_cells = [c.entry_count() for c in constant.embedded]
        spread_cells = [c.entry_count() for c in spread.embedded]
        assert np.std(spread_cells) > np.std(constant_cells)

    def test_paper_default_shape(self):
        # Section 6.2.1: average volume (0.04 * rows) x (0.1 * cols).
        dataset = generate_embedded(100, 20, 2, rng=7)
        for cluster in dataset.embedded:
            assert cluster.n_rows == 4
            assert cluster.n_cols == 2


class TestMissingValues:
    def test_fraction_applied(self):
        dataset = generate_embedded(
            100, 50, 0, missing_fraction=0.3, rng=8
        )
        assert dataset.matrix.density == pytest.approx(0.7, abs=0.03)

    def test_no_missing_by_default(self):
        dataset = generate_embedded(20, 10, 0, rng=9)
        assert dataset.matrix.density == 1.0


class TestVolumesToShapes:
    def test_aspect_preserved(self):
        ((rows, cols),) = volumes_to_shapes([400.0], 1000, 40)
        assert rows > cols
        assert rows * cols == pytest.approx(400, rel=0.4)

    def test_minimum_enforced(self):
        ((rows, cols),) = volumes_to_shapes([4.0], 100, 100)
        assert rows >= 2
        assert cols >= 2

    def test_invalid_volume(self):
        with pytest.raises(ValueError, match="positive"):
            volumes_to_shapes([0.0], 10, 10)
