"""Unit tests for the runtime's config and checkpoint layers."""

import json

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.core.mining import run_restart
from repro.runtime.checkpoint import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
    record_digest,
    record_to_result,
    result_to_record,
)
from repro.runtime.config import RunConfig

pytestmark = pytest.mark.runtime


@pytest.fixture
def matrix():
    rng = np.random.default_rng(0)
    return DataMatrix(rng.normal(size=(15, 8)))


@pytest.fixture
def config():
    return RunConfig(residue_target=1.5, n_restarts=3, root_seed=7, k=2,
                     max_iterations=5, min_volume=9)


class TestRunConfig:
    def test_round_trip(self, config):
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_sequence_p_round_trips(self):
        cfg = RunConfig(residue_target=1.0, p=[0.1, 0.2, 0.3])
        loaded = RunConfig.from_dict(cfg.to_dict())
        assert loaded.p == (0.1, 0.2, 0.3)

    def test_unknown_key_rejected(self, config):
        payload = config.to_dict()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            RunConfig.from_dict(payload)

    def test_identity_excludes_scheduling(self, config):
        from dataclasses import replace
        rescheduled = replace(config, workers=16, task_timeout=9.0,
                              max_retries=0)
        assert rescheduled.identity() == config.identity()

    @pytest.mark.parametrize("kwargs", [
        {"residue_target": 0.0},
        {"residue_target": 1.0, "n_restarts": 0},
        {"residue_target": 1.0, "workers": 0},
        {"residue_target": 1.0, "max_retries": -1},
        {"residue_target": 1.0, "task_timeout": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)

    def test_restart_indices(self, config):
        assert config.restart_indices() == [0, 1, 2]


class TestRecordSerialization:
    def test_result_round_trips_bit_identically(self, matrix, config):
        result = run_restart(matrix, 0, residue_target=config.residue_target,
                             root_seed=config.root_seed, k=config.k,
                             max_iterations=config.max_iterations)
        record = result_to_record(0, result)
        # Through a JSON encode/decode cycle, like the on-disk path.
        reloaded = record_to_result(json.loads(json.dumps(record)), matrix)
        assert [
            (c.rows, c.cols) for c in reloaded.clustering
        ] == [(c.rows, c.cols) for c in result.clustering]
        assert reloaded.history == result.history
        assert reloaded.initial_residue == result.initial_residue
        assert reloaded.n_iterations == result.n_iterations
        assert reloaded.converged == result.converged

    def test_digest_detects_tampering(self, matrix, config):
        result = run_restart(matrix, 0, residue_target=config.residue_target,
                             root_seed=config.root_seed, k=config.k,
                             max_iterations=config.max_iterations)
        record = result_to_record(0, result)
        assert record_digest(record) == record["digest"]
        record["n_actions"] = 999
        assert record_digest(record) != record["digest"]


class TestCheckpointStore:
    def test_create_then_open(self, tmp_path, config):
        CheckpointStore.create(tmp_path / "run", config)
        store = CheckpointStore.open(tmp_path / "run")
        assert store.config == config
        assert store.completed_restarts() == set()

    def test_create_refuses_existing(self, tmp_path, config):
        CheckpointStore.create(tmp_path / "run", config)
        with pytest.raises(CheckpointError, match="already initialized"):
            CheckpointStore.create(tmp_path / "run", config)

    def test_open_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no manifest"):
            CheckpointStore.open(tmp_path)

    def test_open_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointCorruptionError, match="not valid JSON"):
            CheckpointStore.open(tmp_path)

    def test_record_round_trip(self, tmp_path, matrix, config):
        store = CheckpointStore.create(tmp_path / "run", config)
        result = run_restart(matrix, 1, residue_target=config.residue_target,
                             root_seed=config.root_seed, k=config.k,
                             max_iterations=config.max_iterations)
        record = result_to_record(1, result)
        from repro.data.io import write_json_atomic
        write_json_atomic(store.record_path(1), record)
        store.mark_done(1, str(record["digest"]))
        assert store.completed_restarts() == {1}
        loaded = store.load_result(1, matrix)
        assert [
            (c.rows, c.cols) for c in loaded.clustering
        ] == [(c.rows, c.cols) for c in result.clustering]

    def test_corrupt_record_is_dropped(self, tmp_path, matrix, config):
        store = CheckpointStore.create(tmp_path / "run", config)
        result = run_restart(matrix, 0, residue_target=config.residue_target,
                             root_seed=config.root_seed, k=config.k,
                             max_iterations=config.max_iterations)
        record = result_to_record(0, result)
        from repro.data.io import write_json_atomic
        write_json_atomic(store.record_path(0), record)
        store.mark_done(0, str(record["digest"]))
        # Damage the durable bytes.
        store.record_path(0).write_text("garbage")
        with pytest.raises(CheckpointCorruptionError):
            store.load_record(0)
        # completed_restarts() self-heals: drops the stale manifest entry.
        assert store.completed_restarts() == set()
        reopened = CheckpointStore.open(store.run_dir)
        assert reopened.completed_restarts() == set()

    def test_wrong_restart_index_rejected(self, tmp_path, matrix, config):
        store = CheckpointStore.create(tmp_path / "run", config)
        result = run_restart(matrix, 0, residue_target=config.residue_target,
                             root_seed=config.root_seed, k=config.k,
                             max_iterations=config.max_iterations)
        record = result_to_record(0, result)
        from repro.data.io import write_json_atomic
        write_json_atomic(store.record_path(2), record)
        with pytest.raises(CheckpointCorruptionError, match="claims restart"):
            store.load_record(2)

    def test_verify_config(self, tmp_path, config):
        from dataclasses import replace
        store = CheckpointStore.create(tmp_path / "run", config)
        store.verify_config(replace(config, workers=32))  # schedule-only: ok
        with pytest.raises(CheckpointMismatchError, match="root_seed"):
            store.verify_config(replace(config, root_seed=99))

    def test_best_digest_tracking(self, tmp_path, config):
        store = CheckpointStore.create(tmp_path / "run", config)
        assert store.best_digest() is None
        store.update_best("abc123", 0.5, 4)
        assert store.best_digest() == "abc123"
        reopened = CheckpointStore.open(store.run_dir)
        assert reopened.best_digest() == "abc123"
