"""Unit and behaviour tests for the FLOC algorithm (Sections 4-5)."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.constraints import Constraints
from repro.core.floc import FlocResult, floc
from repro.core.matrix import DataMatrix
from repro.core.seeding import seeds_from_clusters
from repro.data.synthetic import generate_embedded
from repro.eval.metrics import recall_precision

NAN = float("nan")


def planted_dataset(rng=3, noise=2.0):
    """A small matrix with 4 planted clusters in the recoverable regime."""
    return generate_embedded(
        120, 24, 4, cluster_shape=(12, 8), noise=noise, rng=rng
    )


class TestValidation:
    def setup_method(self):
        self.matrix = DataMatrix(np.random.default_rng(0).normal(size=(10, 6)))

    def test_k_positive(self):
        with pytest.raises(ValueError, match="k"):
            floc(self.matrix, 0)

    def test_ordering_checked(self):
        with pytest.raises(ValueError, match="ordering"):
            floc(self.matrix, 1, ordering="sorted")

    def test_gain_mode_checked(self):
        with pytest.raises(ValueError, match="gain_mode"):
            floc(self.matrix, 1, gain_mode="approximate")

    def test_alpha_checked(self):
        with pytest.raises(ValueError, match="alpha"):
            floc(self.matrix, 1, alpha=2.0)

    def test_max_iterations_checked(self):
        with pytest.raises(ValueError, match="max_iterations"):
            floc(self.matrix, 1, max_iterations=0)

    def test_seed_count_checked(self):
        seeds = seeds_from_clusters(10, 6, [DeltaCluster((0, 1), (0, 1))])
        with pytest.raises(ValueError, match="seeds"):
            floc(self.matrix, 2, seeds=seeds)

    def test_seed_shape_checked(self):
        bad = [(np.ones(3, dtype=bool), np.ones(6, dtype=bool))]
        with pytest.raises(ValueError, match="shape"):
            floc(self.matrix, 1, seeds=bad)

    def test_accepts_raw_array(self):
        result = floc(np.random.default_rng(0).normal(size=(10, 6)), 1, rng=0)
        assert isinstance(result, FlocResult)


class TestBasicBehaviour:
    def test_result_fields(self):
        matrix = DataMatrix(np.random.default_rng(0).uniform(0, 10, (20, 8)))
        result = floc(matrix, 2, p=0.3, rng=1)
        assert result.n_iterations >= 1
        assert len(result.clustering) == 2
        assert result.elapsed_seconds >= 0.0
        assert result.initial_residue >= 0.0
        assert len(result.history) == result.n_iterations

    def test_deterministic_with_int_seed(self):
        matrix = DataMatrix(np.random.default_rng(5).uniform(0, 10, (25, 10)))
        a = floc(matrix, 3, p=0.3, rng=42)
        b = floc(matrix, 3, p=0.3, rng=42)
        assert a.clustering.clusters == b.clustering.clusters
        assert a.n_iterations == b.n_iterations

    def test_history_non_increasing(self):
        matrix = DataMatrix(np.random.default_rng(2).uniform(0, 10, (30, 10)))
        result = floc(matrix, 2, p=0.3, rng=3, mandatory_moves=True)
        history = result.history
        assert all(b <= a + 1e-9 for a, b in zip(history, history[1:]))

    def test_final_not_worse_than_initial(self):
        matrix = DataMatrix(np.random.default_rng(4).uniform(0, 10, (30, 10)))
        result = floc(matrix, 2, p=0.4, rng=5)
        assert result.average_residue <= result.initial_residue + 1e-9

    def test_all_orderings_run(self):
        matrix = DataMatrix(np.random.default_rng(6).uniform(0, 10, (20, 8)))
        for ordering in ("fixed", "random", "weighted"):
            result = floc(matrix, 2, p=0.3, ordering=ordering, rng=7)
            assert len(result.clustering) == 2

    def test_fast_mode_runs(self):
        matrix = DataMatrix(np.random.default_rng(8).uniform(0, 10, (20, 8)))
        result = floc(matrix, 2, p=0.3, gain_mode="fast", rng=9)
        assert len(result.clustering) == 2

    def test_mandatory_moves_runs(self):
        matrix = DataMatrix(np.random.default_rng(8).uniform(0, 10, (15, 6)))
        result = floc(matrix, 2, p=0.3, mandatory_moves=True, rng=9)
        assert len(result.clustering) == 2


class TestWarmStartStability:
    def test_ground_truth_is_fixed_point(self):
        # With noiseless planted clusters and an r-residue target, the
        # ground truth is an exact fixed point: no planted line can leave
        # (negative volume gain), no junk line fits the admission test.
        dataset = planted_dataset(noise=0.0)
        seeds = seeds_from_clusters(
            dataset.matrix.n_rows, dataset.matrix.n_cols, dataset.embedded
        )
        result = floc(
            dataset.matrix, len(seeds), seeds=seeds, rng=0, residue_target=1.0
        )
        scores = recall_precision(
            dataset.embedded, result.clustering.clusters, dataset.matrix.shape
        )
        assert scores.recall == pytest.approx(1.0)
        assert scores.precision == pytest.approx(1.0)

    def test_ground_truth_mostly_stable_with_noise(self):
        dataset = planted_dataset(noise=2.0)
        seeds = seeds_from_clusters(
            dataset.matrix.n_rows, dataset.matrix.n_cols, dataset.embedded
        )
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, len(seeds), seeds=seeds, rng=0,
            residue_target=3 * emb,
        )
        scores = recall_precision(
            dataset.embedded, result.clustering.clusters, dataset.matrix.shape
        )
        assert scores.recall > 0.9
        assert scores.precision > 0.9

    def test_contaminated_seed_cleans_up_exactly_with_greedy(self):
        dataset = generate_embedded(
            160, 40, 4, cluster_shape=(16, 13), noise=2.0, rng=3
        )
        target = dataset.embedded[0]
        rng = np.random.default_rng(7)
        junk_rows = rng.choice(
            [r for r in range(160) if r not in target.rows], 8, replace=False
        )
        junk_cols = rng.choice(
            [c for c in range(40) if c not in target.cols], 5, replace=False
        )
        contaminated = DeltaCluster(
            list(target.rows) + list(junk_rows),
            list(target.cols) + list(junk_cols),
        )
        seeds = seeds_from_clusters(160, 40, [contaminated])
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, 1, seeds=seeds, rng=5,
            residue_target=2 * emb, ordering="greedy",
        )
        found = result.clustering[0]
        assert set(found.rows) == set(target.rows)
        assert set(found.cols) == set(target.cols)

    def test_contaminated_seed_reaches_target_with_weighted(self):
        # The paper's weighted ordering reliably drives a contaminated
        # seed to a coherent (target-respecting) cluster; recovering the
        # planted submatrix *exactly* in a single shot is only guaranteed
        # by the greedy extension (see the test above).
        dataset = generate_embedded(
            300, 60, 10, cluster_shape=(12, 6), noise=3.0, rng=3
        )
        target = dataset.embedded[0]
        rng = np.random.default_rng(7)
        junk_rows = rng.choice(
            [r for r in range(300) if r not in target.rows], 12, replace=False
        )
        junk_cols = rng.choice(
            [c for c in range(60) if c not in target.cols], 6, replace=False
        )
        contaminated = DeltaCluster(
            list(target.rows) + list(junk_rows),
            list(target.cols) + list(junk_cols),
        )
        seeds = seeds_from_clusters(300, 60, [contaminated])
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, 1, seeds=seeds, rng=5, residue_target=2 * emb
        )
        found = result.clustering[0]
        assert found.residue(dataset.matrix) <= 2 * emb
        assert found.entry_count() < contaminated.entry_count()


class TestPlantedRecovery:
    def test_cold_start_recovers_clusters(self):
        dataset = generate_embedded(
            150, 30, 5, cluster_shape=(15, 10), noise=2.0, rng=11
        )
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, 6, p=0.3, rng=13,
            residue_target=2 * emb,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=12,
            gain_mode="fast",
            ordering="greedy",
        )
        scores = recall_precision(
            dataset.embedded, result.clustering.clusters, dataset.matrix.shape
        )
        assert scores.precision > 0.7
        assert scores.recall > 0.5

    def test_reseed_improves_recall(self):
        dataset = generate_embedded(
            150, 30, 5, cluster_shape=(15, 10), noise=2.0, rng=11
        )
        emb = dataset.embedded_average_residue()
        kwargs = dict(
            p=0.3, rng=13, residue_target=2 * emb,
            constraints=Constraints(min_rows=3, min_cols=3),
            gain_mode="fast",
            ordering="greedy",
        )
        base = floc(dataset.matrix, 6, reseed_rounds=0, **kwargs)
        reseeded = floc(dataset.matrix, 6, reseed_rounds=12, **kwargs)
        base_scores = recall_precision(
            dataset.embedded, base.clustering.clusters, dataset.matrix.shape
        )
        reseeded_scores = recall_precision(
            dataset.embedded, reseeded.clustering.clusters, dataset.matrix.shape
        )
        assert reseeded_scores.recall >= base_scores.recall


class TestConstraintsRespected:
    def test_structural_floor_in_output(self):
        matrix = DataMatrix(np.random.default_rng(0).uniform(0, 10, (30, 12)))
        cons = Constraints(min_rows=3, min_cols=3)
        result = floc(matrix, 2, p=0.4, rng=1, constraints=cons)
        for cluster in result.clustering:
            assert cluster.n_rows >= 3
            assert cluster.n_cols >= 3

    def test_max_volume_respected(self):
        matrix = DataMatrix(np.random.default_rng(0).uniform(0, 10, (30, 12)))
        cons = Constraints(max_volume=30)
        result = floc(matrix, 2, p=0.1, rng=1, constraints=cons)
        for cluster in result.clustering:
            assert cluster.entry_count() <= 30

    def test_max_overlap_respected(self):
        dataset = planted_dataset()
        emb = dataset.embedded_average_residue()
        cons = Constraints(max_overlap=0.25, min_rows=3, min_cols=3)
        result = floc(
            dataset.matrix, 4, p=0.2, rng=2, constraints=cons,
            residue_target=2 * emb, gain_mode="fast",
        )
        assert result.clustering.max_pairwise_overlap() <= 0.25 + 1e-9


class TestMissingValues:
    def test_runs_on_sparse_matrix(self):
        dataset = generate_embedded(
            60, 16, 2, cluster_shape=(10, 8), noise=1.0,
            missing_fraction=0.2, rng=21,
        )
        result = floc(dataset.matrix, 2, p=0.25, rng=3, alpha=0.5)
        assert len(result.clustering) == 2

    def test_alpha_enforced_on_output(self):
        dataset = generate_embedded(
            60, 16, 2, cluster_shape=(10, 8), noise=1.0,
            missing_fraction=0.15, rng=22,
        )
        emb = dataset.embedded_average_residue()
        result = floc(
            dataset.matrix, 2, p=0.25, rng=4, alpha=0.6,
            residue_target=max(2 * emb, 1.0),
        )
        for cluster in result.clustering:
            # Additions were only admitted when the resulting cluster kept
            # every line above alpha occupancy; seeds may predate the
            # check, so verify the property only for clusters FLOC grew.
            if cluster.volume(dataset.matrix) > 0:
                assert cluster.occupancy_ok(dataset.matrix, alpha=0.4)


class TestResidueTargetMode:
    def test_feasible_clusters_meet_target(self):
        dataset = planted_dataset()
        emb = dataset.embedded_average_residue()
        target = 2 * emb
        result = floc(
            dataset.matrix, 4, p=0.2, rng=6, residue_target=target,
            constraints=Constraints(min_rows=3, min_cols=3),
            reseed_rounds=8, gain_mode="fast",
        )
        feasible = [
            c for c in result.clustering
            if c.residue(dataset.matrix) <= target and c.entry_count() > 16
        ]
        assert feasible, "expected at least one locked cluster"
