"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.runtime.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    inject,
    load_plan_from_env,
)

pytestmark = pytest.mark.runtime


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec(site="worker_start", kind="error")
        assert spec.restart is None and spec.attempts == 1

    @pytest.mark.parametrize("kwargs,match", [
        ({"site": "nowhere", "kind": "error"}, "unknown fault site"),
        ({"site": "worker_start", "kind": "explode"}, "unknown fault kind"),
        ({"site": "worker_start", "kind": "corrupt"}, "checkpoint site"),
        ({"site": "worker_start", "kind": "error", "attempts": 0},
         "attempts"),
        ({"site": "worker_start", "kind": "delay", "delay_s": -1.0},
         "delay_s"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            FaultSpec(**kwargs)

    def test_matching_window(self):
        spec = FaultSpec(site="worker_start", kind="error", restart=2,
                         attempts=2)
        assert spec.matches("worker_start", 2, 0)
        assert spec.matches("worker_start", 2, 1)
        assert not spec.matches("worker_start", 2, 2)  # retries recover
        assert not spec.matches("worker_start", 3, 0)  # other restart
        assert not spec.matches("worker_end", 2, 0)    # other site

    def test_wildcard_restart(self):
        spec = FaultSpec(site="worker_end", kind="kill")
        assert spec.matches("worker_end", 0, 0)
        assert spec.matches("worker_end", 99, 0)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="kill", restart=1),
            FaultSpec(site="checkpoint", kind="corrupt", restart=2,
                      attempts=3),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self, monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="delay",
                                    delay_s=0.5),))
        env = {}
        plan.to_env(env)
        monkeypatch.setenv(FAULT_PLAN_ENV, env[FAULT_PLAN_ENV])
        assert load_plan_from_env() == plan

    def test_no_plan_in_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert load_plan_from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "   ")
        assert load_plan_from_env() is None

    def test_malformed_plan_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{oops")
        with pytest.raises(ValueError, match="JSON list"):
            FaultPlan.from_json('{"site": "worker_start"}')
        with pytest.raises(ValueError, match="must be an object"):
            FaultPlan.from_json('["kill"]')

    def test_find_first_match(self):
        plan = FaultPlan((
            FaultSpec(site="worker_start", kind="error", restart=1),
            FaultSpec(site="worker_start", kind="kill"),
        ))
        assert plan.find("worker_start", 1, 0).kind == "error"
        assert plan.find("worker_start", 5, 0).kind == "kill"
        assert plan.find("checkpoint", 1, 0) is None


class TestInject:
    def test_no_env_is_noop(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert inject("worker_start", 0, 0) is None

    def test_error_kind_raises(self, monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="error",
                                    restart=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        with pytest.raises(InjectedFault, match="restart=0"):
            inject("worker_start", 0, 0)
        # Out of the injection window: no-op.
        assert inject("worker_start", 0, 1) is None
        assert inject("worker_start", 1, 0) is None

    def test_corrupt_kind_returned_to_caller(self, monkeypatch):
        plan = FaultPlan((FaultSpec(site="checkpoint", kind="corrupt"),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        spec = inject("checkpoint", 3, 0)
        assert spec is not None and spec.kind == "corrupt"

    def test_delay_kind_sleeps(self, monkeypatch):
        slept = []
        import repro.runtime.faults as faults_mod
        monkeypatch.setattr(faults_mod.time, "sleep", slept.append)
        plan = FaultPlan((FaultSpec(site="worker_end", kind="delay",
                                    delay_s=2.5),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert inject("worker_end", 0, 0) is None
        assert slept == [2.5]
