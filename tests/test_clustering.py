"""Unit tests for the Clustering aggregate."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.clustering import Clustering
from repro.core.matrix import DataMatrix


def make_matrix() -> DataMatrix:
    rng = np.random.default_rng(0)
    return DataMatrix(rng.uniform(0, 10, size=(6, 5)))


class TestContainer:
    def test_len_iter_getitem(self):
        matrix = make_matrix()
        clusters = [DeltaCluster((0, 1), (0, 1)), DeltaCluster((2, 3), (2, 3))]
        clustering = Clustering(matrix, clusters)
        assert len(clustering) == 2
        assert list(clustering) == clusters
        assert clustering[1] == clusters[1]

    def test_out_of_range_cluster_rejected(self):
        matrix = make_matrix()
        with pytest.raises(IndexError):
            Clustering(matrix, [DeltaCluster((99,), (0,))])


class TestAggregates:
    def test_average_residue_empty(self):
        assert Clustering(make_matrix(), []).average_residue() == 0.0

    def test_average_residue_mean_of_clusters(self):
        matrix = make_matrix()
        clusters = [DeltaCluster((0, 1), (0, 1)), DeltaCluster((2, 3, 4), (1, 2, 3))]
        clustering = Clustering(matrix, clusters)
        expected = np.mean([c.residue(matrix) for c in clusters])
        assert clustering.average_residue() == pytest.approx(expected)

    def test_total_volume(self):
        matrix = make_matrix()
        clustering = Clustering(
            matrix, [DeltaCluster((0, 1), (0, 1)), DeltaCluster((0,), (0, 1, 2))]
        )
        assert clustering.total_volume() == 4 + 3

    def test_coverage_matrix(self):
        matrix = make_matrix()
        clustering = Clustering(matrix, [DeltaCluster((0, 1), (0,))])
        covered = clustering.coverage_matrix()
        assert covered[0, 0] and covered[1, 0]
        assert covered.sum() == 2

    def test_row_col_coverage(self):
        matrix = make_matrix()  # 6 rows x 5 cols
        clustering = Clustering(matrix, [DeltaCluster((0, 1, 2), (0, 1))])
        assert clustering.row_coverage() == pytest.approx(0.5)
        assert clustering.col_coverage() == pytest.approx(0.4)

    def test_max_pairwise_overlap(self):
        matrix = make_matrix()
        clustering = Clustering(
            matrix,
            [
                DeltaCluster((0, 1), (0, 1)),
                DeltaCluster((1, 2), (1, 2)),
                DeltaCluster((4, 5), (3, 4)),
            ],
        )
        assert clustering.max_pairwise_overlap() == pytest.approx(0.25)

    def test_max_overlap_single_cluster_zero(self):
        clustering = Clustering(make_matrix(), [DeltaCluster((0,), (0,))])
        assert clustering.max_pairwise_overlap() == 0.0


class TestReporting:
    def test_summary_keys(self):
        matrix = make_matrix()
        clustering = Clustering(matrix, [DeltaCluster((0, 1), (0, 1, 2))])
        (row,) = clustering.summary()
        assert row["volume"] == 6
        assert row["n_rows"] == 2
        assert row["n_cols"] == 3
        assert row["residue"] >= 0.0
        assert row["diameter"] >= 0.0

    def test_drop_empty(self):
        matrix = make_matrix()
        clustering = Clustering(
            matrix, [DeltaCluster((), ()), DeltaCluster((0,), (0,))]
        )
        assert len(clustering.drop_empty()) == 1

    def test_sorted_by_residue(self):
        matrix = make_matrix()
        clustering = Clustering(
            matrix,
            [DeltaCluster((0, 1, 2, 3), (0, 1, 2, 3)), DeltaCluster((0, 1), (0, 1))],
        )
        ordered = clustering.sorted_by_residue()
        residues = [c.residue(matrix) for c in ordered]
        assert residues == sorted(residues)

    def test_repr(self):
        clustering = Clustering(make_matrix(), [])
        assert "k=0" in repr(clustering)
