"""Unit tests for CLIQUE's grid discretization."""

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.subspace.grid import MISSING_BIN, discretize

NAN = float("nan")


class TestDiscretize:
    def test_uniform_bins(self):
        data = np.array([[0.0], [2.5], [5.0], [7.5], [10.0]])
        part = discretize(data, xi=4)
        assert part.bins[:, 0].tolist() == [0, 1, 2, 3, 3]

    def test_max_value_lands_in_last_bin(self):
        data = np.array([[0.0], [10.0]])
        part = discretize(data, xi=5)
        assert part.bins[1, 0] == 4

    def test_constant_dimension(self):
        data = np.array([[3.0, 1.0], [3.0, 2.0]])
        part = discretize(data, xi=4)
        assert (part.bins[:, 0] == 0).all()

    def test_missing_marked(self):
        data = np.array([[1.0, NAN], [2.0, 5.0]])
        part = discretize(data, xi=2)
        assert part.bins[0, 1] == MISSING_BIN
        assert part.bins[1, 1] != MISSING_BIN

    def test_fully_missing_dimension(self):
        data = np.array([[NAN], [NAN]])
        part = discretize(data, xi=3)
        assert (part.bins[:, 0] == MISSING_BIN).all()

    def test_accepts_data_matrix(self):
        part = discretize(DataMatrix([[1.0, 2.0], [3.0, 4.0]]), xi=2)
        assert part.n_points == 2
        assert part.n_dims == 2

    def test_xi_validated(self):
        with pytest.raises(ValueError, match="xi"):
            discretize(np.ones((2, 2)), xi=0)

    def test_ndim_validated(self):
        with pytest.raises(ValueError, match="2-D"):
            discretize(np.ones(3), xi=2)

    def test_bin_interval(self):
        data = np.array([[0.0], [10.0]])
        part = discretize(data, xi=5)
        lo, hi = part.bin_interval(0, 2)
        assert lo == pytest.approx(4.0)
        assert hi == pytest.approx(6.0)

    def test_bin_interval_bounds_checked(self):
        part = discretize(np.array([[0.0], [1.0]]), xi=2)
        with pytest.raises(IndexError):
            part.bin_interval(0, 5)

    def test_values_map_back_into_their_bins(self):
        rng = np.random.default_rng(0)
        data = rng.uniform(-5, 5, size=(50, 3))
        part = discretize(data, xi=7)
        for i in range(50):
            for d in range(3):
                lo, hi = part.bin_interval(d, int(part.bins[i, d]))
                assert lo - 1e-9 <= data[i, d] <= hi + 1e-9 or (
                    part.bins[i, d] == part.xi - 1 and data[i, d] <= hi + 1e-6
                )
