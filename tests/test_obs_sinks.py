"""Sinks: ring buffer bounds, JSONL round-trip, console progress format,
statsd / OTLP exporters, and error paths (write-after-close, weird
payloads, crash-truncated traces)."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    ConsoleProgressSink,
    IterationEvent,
    JsonlSink,
    OtlpJsonSink,
    RingBufferSink,
    SeedEvent,
    StatsdSink,
    Tracer,
    read_jsonl,
)
from repro.obs.sinks import _jsonable

pytestmark = pytest.mark.obs


class FakeTransport:
    """Captures statsd datagrams instead of sending them."""

    def __init__(self):
        self.datagrams = []
        self.closed = False

    def sendto(self, data, address):
        self.datagrams.append((data, address))
        return len(data)

    def close(self):
        self.closed = True

    @property
    def lines(self):
        return [data.decode("utf-8") for data, _ in self.datagrams]


class TestRingBuffer:
    def test_keeps_newest_records(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.write({"type": "action", "index": index})
        assert len(sink) == 3
        assert [r["index"] for r in sink.records] == [2, 3, 4]

    def test_by_type_filters(self):
        sink = RingBufferSink()
        sink.write({"type": "action"})
        sink.write({"type": "iteration"})
        assert len(sink.by_type("action")) == 1
        sink.clear()
        assert sink.records == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sinks=[sink])
        tracer.push_context(restart=0)
        tracer.emit(SeedEvent(cluster=0, n_rows=4, n_cols=3, residue=0.5,
                              volume=12))
        tracer.emit(IterationEvent(index=0, residue=1.25, total_volume=40,
                                   n_actions=7, improved=True,
                                   elapsed_s=0.01))
        tracer.close()
        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0] == {
            "type": "seed", "cluster": 0, "origin": "phase1", "n_rows": 4,
            "n_cols": 3, "residue": 0.5, "volume": 12, "restart": 0,
        }
        assert records[1]["residue"] == 1.25
        assert records[1]["improved"] is True

    def test_numpy_payloads_serialize(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"type": "x", "a": np.int64(3), "b": np.float64(1.5)})
        sink.close()
        [record] = read_jsonl(path)
        assert record == {"type": "x", "a": 3, "b": 1.5}

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for index in range(20):
            sink.write({"type": "action", "index": index})
        sink.close()
        with path.open() as stream:
            lines = [line for line in stream if line.strip()]
        assert len(lines) == 20
        for line in lines:
            json.loads(line)

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write({"type": "x"})

    def test_read_jsonl_skips_mid_file_garbage_and_counts_it(self, tmp_path):
        # Regression: interior corruption (a fault-injected or damaged
        # record mid-file) must be skippable, not just the final line.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        skipped = []
        assert read_jsonl(path, skipped=skipped) == [{"ok": 1}, {"ok": 2}]
        assert skipped == [2]

    def test_read_jsonl_strict_raises_on_mid_file_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"ok": 1}\n')
        with pytest.raises(ValueError, match="invalid JSONL"):
            read_jsonl(path, strict=True)

    def test_read_jsonl_skips_truncated_final_line(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"ok": 1}\n{"ok": 2}\n{"type": "acti')
        skipped = []
        assert read_jsonl(path, skipped=skipped) == [{"ok": 1}, {"ok": 2}]
        assert skipped == [3]

    def test_read_jsonl_strict_raises_on_truncated_line(self, tmp_path):
        path = tmp_path / "cut.jsonl"
        path.write_text('{"ok": 1}\n{"type": "acti')
        with pytest.raises(ValueError, match="invalid JSONL"):
            read_jsonl(path, strict=True)

    def test_read_jsonl_skip_list_optional(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('garbage\n{"ok": 1}\n')
        assert read_jsonl(path) == [{"ok": 1}]

    def test_read_jsonl_trailing_blank_lines_ok(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ok": 1}\n\n\n')
        assert read_jsonl(path) == [{"ok": 1}]

    def test_flush_every_makes_trace_tailable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path, flush_every=2)
        sink.write({"type": "a", "i": 0})
        sink.write({"type": "a", "i": 1})
        # Flushed after the 2nd record: both visible before close.
        assert len(read_jsonl(path)) == 2
        sink.write({"type": "a", "i": 2})
        sink.close()
        assert len(read_jsonl(path)) == 3

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "t.jsonl", flush_every=0)

    def test_external_stream_left_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write({"type": "x"})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue()) == {"type": "x"}

    def test_non_json_payloads_coerced(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        sink = JsonlSink(path)
        marker = object()
        sink.write({
            "type": "x",
            "raw": b"\xff\xfe",          # non-UTF-8-safe bytes
            "obj": marker,                # arbitrary object
            "arr": np.array([1.0, 2.0]),  # numpy array
        })
        sink.close()
        [record] = read_jsonl(path)
        assert record["arr"] == [1.0, 2.0]
        assert isinstance(record["raw"], str)
        assert "object object at" in record["obj"]


class TestJsonableHelper:
    def test_numpy_scalar(self):
        assert _jsonable(np.float32(1.5)) == 1.5

    def test_numpy_array(self):
        assert _jsonable(np.array([[1, 2]])) == [[1, 2]]

    def test_zero_dim_array(self):
        assert _jsonable(np.array(7)) == 7

    def test_fallback_is_str(self):
        value = _jsonable(object())
        assert isinstance(value, str)

    def test_bytes_stay_stringifiable(self):
        assert isinstance(_jsonable(b"\xff"), str)


class TestConsoleProgress:
    def test_prints_iterations_and_summary(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "seed", "cluster": 0, "origin": "phase1",
                    "n_rows": 4, "n_cols": 3})
        sink.write({"type": "action", "kind": "row", "index": 1})
        sink.write({"type": "iteration", "index": 0, "residue": 2.5,
                    "total_volume": 60, "n_actions": 12, "improved": True,
                    "elapsed_s": 0.05})
        sink.close()
        output = stream.getvalue()
        assert "iter   0 [+] residue 2.5" in output
        assert "actions 12" in output
        assert "1 seeds, 1 actions total" in output

    def test_announces_restarts_and_reseeds(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "iteration", "index": 0, "residue": 1.0,
                    "total_volume": 10, "n_actions": 1, "improved": False,
                    "elapsed_s": 0.0, "restart": 0})
        sink.write({"type": "seed", "cluster": 2, "origin": "reseed",
                    "n_rows": 5, "n_cols": 4, "restart": 1})
        output = stream.getvalue()
        assert "-- restart 0 --" in output
        assert "-- restart 1 --" in output
        assert "reseed cluster 2: 5x4" in output

    def test_actions_counted_not_printed(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        for index in range(50):
            sink.write({"type": "action", "kind": "row", "index": index})
        assert stream.getvalue() == ""
        sink.close()
        assert "50 actions total" in stream.getvalue()


class TestConsoleProgressRuntime:
    """Supervised-runtime narration: waves, task lifecycle, retries."""

    def test_wave_banner_printed_on_context_change(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "task", "status": "dispatched", "restart": 0,
                    "attempt": 0, "wave": 0})
        sink.write({"type": "task", "status": "completed", "restart": 0,
                    "attempt": 0, "elapsed_s": 1.25, "wave": 0})
        sink.write({"type": "task", "status": "dispatched", "restart": 1,
                    "attempt": 1, "wave": 1})
        output = stream.getvalue()
        assert output.count("-- wave 0 --") == 1
        assert output.count("-- wave 1 --") == 1

    def test_task_lifecycle_lines(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "task", "status": "dispatched", "restart": 3,
                    "attempt": 0})
        sink.write({"type": "task", "status": "completed", "restart": 3,
                    "attempt": 0, "elapsed_s": 0.5})
        sink.write({"type": "task", "status": "failed", "restart": 4,
                    "attempt": 0, "error": "WorkerCrash"})
        sink.write({"type": "task", "status": "skipped", "restart": 5,
                    "attempt": 0})
        output = stream.getvalue()
        assert "task restart 3 dispatched (attempt 0)" in output
        assert "task restart 3 completed in 0.50s" in output
        assert "task restart 4 FAILED (attempt 0: WorkerCrash)" in output
        assert "task restart 5 skipped (already checkpointed)" in output

    def test_retry_and_fault_lines(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "retry", "restart": 2, "attempt": 0,
                    "error": "TaskTimeout", "backoff_s": 0.125,
                    "remaining": 2})
        sink.write({"type": "fault", "site": "worker_start",
                    "kind": "kill", "restart": 2, "attempt": 1})
        output = stream.getvalue()
        assert ("retry restart 2 (attempt 0 failed: TaskTimeout; "
                "backoff 0.12s, 2 retr(ies) left)") in output
        assert ("fault injected at worker_start [kill] restart 2 "
                "attempt 1") in output

    def test_runtime_events_do_not_trigger_restart_banner(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "task", "status": "dispatched", "restart": 7,
                    "attempt": 0})
        assert "-- restart 7 --" not in stream.getvalue()

    def test_close_summarizes_tasks_and_retries(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "task", "status": "completed", "restart": 0,
                    "attempt": 0, "elapsed_s": 0.1})
        sink.write({"type": "retry", "restart": 1, "attempt": 0,
                    "error": "E", "backoff_s": 0.1, "remaining": 1})
        sink.close()
        assert ("0 seeds, 0 actions, 1 task(s) completed, "
                "1 retr(ies) total") in stream.getvalue()

    def test_supervised_run_narrates_end_to_end(self, tmp_path):
        from repro.core.matrix import DataMatrix
        from repro.obs import Tracer
        from repro.runtime import RunConfig, run_supervised

        rng = np.random.default_rng(13)
        values = rng.normal(size=(16, 8))
        values[:7, :5] += 3.5
        stream = io.StringIO()
        tracer = Tracer(sinks=[ConsoleProgressSink(stream=stream)])
        outcome = run_supervised(
            DataMatrix(values),
            RunConfig(residue_target=1.5, n_restarts=2, root_seed=5,
                      k=2, max_iterations=3, min_volume=9, workers=1,
                      max_retries=0),
            run_dir=tmp_path / "run", tracer=tracer,
        )
        tracer.close()
        assert outcome.ok
        output = stream.getvalue()
        assert "-- wave 0 --" in output
        assert "task restart 0 dispatched" in output
        assert "task restart 1 completed" in output
        assert "2 task(s) completed" in output


class TestStatsd:
    def _sink(self, **kwargs):
        transport = FakeTransport()
        return StatsdSink(transport=transport, **kwargs), transport

    def test_action_lines(self):
        sink, transport = self._sink()
        sink.write({"type": "action", "kind": "row", "index": 3,
                    "cluster": 1, "is_removal": False, "gain": 2.5})
        assert transport.lines == [
            "floc.actions:1|c",
            "floc.admissions:1|c",
            "floc.action_gain:2.5|h",
        ]
        assert sink.n_sent == 3

    def test_eviction_counted(self):
        sink, transport = self._sink()
        sink.write({"type": "action", "is_removal": True, "gain": 0.25})
        assert "floc.evictions:1|c" in transport.lines

    def test_iteration_lines(self):
        sink, transport = self._sink()
        sink.write({"type": "iteration", "index": 0, "residue": 1.5,
                    "total_volume": 60, "n_actions": 12, "improved": True,
                    "elapsed_s": 0.05})
        assert transport.lines == [
            "floc.iterations:1|c",
            "floc.residue:1.5|g",
            "floc.total_volume:60|g",
            "floc.sweep_actions:12|h",
            "floc.sweep_ms:50|ms",
        ]

    def test_seed_and_span_and_unknown_lines(self):
        sink, transport = self._sink()
        sink.write({"type": "seed", "cluster": 0, "origin": "reseed"})
        sink.write({"type": "span", "name": "phase2_iteration",
                    "elapsed_s": 0.002})
        sink.write({"type": "mystery"})
        assert transport.lines == [
            "floc.seeds.reseed:1|c",
            "floc.span.phase2_iteration:2|ms",
            "floc.events.mystery:1|c",
        ]

    def test_prefix_respected(self):
        sink, transport = self._sink(prefix="paper")
        sink.write({"type": "seed", "cluster": 0})
        assert transport.lines == ["paper.seeds.phase1:1|c"]

    def test_datagrams_target_configured_address(self):
        transport = FakeTransport()
        sink = StatsdSink(host="10.0.0.9", port=9125, transport=transport)
        sink.write({"type": "seed"})
        assert transport.datagrams[0][1] == ("10.0.0.9", 9125)

    def test_write_after_close_raises(self):
        sink, _ = self._sink()
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write({"type": "seed"})

    def test_injected_transport_not_closed(self):
        sink, transport = self._sink()
        sink.close()
        assert transport.closed is False

    def test_owned_socket_lifecycle(self):
        # Fire-and-forget UDP to localhost: nothing listens, nothing raises.
        sink = StatsdSink(host="127.0.0.1", port=18125)
        sink.write({"type": "seed"})
        assert sink.n_sent == 1
        sink.close()
        sink.close()  # idempotent

    def test_non_numeric_gain_skipped(self):
        sink, transport = self._sink()
        sink.write({"type": "action", "is_removal": False, "gain": "nan?"})
        assert transport.lines == [
            "floc.actions:1|c", "floc.admissions:1|c",
        ]


class TestStatsdSanitization:
    """Record content must never corrupt the line protocol (PR 10)."""

    def _sink(self, **kwargs):
        transport = FakeTransport()
        return StatsdSink(transport=transport, **kwargs), transport

    def test_delimiters_in_event_type_collapsed(self):
        sink, transport = self._sink()
        sink.write({"type": "evil:metric|c\ninjected:9|g"})
        assert transport.lines == ["floc.events.evil_metric_c_injected_9_g:1|c"]
        for line in transport.lines:
            assert "\n" not in line
            assert line.count(":") == 1 and line.count("|") == 1

    def test_delimiters_in_seed_origin_collapsed(self):
        sink, transport = self._sink()
        sink.write({"type": "seed", "origin": "re:seed|phase"})
        assert transport.lines == ["floc.seeds.re_seed_phase:1|c"]

    def test_delimiters_in_span_name_collapsed(self):
        sink, transport = self._sink()
        sink.write({"type": "span", "name": "a|ms\nb:1|c", "elapsed_s": 0.001})
        assert transport.lines == ["floc.span.a_ms_b_1_c:1|ms"]

    def test_prefix_sanitized(self):
        sink, transport = self._sink(prefix="bad:prefix|x")
        assert sink.prefix == "bad_prefix_x"
        sink.write({"type": "seed", "cluster": 0})
        assert transport.lines == ["bad_prefix_x.seeds.phase1:1|c"]

    def test_empty_name_component_becomes_underscore(self):
        sink, transport = self._sink()
        sink.write({"type": "seed", "origin": ": |"})
        assert transport.lines == ["floc.seeds._:1|c"]

    def test_whitespace_and_tag_chars_collapsed(self):
        sink, transport = self._sink()
        sink.write({"type": "two words,#tagged"})
        assert transport.lines == ["floc.events.two_words_tagged:1|c"]

    def test_nonfinite_values_dropped(self):
        sink, transport = self._sink()
        sink.write({"type": "action", "is_removal": False,
                    "gain": float("nan")})
        sink.write({"type": "iteration", "index": 0,
                    "residue": float("inf"), "total_volume": 60,
                    "n_actions": 2, "elapsed_s": float("-inf")})
        assert transport.lines == [
            "floc.actions:1|c",
            "floc.admissions:1|c",
            "floc.iterations:1|c",
            "floc.total_volume:60|g",
            "floc.sweep_actions:2|h",
        ]

    def test_boolean_values_not_numbers(self):
        sink, transport = self._sink()
        sink.write({"type": "action", "is_removal": False, "gain": True})
        assert transport.lines == ["floc.actions:1|c", "floc.admissions:1|c"]

    def test_non_numeric_iteration_fields_dropped(self):
        sink, transport = self._sink()
        sink.write({"type": "iteration", "index": 0, "residue": "oops",
                    "total_volume": None, "n_actions": 3, "elapsed_s": "slow"})
        assert transport.lines == [
            "floc.iterations:1|c",
            "floc.sweep_actions:3|h",
        ]


class TestOtlpJson:
    def test_payload_structure(self, tmp_path):
        path = tmp_path / "logs.json"
        sink = OtlpJsonSink(path, service_name="svc", scope="sc")
        sink.write({"type": "iteration", "index": 2, "residue": 1.5,
                    "improved": True})
        sink.close()
        payload = json.loads(path.read_text())
        [resource_logs] = payload["resourceLogs"]
        assert resource_logs["resource"]["attributes"] == [
            {"key": "service.name", "value": {"stringValue": "svc"}},
        ]
        [scope_logs] = resource_logs["scopeLogs"]
        assert scope_logs["scope"] == {"name": "sc"}
        [record] = scope_logs["logRecords"]
        assert record["body"] == {"stringValue": "iteration"}
        attrs = {a["key"]: a["value"] for a in record["attributes"]}
        assert attrs["index"] == {"intValue": "2"}
        assert attrs["residue"] == {"doubleValue": 1.5}
        assert attrs["improved"] == {"boolValue": True}

    def test_any_value_encoding(self):
        enc = OtlpJsonSink._any_value
        assert enc(True) == {"boolValue": True}          # bool before int
        assert enc(7) == {"intValue": "7"}
        assert enc(1.5) == {"doubleValue": 1.5}
        assert enc("x") == {"stringValue": "x"}
        assert enc(np.float64(2.0)) == {"doubleValue": 2.0}  # float subclass
        assert enc(np.int64(3)) == {"stringValue": "3"}      # via _jsonable

    def test_write_after_close_raises(self, tmp_path):
        sink = OtlpJsonSink(tmp_path / "l.json")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write({"type": "x"})

    def test_external_stream_left_open(self):
        buffer = io.StringIO()
        sink = OtlpJsonSink(buffer)
        sink.write({"type": "seed", "cluster": 0})
        sink.close()
        assert not buffer.closed
        payload = json.loads(buffer.getvalue())
        assert payload["resourceLogs"]

    def test_close_idempotent(self, tmp_path):
        path = tmp_path / "l.json"
        sink = OtlpJsonSink(path)
        sink.write({"type": "seed"})
        sink.close()
        sink.close()
        # A single LogsData document, not two.
        json.loads(path.read_text())


class TestWriteAfterClose:
    """Every sink has a defined post-close behaviour: file/socket-backed
    sinks raise, purely in-memory sinks tolerate."""

    def test_ring_buffer_tolerates(self):
        sink = RingBufferSink()
        sink.close()
        sink.write({"type": "x"})
        assert len(sink) == 1

    def test_console_tolerates(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.close()
        sink.write({"type": "action"})

    def test_file_and_socket_sinks_raise(self, tmp_path):
        sinks = [
            JsonlSink(tmp_path / "a.jsonl"),
            OtlpJsonSink(tmp_path / "b.json"),
            StatsdSink(transport=FakeTransport()),
        ]
        for sink in sinks:
            sink.close()
            with pytest.raises(ValueError):
                sink.write({"type": "x"})
