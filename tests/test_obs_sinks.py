"""Sinks: ring buffer bounds, JSONL round-trip, console progress format."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    ConsoleProgressSink,
    IterationEvent,
    JsonlSink,
    RingBufferSink,
    SeedEvent,
    Tracer,
    read_jsonl,
)

pytestmark = pytest.mark.obs


class TestRingBuffer:
    def test_keeps_newest_records(self):
        sink = RingBufferSink(capacity=3)
        for index in range(5):
            sink.write({"type": "action", "index": index})
        assert len(sink) == 3
        assert [r["index"] for r in sink.records] == [2, 3, 4]

    def test_by_type_filters(self):
        sink = RingBufferSink()
        sink.write({"type": "action"})
        sink.write({"type": "iteration"})
        assert len(sink.by_type("action")) == 1
        sink.clear()
        assert sink.records == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonl:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        tracer = Tracer(sinks=[sink])
        tracer.push_context(restart=0)
        tracer.emit(SeedEvent(cluster=0, n_rows=4, n_cols=3, residue=0.5,
                              volume=12))
        tracer.emit(IterationEvent(index=0, residue=1.25, total_volume=40,
                                   n_actions=7, improved=True,
                                   elapsed_s=0.01))
        tracer.close()
        records = read_jsonl(path)
        assert len(records) == 2
        assert records[0] == {
            "type": "seed", "cluster": 0, "origin": "phase1", "n_rows": 4,
            "n_cols": 3, "residue": 0.5, "volume": 12, "restart": 0,
        }
        assert records[1]["residue"] == 1.25
        assert records[1]["improved"] is True

    def test_numpy_payloads_serialize(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"type": "x", "a": np.int64(3), "b": np.float64(1.5)})
        sink.close()
        [record] = read_jsonl(path)
        assert record == {"type": "x", "a": 3, "b": 1.5}

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        for index in range(20):
            sink.write({"type": "action", "index": index})
        sink.close()
        with path.open() as stream:
            lines = [line for line in stream if line.strip()]
        assert len(lines) == 20
        for line in lines:
            json.loads(line)

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write({"type": "x"})

    def test_read_jsonl_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSONL"):
            read_jsonl(path)

    def test_external_stream_left_open(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.write({"type": "x"})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue()) == {"type": "x"}


class TestConsoleProgress:
    def test_prints_iterations_and_summary(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "seed", "cluster": 0, "origin": "phase1",
                    "n_rows": 4, "n_cols": 3})
        sink.write({"type": "action", "kind": "row", "index": 1})
        sink.write({"type": "iteration", "index": 0, "residue": 2.5,
                    "total_volume": 60, "n_actions": 12, "improved": True,
                    "elapsed_s": 0.05})
        sink.close()
        output = stream.getvalue()
        assert "iter   0 [+] residue 2.5" in output
        assert "actions 12" in output
        assert "1 seeds, 1 actions total" in output

    def test_announces_restarts_and_reseeds(self):
        stream = io.StringIO()
        sink = ConsoleProgressSink(stream=stream)
        sink.write({"type": "iteration", "index": 0, "residue": 1.0,
                    "total_volume": 10, "n_actions": 1, "improved": False,
                    "elapsed_s": 0.0, "restart": 0})
        sink.write({"type": "seed", "cluster": 2, "origin": "reseed",
                    "n_rows": 5, "n_cols": 4, "restart": 1})
        output = stream.getvalue()
        assert "-- restart 0 --" in output
        assert "-- restart 1 --" in output
        assert "reseed cluster 2: 5x4" in output
