"""Unit tests for recall/precision and cluster matching (Section 6.2.2)."""

import numpy as np
import pytest

from repro.core.cluster import DeltaCluster
from repro.core.clustering import Clustering
from repro.core.matrix import DataMatrix
from repro.eval.metrics import (
    clustering_report,
    coverage_sets,
    jaccard_entries,
    match_clusters,
    recall_precision,
)


class TestCoverage:
    def test_coverage_sets(self):
        covered = coverage_sets([DeltaCluster((0, 1), (0,))], (3, 2))
        assert covered.sum() == 2
        assert covered[0, 0] and covered[1, 0]

    def test_union_of_clusters(self):
        clusters = [DeltaCluster((0,), (0,)), DeltaCluster((0,), (1,))]
        covered = coverage_sets(clusters, (1, 2))
        assert covered.all()


class TestRecallPrecision:
    def test_perfect_match(self):
        clusters = [DeltaCluster((0, 1), (0, 1))]
        scores = recall_precision(clusters, clusters, (4, 4))
        assert scores.recall == 1.0
        assert scores.precision == 1.0
        assert scores.f1 == 1.0

    def test_disjoint(self):
        embedded = [DeltaCluster((0,), (0,))]
        discovered = [DeltaCluster((3,), (3,))]
        scores = recall_precision(embedded, discovered, (4, 4))
        assert scores.recall == 0.0
        assert scores.precision == 0.0
        assert scores.f1 == 0.0

    def test_partial(self):
        embedded = [DeltaCluster((0, 1), (0, 1))]   # 4 cells
        discovered = [DeltaCluster((1, 2), (1, 2))]  # 4 cells, 1 shared
        scores = recall_precision(embedded, discovered, (4, 4))
        assert scores.recall == pytest.approx(0.25)
        assert scores.precision == pytest.approx(0.25)
        assert scores.shared_cells == 1

    def test_empty_embedded_conventions(self):
        discovered = [DeltaCluster((0,), (0,))]
        scores = recall_precision([], discovered, (2, 2))
        assert scores.recall == 1.0
        assert scores.precision == 0.0

    def test_empty_discovered_conventions(self):
        embedded = [DeltaCluster((0,), (0,))]
        scores = recall_precision(embedded, [], (2, 2))
        assert scores.recall == 0.0
        assert scores.precision == 1.0

    def test_overlapping_clusters_counted_once(self):
        embedded = [DeltaCluster((0, 1), (0, 1)), DeltaCluster((0, 1), (0, 1))]
        discovered = [DeltaCluster((0, 1), (0, 1))]
        scores = recall_precision(embedded, discovered, (3, 3))
        assert scores.embedded_cells == 4
        assert scores.recall == 1.0


class TestJaccardAndMatching:
    def test_jaccard_identity(self):
        c = DeltaCluster((0, 1), (0, 1, 2))
        assert jaccard_entries(c, c) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_entries(
            DeltaCluster((0,), (0,)), DeltaCluster((1,), (1,))
        ) == 0.0

    def test_jaccard_empty(self):
        assert jaccard_entries(DeltaCluster((), ()), DeltaCluster((), ())) == 0.0

    def test_greedy_matching_one_to_one(self):
        embedded = [
            DeltaCluster((0, 1), (0, 1)),
            DeltaCluster((4, 5), (2, 3)),
        ]
        discovered = [
            DeltaCluster((4, 5), (2, 3)),      # matches embedded[1]
            DeltaCluster((0, 1), (0, 1, 2)),    # matches embedded[0]
        ]
        matches = match_clusters(embedded, discovered)
        assert matches[0] == (0, 1, pytest.approx(4 / 6))
        assert matches[1] == (1, 0, pytest.approx(1.0))

    def test_unmatched_embedded_marked_none(self):
        embedded = [DeltaCluster((0,), (0,)), DeltaCluster((3,), (3,))]
        discovered = [DeltaCluster((0,), (0,))]
        matches = match_clusters(embedded, discovered)
        assert matches[0][1] == 0
        assert matches[1][1] is None
        assert matches[1][2] == 0.0

    def test_no_double_assignment(self):
        embedded = [DeltaCluster((0, 1), (0, 1)), DeltaCluster((0, 1), (0,))]
        discovered = [DeltaCluster((0, 1), (0, 1))]
        matches = match_clusters(embedded, discovered)
        assigned = [m[1] for m in matches if m[1] is not None]
        assert len(assigned) == len(set(assigned)) == 1


class TestReport:
    def test_report_without_ground_truth(self):
        matrix = DataMatrix(np.random.default_rng(0).normal(size=(6, 4)))
        clustering = Clustering(matrix, [DeltaCluster((0, 1), (0, 1))])
        report = clustering_report(clustering)
        assert set(report) == {
            "average_residue", "total_volume", "row_coverage", "col_coverage",
        }

    def test_report_with_ground_truth(self):
        matrix = DataMatrix(np.random.default_rng(1).normal(size=(6, 4)))
        cluster = DeltaCluster((0, 1), (0, 1))
        clustering = Clustering(matrix, [cluster])
        report = clustering_report(clustering, [cluster])
        assert report["recall"] == 1.0
        assert report["precision"] == 1.0
        assert report["f1"] == 1.0
