"""Unit tests for Cons_o / Cons_c / Cons_v action blocking (Section 4.3)."""

import numpy as np
import pytest

from repro.core.constraints import Constraints


def members(*flags):
    return np.array(flags, dtype=bool)


class TestValidation:
    def test_defaults_ok(self):
        cons = Constraints()
        assert cons.min_rows == 2
        assert cons.min_cols == 2

    def test_max_overlap_range(self):
        with pytest.raises(ValueError, match="max_overlap"):
            Constraints(max_overlap=1.5)

    def test_volume_bounds(self):
        with pytest.raises(ValueError, match="min_volume"):
            Constraints(min_volume=-1)
        with pytest.raises(ValueError, match="max_volume"):
            Constraints(max_volume=0)
        with pytest.raises(ValueError, match=">"):
            Constraints(min_volume=10, max_volume=5)

    def test_structural_minimums(self):
        with pytest.raises(ValueError, match="at least 1"):
            Constraints(min_rows=0)


class TestStructuralFloor:
    def setup_method(self):
        self.cons = Constraints(min_rows=2, min_cols=2)
        self.rows = members(True, True, False, False)
        self.cols = members(True, True, False)
        self.all_rows = self.rows[None, :]
        self.all_cols = self.cols[None, :]

    def blocks(self, kind, index, is_removal):
        return self.cons.blocks(
            self.rows, self.cols, kind, index, is_removal,
            0, self.all_rows, self.all_cols,
        )

    def test_removal_below_floor_blocked(self):
        assert self.blocks("row", 0, is_removal=True)
        assert self.blocks("col", 1, is_removal=True)

    def test_addition_never_hits_floor(self):
        assert not self.blocks("row", 2, is_removal=False)

    def test_removal_above_floor_allowed(self):
        rows = members(True, True, True, False)
        assert not self.cons.blocks(
            rows, self.cols, "row", 0, True, 0, rows[None, :], self.all_cols
        )


class TestVolumeBounds:
    def test_max_volume_blocks_growth(self):
        cons = Constraints(max_volume=6)
        rows = members(True, True, False)
        cols = members(True, True, True)
        # Growing to 3x3 = 9 cells exceeds the bound.
        assert cons.blocks(
            rows, cols, "row", 2, False, 0, rows[None, :], cols[None, :]
        )

    def test_min_volume_blocks_shrink(self):
        cons = Constraints(min_volume=6, min_rows=1, min_cols=1)
        rows = members(True, True, False)
        cols = members(True, True, True)
        # Shrinking to 1x3 = 3 cells dips below min_volume=6.
        assert cons.blocks(
            rows, cols, "row", 0, True, 0, rows[None, :], cols[None, :]
        )

    def test_min_volume_does_not_block_growth(self):
        cons = Constraints(min_volume=100)
        rows = members(True, True, False)
        cols = members(True, True, False)
        assert not cons.blocks(
            rows, cols, "row", 2, False, 0, rows[None, :], cols[None, :]
        )


class TestCoverage:
    def test_sole_cluster_removal_blocked(self):
        cons = Constraints(require_row_coverage=True, min_rows=1, min_cols=1)
        rows = members(True, True, True)
        cols = members(True, True)
        all_rows = rows[None, :]
        assert cons.blocks(
            rows, cols, "row", 0, True, 0, all_rows, cols[None, :]
        )

    def test_removal_allowed_when_covered_elsewhere(self):
        cons = Constraints(require_row_coverage=True, min_rows=1, min_cols=1)
        rows = members(True, True, True)
        cols = members(True, True)
        all_rows = np.array([rows, members(True, False, False)])
        all_cols = np.array([cols, cols])
        assert not cons.blocks(rows, cols, "row", 0, True, 0, all_rows, all_cols)

    def test_col_coverage(self):
        cons = Constraints(require_col_coverage=True, min_rows=1, min_cols=1)
        rows = members(True, True)
        cols = members(True, True, True)
        assert cons.blocks(
            rows, cols, "col", 0, True, 0, rows[None, :], cols[None, :]
        )

    def test_coverage_ignores_additions(self):
        cons = Constraints(require_row_coverage=True)
        rows = members(True, True, False)
        cols = members(True, True)
        assert not cons.blocks(
            rows, cols, "row", 2, False, 0, rows[None, :], cols[None, :]
        )


class TestOverlap:
    def setup_method(self):
        # Two 2x2 clusters sharing one row and one column -> overlap 1/4.
        self.rows_a = members(True, True, False, False)
        self.cols_a = members(True, True, False, False)
        self.rows_b = members(False, True, True, False)
        self.cols_b = members(False, True, True, False)
        self.all_rows = np.array([self.rows_a, self.rows_b])
        self.all_cols = np.array([self.cols_a, self.cols_b])

    def test_addition_raising_overlap_blocked(self):
        cons = Constraints(max_overlap=0.3)
        # Adding row 2 (shared with cluster b) to cluster a raises the
        # shared block to 2 rows x 1 col = 2 of min(6, 4) cells = 0.5.
        assert cons.blocks(
            self.rows_a, self.cols_a, "row", 2, False,
            0, self.all_rows, self.all_cols,
        )

    def test_addition_within_cap_allowed(self):
        cons = Constraints(max_overlap=0.6)
        assert not cons.blocks(
            self.rows_a, self.cols_a, "row", 2, False,
            0, self.all_rows, self.all_cols,
        )

    def test_unrelated_addition_allowed(self):
        cons = Constraints(max_overlap=0.3)
        assert not cons.blocks(
            self.rows_a, self.cols_a, "row", 3, False,
            0, self.all_rows, self.all_cols,
        )

    def test_removal_of_shared_line_reduces_overlap_allowed(self):
        cons = Constraints(max_overlap=0.0, min_rows=1, min_cols=1)
        # Row 1 is the shared row: removing it zeroes the overlap.
        assert not cons.blocks(
            self.rows_a, self.cols_a, "row", 1, True,
            0, self.all_rows, self.all_cols,
        )

    def test_removal_that_worsens_overlap_fraction_blocked(self):
        # Removing a NON-shared row shrinks cluster a while the shared
        # block stays, pushing the fraction past the cap.
        cons = Constraints(max_overlap=0.3, min_rows=1, min_cols=1)
        assert cons.blocks(
            self.rows_a, self.cols_a, "row", 0, True,
            0, self.all_rows, self.all_cols,
        )

    def test_already_violating_pair_may_heal(self):
        # Both clusters identical -> overlap fraction 1.0 > cap, but a
        # move that does not worsen it stays legal (healing).
        rows = members(True, True, True, False)
        cols = members(True, True, False, False)
        all_rows = np.array([rows, rows])
        all_cols = np.array([cols, cols])
        cons = Constraints(max_overlap=0.1, min_rows=1, min_cols=1)
        # Removing a (shared) row keeps the fraction at 1.0 -- not worse.
        assert not cons.blocks(
            rows, cols, "row", 0, True, 0, all_rows, all_cols
        )


class TestSeedOk:
    def test_structural(self):
        cons = Constraints(min_rows=2, min_cols=2)
        assert cons.seed_ok(members(True, True), members(True, True))
        assert not cons.seed_ok(members(True, False), members(True, True))

    def test_max_volume(self):
        cons = Constraints(max_volume=4)
        assert cons.seed_ok(members(True, True), members(True, True))
        assert not cons.seed_ok(
            members(True, True, True), members(True, True)
        )
