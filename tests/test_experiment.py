"""Unit tests for the experiment harness."""

import pytest

from repro.core.constraints import Constraints
from repro.eval.experiment import (
    ExperimentConfig,
    TrialResult,
    generate_workload,
    run_trial,
    run_trials,
)

import numpy as np


SMALL = ExperimentConfig(
    n_rows=60,
    n_cols=15,
    n_embedded=2,
    embedded_shape=(8, 6),
    noise=1.0,
    k=2,
    p=0.2,
    max_iterations=15,
)


class TestConfig:
    def test_overrides_copy(self):
        other = SMALL.with_overrides(k=5, ordering="fixed")
        assert other.k == 5
        assert other.ordering == "fixed"
        assert SMALL.k == 2  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SMALL.k = 9


class TestWorkload:
    def test_generate_matches_config(self):
        dataset = generate_workload(SMALL, np.random.default_rng(0))
        assert dataset.matrix.shape == (60, 15)
        assert dataset.n_embedded == 2

    def test_erlang_volumes_used(self):
        config = SMALL.with_overrides(
            embedded_shape=None, embedded_mean_volume=40.0,
            embedded_variance_level=2.0,
        )
        dataset = generate_workload(config, np.random.default_rng(1))
        assert dataset.n_embedded == 2


class TestRunTrial:
    def test_record_fields(self):
        result = run_trial(SMALL, rng=0)
        assert isinstance(result, TrialResult)
        record = result.as_record()
        assert set(record) == {
            "iterations", "time_s", "residue", "recall",
            "precision", "volume", "actions",
        }
        assert record["iterations"] >= 1
        assert 0.0 <= record["recall"] <= 1.0
        assert 0.0 <= record["precision"] <= 1.0

    def test_trial_deterministic(self):
        a = run_trial(SMALL, rng=3).as_record()
        b = run_trial(SMALL, rng=3).as_record()
        for key in ("iterations", "residue", "recall", "precision", "volume"):
            assert a[key] == b[key]

    def test_constraints_forwarded(self):
        config = SMALL.with_overrides(
            constraints=Constraints(min_rows=3, min_cols=3)
        )
        result = run_trial(config, rng=1)
        assert result.n_iterations >= 1

    def test_seed_volumes(self):
        config = SMALL.with_overrides(seed_mean_volume=48.0)
        result = run_trial(config, rng=2)
        assert result.n_iterations >= 1


class TestRunTrials:
    def test_averaging(self):
        summary = run_trials(SMALL, n_trials=2, base_seed=0)
        assert summary["iterations"] >= 1.0
        assert 0.0 <= summary["recall"] <= 1.0

    def test_n_trials_validated(self):
        with pytest.raises(ValueError, match="n_trials"):
            run_trials(SMALL, n_trials=0)
