"""The @profiled decorator and the profile report."""

import numpy as np
import pytest

from repro.core.residue import mean_abs_residue
from repro.obs import (
    disable_profiling,
    enable_profiling,
    profile_report,
    profile_snapshot,
    profiled,
    profiling_enabled,
    reset_profile,
)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def clean_profile():
    disable_profiling()
    reset_profile()
    yield
    disable_profiling()
    reset_profile()


class TestProfiled:
    def test_disabled_by_default(self):
        @profiled
        def work(x):
            return x + 1

        assert not profiling_enabled()
        assert work(1) == 2
        assert work.__profile_stat__.calls == 0

    def test_enabled_accounts_calls(self):
        @profiled
        def work(x):
            return x * 2

        enable_profiling()
        for value in range(5):
            work(value)
        stat = work.__profile_stat__
        assert stat.calls == 5
        assert stat.wall_s >= 0.0
        assert stat.cpu_s >= 0.0

    def test_wraps_preserves_metadata_and_result(self):
        @profiled
        def documented(x):
            """docstring survives"""
            return x

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docstring survives"
        enable_profiling()
        assert documented("value") == "value"

    def test_exceptions_still_accounted(self):
        @profiled
        def broken():
            raise RuntimeError("boom")

        enable_profiling()
        with pytest.raises(RuntimeError):
            broken()
        assert broken.__profile_stat__.calls == 1

    def test_core_primitives_are_profiled(self):
        enable_profiling()
        sub = np.arange(12.0).reshape(3, 4)
        mean_abs_residue(sub)
        snapshot = profile_snapshot()
        assert any("mean_abs_residue" in name for name in snapshot)
        assert any("compute_bases" in name for name in snapshot)


class TestReport:
    def test_empty_report(self):
        assert "no samples" in profile_report()

    def test_report_lists_heavy_functions(self):
        enable_profiling()
        sub = np.arange(30.0).reshape(5, 6)
        for __ in range(3):
            mean_abs_residue(sub)
        report = profile_report()
        assert "mean_abs_residue" in report
        assert "calls" in report and "wall_s" in report

    def test_snapshot_shape(self):
        enable_profiling()
        mean_abs_residue(np.ones((3, 3)))
        for entry in profile_snapshot().values():
            assert set(entry) == {
                "calls", "wall_s", "cpu_s", "wall_us_per_call"
            }

    def test_reset_zeroes_stats(self):
        enable_profiling()
        mean_abs_residue(np.ones((3, 3)))
        reset_profile()
        assert profile_snapshot() == {}
