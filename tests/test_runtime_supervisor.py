"""Supervisor behaviour: scheduling, retries, degradation, resume.

Real process pools and real fault injection -- the same code paths a
production kill would exercise.  Matrices are kept tiny so each restart
finishes in milliseconds.
"""

import numpy as np
import pytest

from repro.core.matrix import DataMatrix
from repro.obs import RingBufferSink, Tracer
from repro.obs.metrics import MetricsRegistry
from repro.runtime import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultSpec,
    RunConfig,
    resume_run,
    run_supervised,
)
from repro.runtime.supervisor import _backoff_delay

pytestmark = pytest.mark.runtime


@pytest.fixture
def matrix():
    rng = np.random.default_rng(3)
    values = rng.normal(size=(14, 7))
    values[:6, :4] += 4.0
    return DataMatrix(values)


def make_config(**overrides):
    base = dict(residue_target=1.5, n_restarts=3, root_seed=11, k=2,
                max_iterations=4, min_volume=9, workers=2, max_retries=2)
    base.update(overrides)
    return RunConfig(**base)


def cluster_shapes(result):
    return [(c.rows, c.cols) for c in result.clustering]


@pytest.fixture(autouse=True)
def _no_fault_plan(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


class TestHappyPath:
    def test_all_restarts_complete(self, matrix, tmp_path):
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run")
        assert out.ok
        assert out.executed == [0, 1, 2]
        assert out.skipped == []
        assert out.degradation is None
        assert len(out.result.runs) == 3

    def test_parallel_equals_serial(self, matrix, tmp_path):
        serial = run_supervised(matrix, make_config(workers=1),
                                run_dir=tmp_path / "serial")
        parallel = run_supervised(matrix, make_config(workers=3),
                                  run_dir=tmp_path / "parallel")
        assert cluster_shapes(serial.result) == cluster_shapes(parallel.result)

    def test_default_run_dir_is_created(self, matrix):
        out = run_supervised(matrix, make_config(n_restarts=1))
        assert out.ok
        assert (out.run_dir / "manifest.json").is_file()

    def test_task_events_and_metrics(self, matrix, tmp_path):
        ring = RingBufferSink(256)
        tracer = Tracer(sinks=[ring], metrics=MetricsRegistry())
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run",
                             tracer=tracer)
        assert out.ok
        statuses = [(r["restart"], r["status"]) for r in ring.records
                    if r["type"] == "task"]
        for restart in range(3):
            assert (restart, "dispatched") in statuses
            assert (restart, "completed") in statuses
        snapshot = tracer.snapshot_metrics()
        assert snapshot["counters"]["runtime.tasks.completed"] == 3
        assert out.result.metrics is not None


class TestRetries:
    def test_injected_error_recovered(self, matrix, tmp_path, monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="error",
                                    restart=1),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        slept = []
        ring = RingBufferSink(256)
        tracer = Tracer(sinks=[ring])
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run",
                             tracer=tracer, sleep=slept.append)
        assert out.ok
        retries = [r for r in ring.records if r["type"] == "retry"]
        assert [r["restart"] for r in retries] == [1]
        assert slept and all(s > 0 for s in slept)
        faults = [r for r in ring.records if r["type"] == "fault"]
        assert faults and faults[0]["restart"] == 1

    def test_worker_kill_recovered(self, matrix, tmp_path, monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="kill",
                                    restart=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run",
                             sleep=lambda _s: None)
        assert out.ok
        assert sorted(out.result.runs[i].n_iterations >= 1
                      for i in range(3))

    def test_corrupt_checkpoint_recovered(self, matrix, tmp_path,
                                          monkeypatch):
        plan = FaultPlan((FaultSpec(site="checkpoint", kind="corrupt",
                                    restart=2),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(), run_dir=tmp_path / "run",
                             sleep=lambda _s: None)
        assert out.ok
        assert len(out.result.runs) == 3

    def test_timeout_recovered(self, matrix, tmp_path, monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="delay",
                                    restart=1, delay_s=30.0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(workers=3, task_timeout=5.0),
                             run_dir=tmp_path / "run", sleep=lambda _s: None)
        assert out.ok

    def test_backoff_is_exponential_and_jittered(self):
        rng = np.random.default_rng(0)
        d0 = _backoff_delay(rng, 0.1, 0)
        d1 = _backoff_delay(rng, 0.1, 1)
        d3 = _backoff_delay(rng, 0.1, 3)
        assert 0.05 <= d0 < 0.1
        assert 0.1 <= d1 < 0.2
        assert 0.4 <= d3 < 0.8

    def test_backoff_stream_is_deterministic(self):
        a = np.random.default_rng(np.random.SeedSequence(11, spawn_key=(5,)))
        b = np.random.default_rng(np.random.SeedSequence(11, spawn_key=(5,)))
        assert [_backoff_delay(a, 0.1, i) for i in range(4)] == \
               [_backoff_delay(b, 0.1, i) for i in range(4)]


class TestDegradation:
    def test_exhausted_retries_degrade_gracefully(self, matrix, tmp_path,
                                                  monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="error",
                                    restart=1, attempts=10),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(max_retries=1),
                             run_dir=tmp_path / "run", sleep=lambda _s: None)
        assert not out.ok
        assert out.degradation is not None
        assert out.degradation.missing == [1]
        assert out.degradation.completed == [0, 2]
        assert "restarts lost" in out.degradation.message
        # Graceful: the pooled result covers the surviving restarts.
        assert out.result is not None
        assert len(out.result.runs) == 2
        failure = out.degradation.failures[0]
        assert failure.restart == 1 and failure.kind == "exception"

    def test_total_loss_returns_no_result(self, matrix, tmp_path,
                                          monkeypatch):
        plan = FaultPlan((FaultSpec(site="worker_start", kind="error",
                                    attempts=10),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        out = run_supervised(matrix, make_config(max_retries=0),
                             run_dir=tmp_path / "run", sleep=lambda _s: None)
        assert not out.ok
        assert out.result is None
        assert out.degradation.missing == [0, 1, 2]


class TestResume:
    def test_resume_skips_completed(self, matrix, tmp_path):
        config = make_config()
        first = run_supervised(matrix, config, run_dir=tmp_path / "run")
        assert first.ok
        again = resume_run(matrix, tmp_path / "run")
        assert again.ok
        assert again.skipped == [0, 1, 2]
        assert again.executed == []
        assert cluster_shapes(again.result) == cluster_shapes(first.result)

    def test_resume_reexecutes_missing(self, matrix, tmp_path):
        config = make_config()
        first = run_supervised(matrix, config, run_dir=tmp_path / "run")
        # Lose one restart's durable record.
        (tmp_path / "run" / "restarts" / "restart-00001.json").unlink()
        again = resume_run(matrix, tmp_path / "run")
        assert again.ok
        assert again.skipped == [0, 2]
        assert again.executed == [1]
        assert cluster_shapes(again.result) == cluster_shapes(first.result)

    def test_resume_overrides_scheduling_only(self, matrix, tmp_path):
        config = make_config()
        run_supervised(matrix, config, run_dir=tmp_path / "run")
        out = resume_run(matrix, tmp_path / "run", workers=4, max_retries=0)
        assert out.ok

    def test_resume_requires_run_dir(self, matrix):
        with pytest.raises(ValueError, match="requires an explicit run_dir"):
            run_supervised(matrix, make_config(), resume=True)

    def test_skipped_restarts_traced(self, matrix, tmp_path):
        run_supervised(matrix, make_config(), run_dir=tmp_path / "run")
        ring = RingBufferSink(64)
        resume_run(matrix, tmp_path / "run", tracer=Tracer(sinks=[ring]))
        skipped = [r["restart"] for r in ring.records
                   if r["type"] == "task" and r["status"] == "skipped"]
        assert skipped == [0, 1, 2]
