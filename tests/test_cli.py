"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro.data.io import load_clusters, load_matrix_npz, save_matrix_csv
from repro.data.synthetic import generate_embedded


@pytest.fixture
def workspace(tmp_path):
    """Generate a small workload on disk via the CLI itself."""
    matrix_path = tmp_path / "matrix.npz"
    truth_path = tmp_path / "truth.txt"
    code = main([
        "generate", "synthetic",
        "--rows", "150", "--cols", "30",
        "--clusters", "4", "--cluster-rows", "15", "--cluster-cols", "10",
        "--noise", "2", "--seed", "3",
        "--out", str(matrix_path),
        "--truth-out", str(truth_path),
    ])
    assert code == 0
    return tmp_path, matrix_path, truth_path


class TestGenerate:
    def test_creates_matrix_and_truth(self, workspace):
        __, matrix_path, truth_path = workspace
        matrix = load_matrix_npz(matrix_path)
        assert matrix.shape == (150, 30)
        truth = load_clusters(truth_path)
        assert len(truth) == 4

    def test_movielens_kind(self, tmp_path, capsys):
        out = tmp_path / "ratings.npz"
        code = main([
            "generate", "movielens",
            "--rows", "60", "--cols", "80", "--clusters", "2",
            "--missing", "0.15", "--seed", "0", "--out", str(out),
        ])
        assert code == 0
        assert "movielens" in capsys.readouterr().out

    def test_yeast_kind(self, tmp_path, capsys):
        out = tmp_path / "yeast.npz"
        code = main([
            "generate", "yeast",
            "--rows", "80", "--cols", "12", "--clusters", "2",
            "--cluster-rows", "10", "--cluster-cols", "5",
            "--seed", "0", "--out", str(out),
        ])
        assert code == 0
        matrix = load_matrix_npz(out)
        assert matrix.shape == (80, 12)


class TestMineAndEvaluate:
    def test_mine_writes_clusters(self, workspace, capsys):
        tmp_path, matrix_path, __ = workspace
        found_path = tmp_path / "found.txt"
        code = main([
            "mine", str(matrix_path),
            "--target", "5.0", "--k", "6", "--restarts", "1",
            "--reseed-rounds", "6", "--seed", "5",
            "--out", str(found_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "delta-clusters" in out
        found = load_clusters(found_path)
        assert found, "expected mined clusters on disk"

    def test_evaluate_with_truth(self, workspace, capsys):
        tmp_path, matrix_path, truth_path = workspace
        found_path = tmp_path / "found.txt"
        main([
            "mine", str(matrix_path),
            "--target", "5.0", "--k", "6", "--restarts", "1",
            "--reseed-rounds", "6", "--seed", "5",
            "--out", str(found_path),
        ])
        capsys.readouterr()
        code = main([
            "evaluate", str(matrix_path), str(found_path),
            "--truth", str(truth_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall" in out
        assert "precision" in out

    def test_mine_from_csv(self, tmp_path, capsys):
        dataset = generate_embedded(
            80, 20, 2, cluster_shape=(12, 8), noise=1.5, rng=7
        )
        csv_path = tmp_path / "matrix.csv"
        save_matrix_csv(csv_path, dataset.matrix, header=False)
        code = main([
            "mine", str(csv_path),
            "--target", "4.0", "--k", "3", "--restarts", "1",
            "--reseed-rounds", "4", "--seed", "1",
        ])
        assert code == 0

    def test_unsupported_format(self, tmp_path):
        bad = tmp_path / "matrix.xlsx"
        bad.write_text("nope")
        with pytest.raises(SystemExit, match="unsupported"):
            main(["mine", str(bad), "--target", "1.0"])


class TestPredict:
    def test_predict_covered_cell(self, workspace, capsys):
        tmp_path, matrix_path, truth_path = workspace
        truth = load_clusters(truth_path)
        row = truth[0].rows[0]
        col = truth[0].cols[0]
        code = main([
            "predict", str(matrix_path), str(truth_path),
            "--row", str(row), "--col", str(col),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "actual value" in out

    def test_predict_uncovered_cell(self, workspace, capsys):
        __, matrix_path, truth_path = workspace
        truth = load_clusters(truth_path)
        covered_rows = {r for c in truth for r in c.rows}
        uncovered = next(r for r in range(150) if r not in covered_rows)
        code = main([
            "predict", str(matrix_path), str(truth_path),
            "--row", str(uncovered), "--col", "0",
        ])
        assert code == 1
        assert "no cluster covers" in capsys.readouterr().out
