"""White-box tests for CLIQUE's Apriori machinery."""

import numpy as np
import pytest

from repro.subspace.clique import (
    DenseUnit,
    _all_subunits_dense,
    _connect_units,
    _generate_candidates,
)


def unit(*pairs):
    return tuple(sorted(pairs))


class TestCandidateGeneration:
    def test_joins_shared_prefix_different_dims(self):
        level = {
            unit((0, 1)): frozenset({1, 2, 3}),
            unit((1, 2)): frozenset({2, 3, 4}),
        }
        candidates = _generate_candidates(level)
        assert unit((0, 1), (1, 2)) in candidates
        parents = candidates[unit((0, 1), (1, 2))]
        assert set(parents) == {unit((0, 1)), unit((1, 2))}

    def test_same_dim_not_joined(self):
        level = {
            unit((0, 1)): frozenset({1}),
            unit((0, 2)): frozenset({2}),
        }
        assert _generate_candidates(level) == {}

    def test_two_dim_join_requires_shared_first_pair(self):
        level = {
            unit((0, 1), (1, 2)): frozenset({1, 2}),
            unit((0, 1), (2, 3)): frozenset({2, 3}),
            unit((1, 2), (2, 3)): frozenset({1, 3}),
        }
        candidates = _generate_candidates(level)
        assert unit((0, 1), (1, 2), (2, 3)) in candidates

    def test_no_duplicate_candidates(self):
        level = {
            unit((0, 1)): frozenset({1}),
            unit((1, 1)): frozenset({1}),
            unit((2, 1)): frozenset({1}),
        }
        candidates = _generate_candidates(level)
        assert len(candidates) == 3  # the three pairs, each once


class TestSubunitPruning:
    def test_all_subunits_present(self):
        level = {
            unit((0, 1), (1, 2)): frozenset({1}),
            unit((0, 1), (2, 3)): frozenset({1}),
            unit((1, 2), (2, 3)): frozenset({1}),
        }
        key = unit((0, 1), (1, 2), (2, 3))
        assert _all_subunits_dense(key, level)

    def test_missing_subunit_prunes(self):
        level = {
            unit((0, 1), (1, 2)): frozenset({1}),
            unit((0, 1), (2, 3)): frozenset({1}),
        }
        key = unit((0, 1), (1, 2), (2, 3))
        assert not _all_subunits_dense(key, level)


class TestConnectUnits:
    def test_face_adjacent_merge(self):
        units = {
            unit((0, 1)): frozenset({1, 2}),
            unit((0, 2)): frozenset({3}),
            unit((0, 5)): frozenset({4}),
        }
        clusters = _connect_units(units, min_points=1)
        sizes = sorted(len(c.points) for c in clusters)
        assert sizes == [1, 3]

    def test_diagonal_units_not_adjacent(self):
        units = {
            unit((0, 1), (1, 1)): frozenset({1}),
            unit((0, 2), (1, 2)): frozenset({2}),
        }
        clusters = _connect_units(units, min_points=1)
        assert len(clusters) == 2

    def test_min_points_filters(self):
        units = {unit((0, 1)): frozenset({1})}
        assert _connect_units(units, min_points=2) == []

    def test_cluster_units_recorded(self):
        units = {
            unit((0, 1)): frozenset({1}),
            unit((0, 2)): frozenset({2}),
        }
        (cluster,) = _connect_units(units, min_points=1)
        assert len(cluster.units) == 2
        assert all(isinstance(u, DenseUnit) for u in cluster.units)
        assert cluster.points == frozenset({1, 2})
