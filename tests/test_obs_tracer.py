"""Tracer behaviour: spans, context, events, and FLOC tracing parity.

The load-bearing guarantee is parity: instrumentation must not change
what FLOC computes -- same clustering, same history, same RNG stream --
whether tracing is off, on, or on with metrics.
"""

import numpy as np
import pytest

from repro.core.floc import floc
from repro.data.synthetic import generate_embedded
from repro.obs import (
    NULL_TRACER,
    ActionEvent,
    IterationEvent,
    MetricsRegistry,
    OtlpJsonSink,
    RingBufferSink,
    SeedEvent,
    StatsdSink,
    Tracer,
)

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def dataset():
    return generate_embedded(80, 18, 2, cluster_shape=(12, 6), noise=1.0, rng=4)


class TestSpans:
    def test_span_times_and_aggregates(self):
        tracer = Tracer()
        with tracer.span("work", step=1) as span:
            pass
        assert span.elapsed >= 0.0
        summary = tracer.summary()
        assert summary["spans"]["work"]["count"] == 1
        assert summary["spans"]["work"]["total_s"] == pytest.approx(
            span.elapsed
        )

    def test_disabled_span_is_shared_noop(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b", attr=1)
        assert first is second
        with first as span:
            span.set(extra=2)
        assert span.elapsed == 0.0
        assert NULL_TRACER.summary()["spans"] == {}

    def test_emit_spans_forwards_records(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink], emit_spans=True)
        with tracer.span("phase1", k=3):
            pass
        [record] = sink.records
        assert record["type"] == "span"
        assert record["name"] == "phase1"
        assert record["k"] == 3
        assert record["elapsed_s"] >= 0.0

    def test_spans_not_forwarded_by_default(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        with tracer.span("phase1"):
            pass
        assert sink.records == []
        assert tracer.summary()["spans"]["phase1"]["count"] == 1


class TestContext:
    def test_context_merged_into_events(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        tracer.push_context(restart=1)
        tracer.push_context(trial=2)
        tracer.emit(SeedEvent(cluster=0, n_rows=3, n_cols=3))
        tracer.pop_context()
        tracer.emit(SeedEvent(cluster=1, n_rows=3, n_cols=3))
        tracer.pop_context()
        tracer.emit(SeedEvent(cluster=2, n_rows=3, n_cols=3))
        first, second, third = sink.records
        assert first["restart"] == 1 and first["trial"] == 2
        assert second["restart"] == 1 and "trial" not in second
        assert "restart" not in third

    def test_disabled_emit_is_noop(self):
        NULL_TRACER.emit(IterationEvent(index=0))
        assert NULL_TRACER.summary()["events"] == {}


class TestFlocTracing:
    def test_traced_run_matches_untraced(self, dataset):
        plain = floc(dataset.matrix, k=3, rng=11, residue_target=2.0,
                     reseed_rounds=2, gain_mode="fast")
        sink = RingBufferSink(capacity=100000)
        tracer = Tracer(sinks=[sink], metrics=MetricsRegistry())
        traced = floc(dataset.matrix, k=3, rng=11, residue_target=2.0,
                      reseed_rounds=2, gain_mode="fast", tracer=tracer)
        assert traced.history == plain.history
        assert traced.n_iterations == plain.n_iterations
        assert traced.n_actions == plain.n_actions
        assert traced.converged == plain.converged
        assert traced.initial_residue == plain.initial_residue
        for got, expected in zip(
            traced.clustering.clusters, plain.clustering.clusters
        ):
            assert np.array_equal(got.rows, expected.rows)
            assert np.array_equal(got.cols, expected.cols)

    def test_exporter_sinks_preserve_parity(self, dataset, tmp_path):
        """StatsdSink + OtlpJsonSink attached: results stay bit-identical."""

        class NullTransport:
            def sendto(self, data, address):
                return len(data)

            def close(self):
                pass

        plain = floc(dataset.matrix, k=3, rng=11, residue_target=2.0,
                     reseed_rounds=2)
        tracer = Tracer(sinks=[
            StatsdSink(transport=NullTransport()),
            OtlpJsonSink(tmp_path / "logs.json"),
        ])
        traced = floc(dataset.matrix, k=3, rng=11, residue_target=2.0,
                      reseed_rounds=2, tracer=tracer)
        tracer.close()
        assert traced.history == plain.history
        assert traced.n_actions == plain.n_actions
        for got, expected in zip(
            traced.clustering.clusters, plain.clustering.clusters
        ):
            assert np.array_equal(got.rows, expected.rows)
            assert np.array_equal(got.cols, expected.cols)

    def test_tracing_preserves_rng_stream(self, dataset):
        plain_rng = np.random.default_rng(7)
        traced_rng = np.random.default_rng(7)
        floc(dataset.matrix, k=2, rng=plain_rng)
        tracer = Tracer(sinks=[RingBufferSink(capacity=100000)],
                        metrics=MetricsRegistry())
        floc(dataset.matrix, k=2, rng=traced_rng, tracer=tracer)
        # Both generators must sit at the same stream position afterwards.
        assert np.array_equal(
            plain_rng.integers(0, 2**31, size=16),
            traced_rng.integers(0, 2**31, size=16),
        )

    def test_iteration_events_mirror_history(self, dataset):
        sink = RingBufferSink(capacity=100000)
        result = floc(dataset.matrix, k=3, rng=5,
                      tracer=Tracer(sinks=[sink]))
        events = sink.by_type("iteration")
        assert [e["residue"] for e in events] == result.history
        assert [e["index"] for e in events] == list(range(len(events)))
        assert sum(e["n_actions"] for e in events) == result.n_actions

    def test_seed_and_action_events_emitted(self, dataset):
        sink = RingBufferSink(capacity=100000)
        result = floc(dataset.matrix, k=3, rng=5,
                      tracer=Tracer(sinks=[sink]))
        seeds = sink.by_type("seed")
        assert len(seeds) == 3
        assert all(s["origin"] == "phase1" for s in seeds)
        actions = sink.by_type("action")
        assert len(actions) == result.n_actions
        assert {a["kind"] for a in actions} <= {"row", "col"}

    def test_iteration_times_always_populated(self, dataset):
        result = floc(dataset.matrix, k=2, rng=1)
        assert len(result.iteration_times) == len(result.history)
        assert all(t >= 0.0 for t in result.iteration_times)
        assert result.metrics is None
        assert result.trace_summary is None

    def test_metrics_and_summary_attached_when_traced(self, dataset):
        tracer = Tracer(metrics=MetricsRegistry())
        result = floc(dataset.matrix, k=2, rng=1, tracer=tracer)
        counters = result.metrics["counters"]
        assert counters["actions_performed"] == result.n_actions
        assert counters["iterations"] == result.n_iterations
        assert result.trace_summary["events"]["iteration"] == (
            result.n_iterations
        )
        assert "gain_eval" in result.trace_summary["spans"]


class TestEventTypes:
    def test_to_dict_drops_none_and_coerces_numpy(self):
        event = SeedEvent(
            cluster=np.int64(3), n_rows=np.int64(5), n_cols=np.int64(2)
        )
        record = event.to_dict()
        assert record["cluster"] == 3
        assert type(record["cluster"]) is int
        assert "residue" not in record  # None fields dropped
        assert record["type"] == "seed"

    def test_action_event_payload(self):
        record = ActionEvent(kind="col", index=4, cluster=1, is_removal=True,
                             gain=0.25, residue=1.5, volume=30).to_dict()
        assert record == {
            "type": "action", "kind": "col", "index": 4, "cluster": 1,
            "is_removal": True, "gain": 0.25, "residue": 1.5, "volume": 30,
        }
